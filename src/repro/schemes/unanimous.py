"""Unanimous (full) quorums -- the fast-reconfiguration extreme.

Section 6 observes that with quorum size ``n`` (every member must vote),
``n - 1`` replicas can safely be changed at once.  This scheme realizes
that extreme::

    Config ≜ Set(N_nid)
    isQuorum(S, C) ≜ C ⊆ S
    R1⁺(C, C') ≜ C ∩ C' ≠ ∅

Any two full quorums of overlapping member sets share the common member,
so OVERLAP holds whenever at least one node carries over -- arbitrary
wholesale membership changes in a single step, at the cost of requiring
every member to acknowledge every election and commit (crash of any one
member blocks progress; safety, which is all Adore claims, is intact).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme


class UnanimousScheme(ReconfigScheme):
    """Every member must support every quorum; one shared node suffices."""

    name = "unanimous"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return frozenset(conf)

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        conf_set = frozenset(conf)
        return bool(conf_set) and conf_set <= frozenset(group)

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_set, new_set = frozenset(old), frozenset(new)
        return bool(old_set & new_set)

    def is_valid_config(self, conf: Config) -> bool:
        return len(frozenset(conf)) > 0
