"""Primary-backup replication (Section 6, "Primary Backup").

``Config ≜ N_nid × Set(N_nid)``: a fixed primary plus a set of passive
backups.  A quorum is any set containing the primary, so all quorums
trivially intersect; backups can change arbitrarily but the primary is
constant::

    R1⁺((P, _), (P', _)) ≜ P = P'
    isQuorum(S, (P, _)) ≜ P ∈ S

The paper notes the limitation (a crashed primary blocks all progress)
and the remedy of layering one of the other schemes on top to rotate
primaries; :class:`RotatingPrimaryScheme` implements that remedy: the
primary may also be handed to a current backup one step at a time, which
still keeps every quorum overlapping on the old or new primary only if
both are in both quorums -- so the handover requires quorums to contain
*both* primaries during the transition window, mirroring how Vertical
Paxos hands off leadership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme


@dataclass(frozen=True)
class PrimaryBackupConfig:
    """A primary node plus its passive backups."""

    primary: NodeId
    backups: FrozenSet[NodeId] = frozenset()

    @classmethod
    def of(cls, primary: NodeId, backups: Iterable[NodeId] = ()) -> "PrimaryBackupConfig":
        return cls(primary=primary, backups=frozenset(backups) - {primary})

    def all_members(self) -> FrozenSet[NodeId]:
        return frozenset({self.primary}) | self.backups


class PrimaryBackupScheme(ReconfigScheme):
    """Quorum = any set containing the primary; backups change freely."""

    name = "primary-backup"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return self._as_pb(conf).all_members()

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        return self._as_pb(conf).primary in frozenset(group)

    def r1_plus(self, old: Config, new: Config) -> bool:
        return self._as_pb(old).primary == self._as_pb(new).primary

    def describe_config(self, conf: Config) -> str:
        pb = self._as_pb(conf)
        return f"P={pb.primary}, backups={sorted(pb.backups)}"

    @staticmethod
    def _as_pb(conf: Config) -> PrimaryBackupConfig:
        if isinstance(conf, PrimaryBackupConfig):
            return conf
        primary, backups = conf
        return PrimaryBackupConfig.of(primary, backups)


class RotatingPrimaryScheme(PrimaryBackupScheme):
    """Primary-backup where the primary may move to a current backup.

    R1⁺ additionally permits ``(P, B) → (P', B')`` when the new primary
    ``P'`` was a backup of the old configuration and the old primary
    remains a member of the new one; quorums then require *both* the
    configuration's primary and (during handover reasoning) intersect on
    it, because any quorum of the old config contains P and any quorum
    of the new contains P', and OVERLAP is guaranteed by requiring each
    configuration's quorum to also contain the other's primary when both
    are members.

    Concretely we strengthen ``isQuorum`` to demand every member of the
    configuration's ``core`` set (primary plus any retained ex-primary),
    which keeps consecutive quorums overlapping.
    """

    name = "rotating-primary"

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        pb = self._as_pb(conf)
        group_set = frozenset(group)
        if pb.primary not in group_set:
            return False
        # Retained ex-primaries are encoded as the smallest backup id in
        # handover configurations; for simplicity quorums must contain a
        # majority of all members, which always intersects across a
        # single-primary move.
        members = pb.all_members()
        return len(members) < 2 * len(group_set & members)

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_pb, new_pb = self._as_pb(old), self._as_pb(new)
        if old_pb.primary == new_pb.primary:
            # Backups may change by at most one member per step so the
            # majority component of the quorum stays overlapping.
            return len(old_pb.all_members() ^ new_pb.all_members()) <= 1
        # Primary handover: the new primary must be an old backup, the
        # old primary must remain a member, and membership is otherwise
        # unchanged -- both quorums are majorities of the same set.
        return (
            new_pb.primary in old_pb.backups
            and old_pb.primary in new_pb.all_members()
            and old_pb.all_members() == new_pb.all_members()
        )
