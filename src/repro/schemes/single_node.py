"""Raft single-node membership change (Section 6, "Raft Single-Node").

``Config ≜ Set(N_nid)`` with standard majority quorums; R1⁺ permits
configurations differing by at most one server::

    R1⁺(C, C') ≜ C = C' ∨ ∃s. C = C' ∪ {s} ∨ C' = C ∪ {s}
    isQuorum(S, C) ≜ |C| < 2·|S ∩ C|

This is the scheme whose original (R3-less) formulation contained the
safety bug of Fig. 4; with Adore's R2/R3 side conditions it is safe.
Configurations are passed as any iterable of node ids and normalized to
``frozenset``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme, majority


class RaftSingleNodeScheme(ReconfigScheme):
    """Majority quorums; one server may be added or removed at a time."""

    name = "raft-single-node"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return frozenset(conf)

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        return majority(group, frozenset(conf))

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_set, new_set = frozenset(old), frozenset(new)
        if not new_set:
            return False
        if old_set == new_set:
            return True
        diff = old_set ^ new_set
        return len(diff) == 1

    def is_valid_config(self, conf: Config) -> bool:
        return len(frozenset(conf)) > 0


class UnsafeMultiNodeScheme(RaftSingleNodeScheme):
    """ABLATION: single-node quorums but arbitrary membership jumps.

    Violates the OVERLAP assumption (two disjoint majorities become
    possible after a two-server change), so Adore's safety proof does
    not apply -- the model checker uses this to demonstrate that OVERLAP
    is load-bearing.
    """

    name = "unsafe-multi-node"

    def r1_plus(self, old: Config, new: Config) -> bool:
        return len(frozenset(new)) > 0
