"""Reconfiguration schemes (Section 6) and their assumption checkers.

Each scheme instantiates the paper's opaque parameters (``Config``,
``mbrs``, ``isQuorum``, ``R1⁺``).  The safety proof holds for any scheme
satisfying REFLEXIVE and OVERLAP; :mod:`repro.schemes.assumptions`
checks those exhaustively over bounded node universes.

Bundled schemes (the four from Section 6 plus three more):

* :class:`RaftSingleNodeScheme` -- majority quorums, one node at a time.
* :class:`JointConsensusScheme` -- Raft joint consensus with explicit
  joint configurations.
* :class:`PrimaryBackupScheme` -- chain-replication style; quorum = any
  set containing the primary.
* :class:`DynamicQuorumScheme` -- Vertical-Paxos style explicit quorum
  sizes.
* :class:`UnanimousScheme` -- full quorums, arbitrary one-step changes.
* :class:`WeightedMajorityScheme` -- weighted majorities with a
  pigeonhole R1⁺.
* :class:`LoglessReconfigScheme` -- MongoDB's logless dynamic
  reconfiguration (scheme #7): config state outside the log, ordered by
  ``(term, version)``, with the protocol's own Q1/Q2 enabling
  conditions.

Plus :class:`RotatingPrimaryScheme` (the paper's suggested primary-
rotation remedy) and the deliberately broken
:class:`UnsafeMultiNodeScheme` used by the ablation experiments.
"""

from ..core.config import ReconfigScheme, StaticScheme, majority
from .assumptions import (
    AssumptionReport,
    OverlapWitness,
    ReflexiveWitness,
    check_all_schemes,
    check_assumptions,
    configs_for,
    register_config_generator,
)
from .dynamic_quorum import DynamicQuorumScheme, SizedConfig
from .joint import JointConfig, JointConsensusScheme
from .logless import (
    LoglessConfig,
    LoglessReconfigScheme,
    as_logless,
    config_quorum_check,
    logless_jump_candidates,
    logless_reconfig_candidates,
    oplog_commitment_check,
)
from .primary_backup import (
    PrimaryBackupConfig,
    PrimaryBackupScheme,
    RotatingPrimaryScheme,
)
from .single_node import RaftSingleNodeScheme, UnsafeMultiNodeScheme
from .unanimous import UnanimousScheme
from .weighted import WeightedConfig, WeightedMajorityScheme

__all__ = [
    "AssumptionReport",
    "DynamicQuorumScheme",
    "JointConfig",
    "JointConsensusScheme",
    "LoglessConfig",
    "LoglessReconfigScheme",
    "OverlapWitness",
    "PrimaryBackupConfig",
    "PrimaryBackupScheme",
    "RaftSingleNodeScheme",
    "ReconfigScheme",
    "ReflexiveWitness",
    "RotatingPrimaryScheme",
    "SizedConfig",
    "StaticScheme",
    "UnanimousScheme",
    "UnsafeMultiNodeScheme",
    "WeightedConfig",
    "WeightedMajorityScheme",
    "as_logless",
    "check_all_schemes",
    "check_assumptions",
    "config_quorum_check",
    "configs_for",
    "logless_jump_candidates",
    "logless_reconfig_candidates",
    "majority",
    "oplog_commitment_check",
]
