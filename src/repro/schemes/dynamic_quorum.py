"""Dynamic quorum sizes (Section 6, "Dynamic Quorum Sizes").

``Config ≜ N × Set(N_nid)``: an explicit quorum size ``q`` plus a member
set, as in Vertical Paxos.  Larger quorums permit faster (bigger)
membership changes at the cost of fault tolerance::

    R1⁺((q, C), (q', C')) ≜ (C ⊆ C' ∧ |C'| < q + q')
                          ∨ (C' ⊆ C ∧ |C| < q + q')
    isQuorum(S, (q, C)) ≜ q ≤ |S ∩ C|

OVERLAP is the pigeonhole argument: if the larger of the two member sets
has fewer elements than the sum of the quorum sizes, any two quorums
must share a member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme


@dataclass(frozen=True)
class SizedConfig:
    """A member set with an explicit quorum size."""

    quorum_size: int
    members: FrozenSet[NodeId]

    @classmethod
    def of(cls, quorum_size: int, members: Iterable[NodeId]) -> "SizedConfig":
        return cls(quorum_size=quorum_size, members=frozenset(members))

    @classmethod
    def majority(cls, members: Iterable[NodeId]) -> "SizedConfig":
        """The standard majority size ``⌈(n+1)/2⌉`` for ``members``."""
        member_set = frozenset(members)
        return cls(quorum_size=len(member_set) // 2 + 1, members=member_set)


class DynamicQuorumScheme(ReconfigScheme):
    """Explicit quorum sizes; growth/shrink bounded by ``q + q'``."""

    name = "dynamic-quorum"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return self._as_sized(conf).members

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        sized = self._as_sized(conf)
        return sized.quorum_size <= len(frozenset(group) & sized.members)

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_cf, new_cf = self._as_sized(old), self._as_sized(new)
        if not self.is_valid_config(old_cf) or not self.is_valid_config(new_cf):
            return False
        bound = old_cf.quorum_size + new_cf.quorum_size
        if old_cf.members <= new_cf.members:
            return len(new_cf.members) < bound
        if new_cf.members <= old_cf.members:
            return len(old_cf.members) < bound
        return False

    def is_valid_config(self, conf: Config) -> bool:
        sized = self._as_sized(conf)
        # A quorum size beyond the membership could never be met.  At
        # the other end, 2q must exceed |members|: otherwise two quorums
        # of the *same* configuration can be disjoint, which breaks the
        # REFLEXIVE+OVERLAP pair (this is also why R1⁺'s ``|C| < q + q'``
        # instantiated at C = C' reads ``|C| < 2q``).
        return (
            sized.quorum_size <= len(sized.members)
            and 2 * sized.quorum_size > len(sized.members)
        )

    def describe_config(self, conf: Config) -> str:
        sized = self._as_sized(conf)
        return f"q={sized.quorum_size}, members={sorted(sized.members)}"

    @staticmethod
    def _as_sized(conf: Config) -> SizedConfig:
        if isinstance(conf, SizedConfig):
            return conf
        quorum_size, members = conf
        return SizedConfig.of(quorum_size, members)
