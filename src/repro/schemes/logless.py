"""MongoDB's logless dynamic reconfiguration (scheme #7).

Schultz, Dardik & Demirbas describe MongoDB's reconfiguration protocol
(the "logless" design, arXiv 2102.11960) and verify it in TLA+ as
``MongoRaftReconfig`` (arXiv 2109.11987).  It is a genuinely different
design point from the six bundled schemes: configurations are *not*
oplog entries.  Each replica stores a single configuration object

    Config ≜ (version, term, members)

managed outside the log, replicated by gossip, and ordered by the
MongoDB comparison: compare ``term`` first, then ``version``.  A
reconfiguration replaces the leader's configuration with
``(version + 1, leader_term, members')``; an election rewrites the
config term.  Because there is no joint phase and no log entry, safety
rests entirely on the protocol's *enabling conditions*:

* **single-node change** -- ``members'`` differs from ``members`` by at
  most one replica, so any two majorities of adjacent member sets
  intersect (the same pigeonhole as Raft single-node);
* **Q1, the config quorum check** -- the current configuration must be
  *committed*: a quorum of the current member set stores it at the
  current ``(version, term)`` before a newer one may be installed;
* **Q2, the oplog commitment check** -- every oplog entry committed
  under earlier terms must be committed in the proposer's current
  term before the configuration may change.

Mapping onto Adore's opaque parameters: ``mbrs`` projects the member
set, ``isQuorum`` is the plain majority test, and ``R1⁺`` holds exactly
for the transitions the protocol can install -- identical configs
(REFLEXIVE), or a single-node member change whose ``(term, version)``
strictly advances in the MongoDB order.  That R1⁺ satisfies OVERLAP for
the same reason Raft single-node does, so Adore's parameterized safety
proof covers the scheme even though its config state never touches the
log (checked exhaustively by :mod:`repro.schemes.assumptions`).

Q1 and Q2 are *state* predicates, not config-pair predicates, so they
live in the reconfiguration candidate generator
(:func:`logless_reconfig_candidates`) rather than in ``R1⁺``:
:func:`config_quorum_check` and :func:`oplog_commitment_check` evaluate
them against the Adore cache tree.  In Adore vocabulary Q1 coincides
with rule R2 (the newest config entry on the active branch is
committed, hence so is every older one) and Q2 with rule R3 (a commit
at the proposer's current timestamp) -- the correspondence is pinned by
tests.  This is the load-bearing observation the differential harness
(:mod:`repro.mc.differential`) turns into data: because the logless
protocol carries its own R2/R3 analogues as enabling conditions,
ablating Adore's R2 or R3 does not break it, while Raft single-node
falls to the Fig. 4 counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Tuple

from ..core.aux import active_cache
from ..core.cache import Cid, Config, NodeId, is_ccache, is_rcache
from ..core.config import ReconfigScheme, majority
from ..core.state import AdoreState
from ..core.tree import CacheTree


@dataclass(frozen=True)
class LoglessConfig:
    """A MongoDB-style configuration: ``(version, term, members)``.

    Ordered by ``(term, version)`` -- term first, as in the MongoDB
    config comparison -- via :meth:`order_key`.  The member set is a
    ``frozenset``; the repr sorts it so the rendering is stable.
    """

    version: int
    term: int
    members: FrozenSet[NodeId]

    @classmethod
    def of(
        cls, version: int, term: int, members: Iterable[NodeId]
    ) -> "LoglessConfig":
        return cls(version=version, term=term, members=frozenset(members))

    @classmethod
    def initial(cls, members: Iterable[NodeId]) -> "LoglessConfig":
        """The bootstrap configuration: version 0 at term 0."""
        return cls.of(0, 0, members)

    @property
    def order_key(self) -> Tuple[int, int]:
        """The MongoDB config order: compare terms, then versions."""
        return (self.term, self.version)

    def newer_than(self, other: "LoglessConfig") -> bool:
        return self.order_key > other.order_key

    def __repr__(self) -> str:
        return (
            f"LoglessConfig(v={self.version}, t={self.term}, "
            f"members={sorted(self.members)})"
        )


def as_logless(conf: Config) -> LoglessConfig:
    """Coerce ``conf`` to a :class:`LoglessConfig`.

    Plain member iterables (e.g. a ``frozenset`` used as ``conf0``)
    become the bootstrap config ``(0, 0, members)``; 3-tuples are read
    as ``(version, term, members)``.
    """
    if isinstance(conf, LoglessConfig):
        return conf
    if isinstance(conf, tuple) and len(conf) == 3:
        version, term, members = conf
        return LoglessConfig.of(version, term, members)
    return LoglessConfig.initial(conf)


class LoglessReconfigScheme(ReconfigScheme):
    """MongoDB logless reconfiguration: majority quorums, single-node
    changes, configs ordered by ``(term, version)``."""

    name = "mongo-logless"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return as_logless(conf).members

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        return majority(group, as_logless(conf).members)

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_cf, new_cf = as_logless(old), as_logless(new)
        if old_cf == new_cf:
            return True  # REFLEXIVE
        if not new_cf.members:
            return False
        # Single-node change: at most one replica added or removed.
        if len(old_cf.members ^ new_cf.members) > 1:
            return False
        # The installed config must strictly advance the MongoDB order
        # (a reconfig bumps the version at the leader's term; an
        # election bumps the term) -- stale configs never win.
        return new_cf.newer_than(old_cf)

    def is_valid_config(self, conf: Config) -> bool:
        cf = as_logless(conf)
        return bool(cf.members) and cf.version >= 0 and cf.term >= 0

    def describe_config(self, conf: Config) -> str:
        cf = as_logless(conf)
        return f"v{cf.version}/t{cf.term} {sorted(cf.members)}"


# ----------------------------------------------------------------------
# The protocol's enabling conditions, as Adore cache-tree predicates
# ----------------------------------------------------------------------

def config_quorum_check(tree: CacheTree, cid: Cid) -> bool:
    """Q1: the current configuration is committed.

    The newest config entry (RCache) at-or-above ``cid`` on its branch
    must have a commit (CCache) strictly below it and at-or-above
    ``cid`` -- the Adore image of "a quorum of the current member set
    stores the config at its current (version, term)".  With no config
    entry on the branch the configuration is conf₀, committed by the
    root CCache by definition.

    Because a commit below the newest config entry also sits below
    every older one, Q1 coincides with Adore's rule R2
    (:func:`repro.core.aux.r2_holds`); ``tests/schemes/test_logless.py``
    pins the correspondence.
    """
    branch = tree.branch(cid)
    newest_rcache_index: Optional[int] = None
    for index, anc in enumerate(branch):
        if is_rcache(tree.cache(anc)):
            newest_rcache_index = index
    if newest_rcache_index is None:
        return True
    return any(
        is_ccache(tree.cache(c)) for c in branch[newest_rcache_index + 1 :]
    )


def oplog_commitment_check(tree: CacheTree, cid: Cid) -> bool:
    """Q2: entries committed under earlier terms are committed in the
    proposer's current term.

    In Adore's tree this is witnessed by a CCache on the branch whose
    timestamp equals the active cache's: committing anything at the
    current term finalizes the whole prefix, including every entry
    inherited from earlier terms.  This is the same obligation as
    Adore's rule R3 (:func:`repro.core.aux.r3_holds`).
    """
    target_time = tree.cache(cid).time
    return any(
        is_ccache(tree.cache(anc)) and tree.cache(anc).time == target_time
        for anc in tree.ancestors(cid, include_self=True)
    )


def _gated_candidates(state: AdoreState, nid: NodeId):
    """The proposer's active cache, iff Q1 and Q2 enable a reconfig."""
    active = active_cache(state.tree, nid)
    if active is None:
        return None
    if not config_quorum_check(state.tree, active):
        return None
    if not oplog_commitment_check(state.tree, active):
        return None
    return active


def logless_reconfig_candidates(universe: Iterable[NodeId]):
    """Single-node membership changes under the protocol's own gates.

    Yields ``LoglessConfig(version + 1, leader_term, members ± one)``
    for the proposing leader -- but only when Q1
    (:func:`config_quorum_check`) and Q2
    (:func:`oplog_commitment_check`) hold at the proposer's active
    cache.  Because the gates are the protocol's own enabling
    conditions, they apply even when the model checker ablates Adore's
    R2/R3 -- which is exactly what the differential harness measures.
    """
    universe_set = frozenset(universe)

    def candidates(
        state: AdoreState, nid: NodeId, conf: Config
    ) -> Iterator[Config]:
        active = _gated_candidates(state, nid)
        if active is None:
            return
        current = as_logless(conf)
        term = state.tree.cache(active).time
        for node in sorted(universe_set - current.members):
            yield LoglessConfig(
                version=current.version + 1,
                term=term,
                members=current.members | {node},
            )
        if len(current.members) > 1:
            for node in sorted(current.members):
                yield LoglessConfig(
                    version=current.version + 1,
                    term=term,
                    members=current.members - {node},
                )

    return candidates


def logless_jump_candidates(universe: Iterable[NodeId]):
    """Arbitrary member jumps (still version/term ordered and Q1/Q2
    gated) -- the OVERLAP-ablation counterpart of
    :func:`logless_reconfig_candidates`.

    Only meaningful under a scheme whose ``R1⁺`` drops the single-node
    restriction (see :class:`repro.mc.differential.OverlapAblation`);
    the intact scheme rejects every multi-node jump.
    """
    import itertools

    universe_sorted = tuple(sorted(frozenset(universe)))

    def candidates(
        state: AdoreState, nid: NodeId, conf: Config
    ) -> Iterator[Config]:
        active = _gated_candidates(state, nid)
        if active is None:
            return
        current = as_logless(conf)
        term = state.tree.cache(active).time
        for size in range(1, len(universe_sorted) + 1):
            for combo in itertools.combinations(universe_sorted, size):
                members = frozenset(combo)
                if members != current.members:
                    yield LoglessConfig(
                        version=current.version + 1, term=term, members=members
                    )

    return candidates
