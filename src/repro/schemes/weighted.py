"""Weighted majority quorums with an integer-pigeonhole R1⁺.

A sixth instantiation in the spirit of the artifact's extra examples:
every member carries a voting weight and a quorum is any set holding a
strict majority of the configuration's total weight::

    Config ≜ N_nid ⇀ N₊ (a weight map)
    isQuorum(S, C) ≜ 2·weight(S ∩ C) > weight(C)
    R1⁺(C, C') ≜ shared members keep their weights
               ∧ q(C) + q(C') > weight(C ∪ C')

where ``q(C) = ⌊weight(C)/2⌋ + 1`` is the minimum weight any quorum of
``C`` must hold.  OVERLAP is the integer pigeonhole: two disjoint
quorums live inside ``C ∪ C'`` and together hold at least
``q(C) + q(C')`` weight, so if that exceeds the union's total weight
they must share a member.  (Weight changes for surviving members are
expressed as a remove-then-re-add pair of transitions.)

Setting every weight to 1 degenerates to majority quorums where
``R1⁺`` permits exactly the membership changes with
``⌊|C|/2⌋ + ⌊|C'|/2⌋ + 2 > |C ∪ C'|`` -- which subsumes Raft's
single-node rule (one addition or removal at a time) and, like the
dynamic-quorum scheme, allows bigger jumps when quorums are larger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Tuple

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme


@dataclass(frozen=True)
class WeightedConfig:
    """An immutable node-to-weight map (stored as sorted pairs)."""

    weights: Tuple[Tuple[NodeId, int], ...]

    @classmethod
    def of(cls, weights: Mapping[NodeId, int]) -> "WeightedConfig":
        for nid, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"node {nid} has non-positive weight {weight}")
        return cls(weights=tuple(sorted(weights.items())))

    @classmethod
    def uniform(cls, members: Iterable[NodeId]) -> "WeightedConfig":
        """All members with weight 1 (plain majority quorums)."""
        return cls.of({nid: 1 for nid in members})

    def as_dict(self) -> Mapping[NodeId, int]:
        return dict(self.weights)

    def member_set(self) -> FrozenSet[NodeId]:
        return frozenset(nid for nid, _ in self.weights)

    def total(self) -> int:
        return sum(weight for _, weight in self.weights)

    def weight_of(self, group: Iterable[NodeId]) -> int:
        table = self.as_dict()
        return sum(table.get(nid, 0) for nid in frozenset(group))


class WeightedMajorityScheme(ReconfigScheme):
    """Strict weighted-majority quorums with a pigeonhole transition rule."""

    name = "weighted-majority"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return self._as_weighted(conf).member_set()

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        weighted = self._as_weighted(conf)
        return 2 * weighted.weight_of(group) > weighted.total()

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_cf, new_cf = self._as_weighted(old), self._as_weighted(new)
        if not new_cf.weights:
            return False
        old_table, new_table = old_cf.as_dict(), new_cf.as_dict()
        common = old_cf.member_set() & new_cf.member_set()
        if any(old_table[nid] != new_table[nid] for nid in common):
            return False
        union_weight = (
            old_cf.total()
            + new_cf.total()
            - sum(old_table[nid] for nid in common)
        )
        min_quorum_old = old_cf.total() // 2 + 1
        min_quorum_new = new_cf.total() // 2 + 1
        return min_quorum_old + min_quorum_new > union_weight

    def is_valid_config(self, conf: Config) -> bool:
        return bool(self._as_weighted(conf).weights)

    def describe_config(self, conf: Config) -> str:
        weighted = self._as_weighted(conf)
        inner = ", ".join(f"n{nid}:{w}" for nid, w in weighted.weights)
        return f"{{{inner}}}"

    @staticmethod
    def _as_weighted(conf: Config) -> WeightedConfig:
        if isinstance(conf, WeightedConfig):
            return conf
        if isinstance(conf, Mapping):
            return WeightedConfig.of(conf)
        return WeightedConfig.uniform(conf)
