"""Exhaustive checking of the REFLEXIVE and OVERLAP assumptions (Fig. 7).

The paper's safety proof is parameterized: it holds for *any* scheme
whose ``R1⁺``/``isQuorum`` satisfy

* REFLEXIVE -- ``R1⁺(cf, cf)`` for every valid configuration, and
* OVERLAP -- ``R1⁺(cf, cf') ∧ isQuorum(Q, cf) ∧ isQuorum(Q', cf')
  ⟹ Q ∩ Q' ≠ ∅``.

In Coq these are per-scheme side-condition proofs (~200 lines for six
schemes).  Here :func:`check_assumptions` verifies them *exhaustively*
over every configuration constructible from a bounded node universe and
every pair of quorums, reporting the number of cases covered -- the
small-scope analogue of the proof obligations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple, Type

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme, StaticScheme
from .dynamic_quorum import DynamicQuorumScheme, SizedConfig
from .joint import JointConfig, JointConsensusScheme
from .logless import LoglessConfig, LoglessReconfigScheme
from .primary_backup import PrimaryBackupConfig, PrimaryBackupScheme, RotatingPrimaryScheme
from .single_node import RaftSingleNodeScheme, UnsafeMultiNodeScheme
from .unanimous import UnanimousScheme
from .weighted import WeightedConfig, WeightedMajorityScheme


@dataclass(frozen=True)
class ReflexiveWitness:
    """A configuration at which ``R1⁺(cf, cf)`` failed."""

    config: Config
    described: str

    def describe(self) -> str:
        return f"R1+ not reflexive at {self.described}"


@dataclass(frozen=True)
class OverlapWitness:
    """A concrete OVERLAP counterexample: an R1⁺-related config pair
    plus one disjoint quorum of each."""

    old_config: Config
    new_config: Config
    old_described: str
    new_described: str
    quorum_old: Tuple[NodeId, ...]
    quorum_new: Tuple[NodeId, ...]

    def describe(self) -> str:
        return (
            f"disjoint quorums {list(self.quorum_old)} / "
            f"{list(self.quorum_new)} for {self.old_described} → "
            f"{self.new_described}"
        )


@dataclass
class AssumptionReport:
    """The result of exhaustively checking REFLEXIVE and OVERLAP.

    A violated assumption carries its concrete witnesses: the
    configuration (REFLEXIVE) or the config pair with one disjoint
    quorum of each (OVERLAP), both as raw values and as rendered
    strings, so a failure report shows *why* the scheme is broken
    rather than just that it is.
    """

    scheme: str
    universe: Tuple[NodeId, ...]
    configs_checked: int = 0
    transition_pairs: int = 0
    quorum_pairs_checked: int = 0
    reflexive_violations: List[str] = field(default_factory=list)
    overlap_violations: List[str] = field(default_factory=list)
    reflexive_witnesses: List[ReflexiveWitness] = field(default_factory=list)
    overlap_witnesses: List[OverlapWitness] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when both assumptions held over the entire universe."""
        return not self.reflexive_violations and not self.overlap_violations

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATED"
        return (
            f"{self.scheme}: {status} -- {self.configs_checked} configs, "
            f"{self.transition_pairs} R1+ transitions, "
            f"{self.quorum_pairs_checked} quorum pairs "
            f"(universe {list(self.universe)})"
        )


def _nonempty_subsets(nodes: Sequence[NodeId]) -> Iterator[frozenset]:
    for size in range(1, len(nodes) + 1):
        for combo in itertools.combinations(sorted(nodes), size):
            yield frozenset(combo)


def _quorums(scheme: ReconfigScheme, conf: Config) -> List[frozenset]:
    members = sorted(scheme.members(conf))
    return [
        group for group in _nonempty_subsets(members) if scheme.is_quorum(group, conf)
    ]


# ----------------------------------------------------------------------
# Config universe generators, one per scheme family
# ----------------------------------------------------------------------

ConfigGenerator = Callable[[Sequence[NodeId]], Iterator[Config]]

_GENERATORS: Dict[Type[ReconfigScheme], ConfigGenerator] = {}


def register_config_generator(
    scheme_type: Type[ReconfigScheme],
) -> Callable[[ConfigGenerator], ConfigGenerator]:
    """Decorator registering the bounded config universe for a scheme type."""

    def wrap(generator: ConfigGenerator) -> ConfigGenerator:
        _GENERATORS[scheme_type] = generator
        return generator

    return wrap


def configs_for(scheme: ReconfigScheme, nodes: Sequence[NodeId]) -> List[Config]:
    """All valid configurations of ``scheme`` over the node universe."""
    for scheme_type in type(scheme).__mro__:
        if scheme_type in _GENERATORS:
            raw = _GENERATORS[scheme_type](nodes)
            return [conf for conf in raw if scheme.is_valid_config(conf)]
    raise KeyError(f"no config generator registered for {type(scheme).__name__}")


@register_config_generator(RaftSingleNodeScheme)
@register_config_generator(UnsafeMultiNodeScheme)
@register_config_generator(UnanimousScheme)
@register_config_generator(StaticScheme)
def _set_configs(nodes: Sequence[NodeId]) -> Iterator[Config]:
    yield from _nonempty_subsets(nodes)


@register_config_generator(JointConsensusScheme)
def _joint_configs(nodes: Sequence[NodeId]) -> Iterator[Config]:
    subsets = list(_nonempty_subsets(nodes))
    for old in subsets:
        yield JointConfig(old=old, new=None)
        for new in subsets:
            yield JointConfig(old=old, new=new)


@register_config_generator(PrimaryBackupScheme)
@register_config_generator(RotatingPrimaryScheme)
def _pb_configs(nodes: Sequence[NodeId]) -> Iterator[Config]:
    for primary in sorted(nodes):
        rest = [n for n in sorted(nodes) if n != primary]
        for size in range(len(rest) + 1):
            for backups in itertools.combinations(rest, size):
                yield PrimaryBackupConfig.of(primary, backups)


@register_config_generator(DynamicQuorumScheme)
def _sized_configs(nodes: Sequence[NodeId]) -> Iterator[Config]:
    for members in _nonempty_subsets(nodes):
        for quorum_size in range(1, len(members) + 1):
            yield SizedConfig(quorum_size=quorum_size, members=members)


@register_config_generator(WeightedMajorityScheme)
def _weighted_configs(nodes: Sequence[NodeId]) -> Iterator[Config]:
    # Weights in {1, 2} keep the universe tractable while exercising the
    # non-uniform pigeonhole argument.
    for members in _nonempty_subsets(nodes):
        ordered = sorted(members)
        for weights in itertools.product((1, 2), repeat=len(ordered)):
            yield WeightedConfig.of(dict(zip(ordered, weights)))


@register_config_generator(LoglessReconfigScheme)
def _logless_configs(nodes: Sequence[NodeId]) -> Iterator[Config]:
    # Versions and terms in {0, 1, 2} cover same-term version bumps,
    # cross-term bumps, and order-decreasing pairs (which R1⁺ must
    # reject) without blowing up the pair enumeration.
    for members in _nonempty_subsets(nodes):
        for term in range(3):
            for version in range(3):
                yield LoglessConfig(version=version, term=term, members=members)


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------

def check_assumptions(
    scheme: ReconfigScheme,
    nodes: Sequence[NodeId],
    configs: Iterable[Config] = None,
    stop_at_first: bool = False,
) -> AssumptionReport:
    """Exhaustively verify REFLEXIVE and OVERLAP over a bounded universe.

    ``configs`` defaults to every valid configuration constructible from
    ``nodes`` for the scheme's family.  ``stop_at_first`` aborts on the
    first violation (useful when demonstrating that an ablated scheme is
    broken without enumerating every witness).
    """
    config_list = list(configs) if configs is not None else configs_for(scheme, nodes)
    report = AssumptionReport(scheme=scheme.name, universe=tuple(sorted(nodes)))
    report.configs_checked = len(config_list)

    for conf in config_list:
        if not scheme.r1_plus(conf, conf):
            witness = ReflexiveWitness(
                config=conf, described=scheme.describe_config(conf)
            )
            report.reflexive_witnesses.append(witness)
            report.reflexive_violations.append(witness.describe())
            if stop_at_first:
                return report

    quorum_cache: Dict[Config, List[frozenset]] = {}

    def quorums_of(conf: Config) -> List[frozenset]:
        if conf not in quorum_cache:
            quorum_cache[conf] = _quorums(scheme, conf)
        return quorum_cache[conf]

    for old, new in itertools.product(config_list, repeat=2):
        if not scheme.r1_plus(old, new):
            continue
        report.transition_pairs += 1
        for q_old in quorums_of(old):
            for q_new in quorums_of(new):
                report.quorum_pairs_checked += 1
                if not q_old & q_new:
                    witness = OverlapWitness(
                        old_config=old,
                        new_config=new,
                        old_described=scheme.describe_config(old),
                        new_described=scheme.describe_config(new),
                        quorum_old=tuple(sorted(q_old)),
                        quorum_new=tuple(sorted(q_new)),
                    )
                    report.overlap_witnesses.append(witness)
                    report.overlap_violations.append(witness.describe())
                    if stop_at_first:
                        return report
    return report


def check_all_schemes(
    nodes: Sequence[NodeId], schemes: Iterable[ReconfigScheme] = None
) -> List[AssumptionReport]:
    """Check every bundled scheme over the node universe."""
    if schemes is None:
        schemes = [
            RaftSingleNodeScheme(),
            JointConsensusScheme(),
            PrimaryBackupScheme(),
            RotatingPrimaryScheme(),
            DynamicQuorumScheme(),
            UnanimousScheme(),
            WeightedMajorityScheme(),
            LoglessReconfigScheme(),
            StaticScheme(),
        ]
    return [check_assumptions(scheme, nodes) for scheme in schemes]
