"""Raft joint consensus (Section 6, "Raft Joint Consensus").

``Config ≜ Set(N_nid) × Option(Set(N_nid))``: a stable configuration is
``(old, ⊥)``; during a change the system is in a *joint* configuration
``(old, new)`` whose quorums require majorities of **both** sets::

    R1⁺(C, C') ≜ (∃old. C = (old, ⊥) ∧ C' = (old, _))
               ∨ (∃new. C = (_, new) ∧ C' = (new, ⊥))
    isQuorum(S, (old, new)) ≜ majority(S, old) ∧ (new = ⊥ ∨ majority(S, new))

A transition either *enters* a joint configuration (keeping the old set)
or *leaves* one (promoting the new set).  Arbitrary membership changes
are possible in two hops while every consecutive pair overlaps.

Configurations are :class:`JointConfig` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme, majority


@dataclass(frozen=True)
class JointConfig:
    """A (possibly joint) configuration: the old set plus an optional new set."""

    old: FrozenSet[NodeId]
    new: Optional[FrozenSet[NodeId]] = None

    @classmethod
    def stable(cls, members: Iterable[NodeId]) -> "JointConfig":
        """A non-joint configuration over ``members``."""
        return cls(old=frozenset(members), new=None)

    @classmethod
    def transition(
        cls, old: Iterable[NodeId], new: Iterable[NodeId]
    ) -> "JointConfig":
        """The joint configuration combining ``old`` and ``new``."""
        return cls(old=frozenset(old), new=frozenset(new))

    @property
    def is_joint(self) -> bool:
        return self.new is not None

    def all_members(self) -> FrozenSet[NodeId]:
        return self.old | (self.new or frozenset())


class JointConsensusScheme(ReconfigScheme):
    """Quorums require majorities of both halves of a joint configuration."""

    name = "raft-joint-consensus"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return self._as_joint(conf).all_members()

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        joint = self._as_joint(conf)
        group_set = frozenset(group)
        if not majority(group_set, joint.old):
            return False
        return joint.new is None or majority(group_set, joint.new)

    def r1_plus(self, old: Config, new: Config) -> bool:
        old_cf, new_cf = self._as_joint(old), self._as_joint(new)
        if not self.is_valid_config(new_cf):
            return False
        # REFLEXIVE: re-proposing the identical configuration is always
        # safe (both quorums are majorities of the same set(s)).  The
        # paper's literal definition covers this only for stable
        # configurations; joint configurations need it explicitly.
        if old_cf == new_cf:
            return True
        # Enter a joint configuration: (old, ⊥) → (old, anything).
        if old_cf.new is None and new_cf.old == old_cf.old:
            return True
        # Leave a joint configuration: (_, new) → (new, ⊥).
        if (
            old_cf.new is not None
            and new_cf.old == old_cf.new
            and new_cf.new is None
        ):
            return True
        return False

    def is_valid_config(self, conf: Config) -> bool:
        joint = self._as_joint(conf)
        if not joint.old:
            return False
        return joint.new is None or bool(joint.new)

    def describe_config(self, conf: Config) -> str:
        joint = self._as_joint(conf)
        if joint.new is None:
            return f"{sorted(joint.old)}"
        return f"{sorted(joint.old)}+{sorted(joint.new)}"

    @staticmethod
    def _as_joint(conf: Config) -> JointConfig:
        if isinstance(conf, JointConfig):
            return conf
        return JointConfig.stable(conf)
