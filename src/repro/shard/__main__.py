"""``python -m repro.shard`` -- the sharded deployment, self-checked.

Spawns N independent localhost Raft groups behind a versioned routing
table, drives a mixed workload through sharding clients while a shard
**split** and then a **merge** run mid-load (with an optional
per-shard nemesis killing and partitioning group leaders), then merges
every client's history and checks it per key with the Wing-Gong
linearizability checker.  Exits non-zero on any violation, so CI can
gate on it.

Example::

    python -m repro.shard --groups 2 --nodes 3 --ops 200 --seed 7
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from .scenario import ShardScenarioConfig, run_shard_scenario


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="split/merge-under-load drill over sharded groups",
    )
    parser.add_argument("--groups", type=int, default=2,
                        help="number of independent Raft groups")
    parser.add_argument("--nodes", type=int, default=3,
                        help="nodes per group")
    parser.add_argument("--clients", type=int, default=3,
                        help="concurrent workload clients")
    parser.add_argument("--ops", type=int, default=200,
                        help="total operations across all clients")
    parser.add_argument("--keys", type=int, default=32,
                        help="distinct keys in the workload")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-faults", action="store_true",
                        help="run the migrations without the nemesis")
    parser.add_argument("--monitor", action="store_true",
                        help="attach one safety monitor per group")
    parser.add_argument("--log-dir", default=None,
                        help="keep per-group node logs here")
    parser.add_argument("--op-timeout-s", type=float, default=8.0)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stdout,
    )
    config = ShardScenarioConfig(
        groups=args.groups,
        nodes_per_group=args.nodes,
        clients=args.clients,
        ops=args.ops,
        keys=args.keys,
        seed=args.seed,
        faults=not args.no_faults,
        monitor=args.monitor,
        log_dir=args.log_dir,
        op_timeout_s=args.op_timeout_s,
    )
    result = run_shard_scenario(config)
    print(result.describe())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
