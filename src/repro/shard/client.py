"""Routing clients for a sharded deployment.

:class:`TableAuthority` is the process-local routing-table authority:
one current :class:`~repro.shard.ring.RoutingTable`, replaced
atomically by strictly newer versions.  (A networked authority would
serve the same two calls over a socket; everything downstream only
needs ``table()`` and ``publish()``.)

:class:`ShardClient` is the application-facing client.  It routes each
single-key operation to the group owning the key, fans multi-key reads
out across groups, and records everything into **one** Jepsen-style
:class:`~repro.runtime.history.History`, so the unmodified per-key
Wing-Gong checker (:mod:`repro.runtime.linearize`) can verify the
whole sharded deployment at once -- locality makes cross-group
composition free.

The correctness-critical retry split, inherited from
:mod:`repro.net.client`:

* ``WrongShard`` means *every* attempt of the request ended in a
  definitive admission-time refusal -- the command never entered any
  log -- so re-routing it to another group with a fresh seq cannot
  double-apply.  The client refetches the table and retries, bounded
  by its deadline, surfacing exhaustion as
  :class:`~repro.net.client.ClientTimeout` (the op stays pending).
* ``ClientTimeout`` from a group means the outcome there is
  *unknown* -- the command may commit later.  That includes requests
  where some attempt was ambiguous (timed out after possibly being
  admitted, or was bounced by a dethroned leader post-append) and a
  later node answered wrong-shard: ``NetClient.request`` downgrades
  such a refusal to a timeout precisely so it is **never** retried at
  another group -- dedup domains are per-group, so a cross-group retry
  could apply the command twice.  The op simply stays pending, which
  the checker treats soundly (it may take effect once or never).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..net.client import (
    ClientError,
    ClientTimeout,
    NetClient,
    WrongShard,
    now_ms,
)
from ..runtime.history import History, Operation
from .ring import RoutingTable


class TableAuthority:
    """The routing-table authority: one current table, thread-safe.

    ``publish`` only accepts strictly newer versions -- a delayed
    publish of a stale table is a programming error upstream, not
    something to paper over."""

    def __init__(self, table: RoutingTable) -> None:
        self._lock = threading.Lock()
        self._table = table

    def table(self) -> RoutingTable:
        """The current table (an immutable snapshot: safe to keep)."""
        with self._lock:
            return self._table

    def publish(self, table: RoutingTable) -> RoutingTable:
        """Install a strictly newer table; returns it."""
        with self._lock:
            if table.version <= self._table.version:
                raise ValueError(
                    f"publish v{table.version} would not advance "
                    f"v{self._table.version}"
                )
            self._table = table
            return table


class ShardClient:
    """A key-routing client over N independent ``repro.net`` groups.

    One :class:`~repro.net.client.NetClient` per group, created lazily
    (injectable via ``client_factory`` for tests), all sharing this
    client's single history and ``client_id`` -- the same id across
    groups is safe because dedup domains are per-group and a command is
    only ever *re-routed* after a definitive not-applied refusal.
    """

    def __init__(
        self,
        authority: TableAuthority,
        group_addresses: Dict[int, Dict[int, Tuple[str, int]]],
        client_id: str = "shard-client-0",
        history: Optional[History] = None,
        request_timeout_s: float = 1.0,
        total_timeout_s: float = 20.0,
        retry_delay_s: float = 0.02,
        reroute_delay_s: float = 0.05,
        client_factory: Optional[Callable[[int], NetClient]] = None,
    ) -> None:
        if not group_addresses:
            raise ValueError("need at least one group")
        self.authority = authority
        self.group_addresses = {
            gid: dict(addresses)
            for gid, addresses in group_addresses.items()
        }
        self.client_id = client_id
        self.history = history if history is not None else History()
        self.total_timeout_s = total_timeout_s
        self.reroute_delay_s = reroute_delay_s
        self._factory = (
            client_factory
            if client_factory is not None
            else lambda gid: NetClient(
                self.group_addresses[gid],
                client_id=client_id,
                history=self.history,
                request_timeout_s=request_timeout_s,
                total_timeout_s=total_timeout_s,
                retry_delay_s=retry_delay_s,
            )
        )
        self._clients: Dict[int, NetClient] = {}
        self._clients_lock = threading.Lock()
        #: Per-group serialization: a fan-out thread and the caller
        #: must never interleave on one NetClient (shared seq/socket).
        self._group_locks: Dict[int, threading.Lock] = {}
        #: Cross-group re-routes taken (wrong-shard refusals absorbed).
        self.reroutes = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _client(self, gid: int) -> NetClient:
        with self._clients_lock:
            if gid not in self._clients:
                self._clients[gid] = self._factory(gid)
                self._group_locks[gid] = threading.Lock()
            return self._clients[gid]

    def close(self) -> None:
        with self._clients_lock:
            for client in self._clients.values():
                client.close()
            self._clients.clear()
            self._group_locks.clear()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The routing loop
    # ------------------------------------------------------------------

    def _route(
        self,
        command: Tuple,
        key: str,
        operation: Optional[Operation] = None,
    ):
        """Route one command to the key's owning group, absorbing
        wrong-shard refusals by refetching the table, until the
        deadline.  Timeouts from a group propagate (never re-routed --
        see the module docstring)."""
        deadline = time.monotonic() + self.total_timeout_s
        last_refusal: Optional[WrongShard] = None
        while True:
            table = self.authority.table()
            gid = table.owner(key)
            client = self._client(gid)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                with self._group_locks[gid]:
                    return client.request(
                        command,
                        operation=operation,
                        table_version=table.version,
                    )
            except WrongShard as refusal:
                # Definitive and not applied: the range is frozen
                # mid-migration (or our table is stale).  Wait for a
                # newer table and re-route with a fresh seq.
                last_refusal = refusal
                self.reroutes += 1
                time.sleep(
                    min(self.reroute_delay_s,
                        max(0.0, deadline - time.monotonic()))
                )
        raise ClientTimeout(
            f"{command!r}: re-routed past the deadline without an "
            f"accepting group (last refusal at node table version "
            f"{last_refusal.table_version if last_refusal else None})"
        )

    # ------------------------------------------------------------------
    # The kvstore surface (history-recorded)
    # ------------------------------------------------------------------

    def _op(self, op: str, key: str, value: Any, command: Tuple):
        operation = self.history.invoke(
            self.client_id, op, key, value, now_ms()
        )
        return self._route(command, key, operation=operation)

    def put(self, key: str, value: Any):
        return self._op("put", key, value, ("put", key, value))

    def add(self, key: str, delta: int = 1):
        return self._op("add", key, delta, ("add", key, delta))

    def delete(self, key: str):
        return self._op("delete", key, None, ("delete", key))

    def get(self, key: str):
        return self._op("get", key, None, ("get", key))

    # ------------------------------------------------------------------
    # Multi-key fan-out
    # ------------------------------------------------------------------

    def mget(self, keys: Iterable[str]) -> Dict[str, Any]:
        """Read many keys, fanning out one thread per owning group.

        All invocations are recorded up front (single-threaded, so
        op_ids stay unique), then each group's reads run sequentially
        on that group's own thread -- per-group locks keep a re-routed
        straggler from interleaving with another thread's client.
        Returns ``{key: value}`` for the reads that completed; a key
        whose read failed stays out of the result (its operation stays
        pending in the history) and the first failure is re-raised
        after the whole fan-out finishes.
        """
        ordered = list(dict.fromkeys(keys))  # dedup, keep order
        table = self.authority.table()
        pairs = [
            (key, self.history.invoke(
                self.client_id, "get", key, None, now_ms()
            ))
            for key in ordered
        ]
        by_gid: Dict[int, List[Tuple[str, Operation]]] = {}
        for key, operation in pairs:
            by_gid.setdefault(table.owner(key), []).append((key, operation))
        for gid in by_gid:
            self._client(gid)  # materialize before the threads race
        results: Dict[str, Any] = {}
        failures: List[ClientError] = []

        def drain(items: List[Tuple[str, Operation]]) -> None:
            for key, operation in items:
                try:
                    results[key] = self._route(
                        ("get", key), key, operation=operation
                    )
                except ClientError as exc:
                    failures.append(exc)

        threads = [
            threading.Thread(target=drain, args=(items,), daemon=True)
            for items in by_gid.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return results
