"""Spawn and reconfigure a sharded deployment of ``repro.net`` groups.

:class:`ShardedCluster` owns N independent
:class:`~repro.net.procs.LocalCluster` groups (each its own Raft
group of real node processes, optionally with its own safety monitor)
plus the process-local :class:`~repro.shard.client.TableAuthority`,
and drives shard **migration** -- the split/merge reconfiguration
scenario -- as a five-step protocol over the admin wire surface:

1. **Freeze** (source group): push ``version + 1`` ownership *minus*
   the moving range to every live source node.  From here no stamped
   command on the range enters any source log (``"wrong-shard"`` at
   admission); only retries of *pre-freeze* entries are still served,
   for at-most-once.
2. **Drain** (source group): wait for a leader that has committed an
   entry *of its own term* at or past its post-freeze log length, and
   take its applied in-range dump (the commit barrier -- see
   :meth:`ShardedCluster._barrier_dump` for why that dump is the
   range's provably final state even across leader kills mid-drain).
3. **Grant** (destination group): push ``version + 1`` ownership
   *plus* the range to every live destination node.
4. **Install** (destination group): delete the destination's stale
   in-range keys (a range that bounced src->dst->src would otherwise
   resurrect old values), then put every dump item -- ordinary
   replicated client commands, stamped with the new version.
5. **Publish**: push the new version to every *other* group (so
   clients holding the new table are accepted everywhere), then flip
   the authority.  Only now do clients start routing the range to its
   new owner.

A client is never left without a route: before publish the range's
writes are refused-but-unapplied (bounded retries at the client), and
after publish they land at the new owner.  Timed-out operations stay
pending and are never re-routed, so nothing can apply twice across
groups.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple

from ..net.client import NetClient
from ..net.procs import LocalCluster
from ..net.wire import ProtocolError, ShardDumpResponse
from .client import ShardClient, TableAuthority
from .ring import KeyRange, RoutingTable


class ShardedCluster:
    """N independent localhost Raft groups behind one routing table."""

    def __init__(
        self,
        groups: int = 2,
        nodes_per_group: int = 3,
        seed: int = 0,
        log_dir: Optional[str] = None,
        monitor: bool = False,
        **cluster_kwargs,
    ) -> None:
        if groups < 1:
            raise ValueError("need at least one group")
        self.gids: Tuple[int, ...] = tuple(range(1, groups + 1))
        self.authority = TableAuthority(RoutingTable.initial(self.gids))
        self.clusters: Dict[int, LocalCluster] = {}
        for gid in self.gids:
            self.clusters[gid] = LocalCluster(
                nids=tuple(range(1, nodes_per_group + 1)),
                # Distinct per-group seeds: election jitter must not be
                # correlated across groups (or every group's leader
                # lands on the same nid and every kill is a storm).
                seed=seed * 131 + gid,
                log_dir=(
                    os.path.join(log_dir, f"group-{gid}")
                    if log_dir is not None else None
                ),
                monitor=monitor,
                **cluster_kwargs,
            )
        #: What each group was last told: ``gid -> (version, ranges)``.
        #: The respawn path re-pushes this (a fresh process refuses
        #: stamped commands until told its ownership).
        self._pushed: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        self._admins: Dict[int, NetClient] = {}
        #: Orders ownership pushes against each other: :meth:`respawn`
        #: runs on a nemesis thread, and its re-push of ``_pushed``
        #: must never interleave with a migration's freeze push (a
        #: stale pre-freeze re-push landing after the freeze would
        #: re-admit the frozen range at the fresh node).
        self._ownership_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardedCluster":
        for cluster in self.clusters.values():
            cluster.start()
        table = self.authority.table()
        for gid in self.gids:
            self._push_ownership(gid, table.version, self._ranges(table, gid))
        return self

    def shutdown(self) -> None:
        for admin in self._admins.values():
            admin.close()
        self._admins.clear()
        for cluster in self.clusters.values():
            cluster.shutdown()

    def __enter__(self) -> "ShardedCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def client(self, client_id: str = "shard-client-0", **kwargs) -> ShardClient:
        return ShardClient(
            self.authority,
            {gid: cluster.addresses
             for gid, cluster in self.clusters.items()},
            client_id=client_id,
            **kwargs,
        )

    def logs(self) -> Dict[int, Dict[int, str]]:
        return {gid: cluster.logs() for gid, cluster in self.clusters.items()}

    def monitor_status(self, gid: int, timeout_s: float = 5.0):
        return self.clusters[gid].monitor_status(timeout_s=timeout_s)

    # ------------------------------------------------------------------
    # Faults (the per-shard nemesis surface)
    # ------------------------------------------------------------------

    def kill(self, gid: int, nid: int) -> None:
        self.clusters[gid].kill(nid)

    def wait_for_leader(self, gid: int, timeout_s: float = 10.0) -> int:
        return self.clusters[gid].wait_for_leader(timeout_s=timeout_s)

    def respawn(self, gid: int, nid: int, timeout_s: float = 10.0) -> None:
        """Restart a killed node and re-push its group's ownership.

        Until the push lands, the fresh process refuses every stamped
        keyed command (it holds no ownership), which is exactly what
        keeps a respawn mid-migration safe.  Safe to call from a
        nemesis thread while a migration runs on another: the re-push
        goes through this call's own client (never the shared admin,
        whose socket a concurrent migration may be mid-request on) and
        takes the ownership lock, so it pushes either the pre-freeze
        fact before the freeze starts or the post-freeze fact after it
        completes -- never a stale fact after the freeze."""
        cluster = self.clusters[gid]
        cluster.spawn(nid)
        deadline = time.monotonic() + timeout_s
        with cluster.client(client_id=f"respawn-probe-{gid}") as probe:
            while time.monotonic() < deadline:
                if probe.status(nid) is not None:
                    break
                time.sleep(0.05)
            else:
                raise RuntimeError(
                    f"group {gid} node {nid} not healthy after respawn"
                )
            with self._ownership_lock:
                if gid not in self._pushed:
                    return
                version, ranges = self._pushed[gid]
                deadline = time.monotonic() + timeout_s
                while True:
                    try:
                        probe.shard_ownership(nid, version, ranges)
                        break
                    except (OSError, ProtocolError, ConnectionError):
                        if time.monotonic() >= deadline:
                            raise
                        time.sleep(0.05)

    # ------------------------------------------------------------------
    # Migration: freeze -> drain -> grant -> install -> publish
    # ------------------------------------------------------------------

    def split(self, src: int, dst: int, **kwargs) -> Tuple[KeyRange, RoutingTable]:
        """Move the upper half of ``src``'s widest range to ``dst``.
        Returns the moved range (so a later :meth:`merge` can return
        it) and the published table."""
        rng = self.authority.table().split_candidate(src)
        return rng, self.migrate(rng, dst, **kwargs)

    def merge(self, rng: KeyRange, dst: int, **kwargs) -> RoutingTable:
        """Return a previously split range to ``dst`` (migration in
        the other direction -- same protocol, same checks)."""
        return self.migrate(rng, dst, **kwargs)

    def migrate(
        self, rng: KeyRange, dst: int, drain_timeout_s: float = 30.0
    ) -> RoutingTable:
        """Move ownership of ``rng`` to group ``dst`` under load.

        Safe to **retry verbatim** after a failure: the publish step is
        last and purely local, so a failed call left the table
        unchanged; every earlier step is idempotent (ownership pushes
        accept re-sends of the same version, install re-writes the same
        final state).  Until a retry succeeds the range is frozen --
        unavailable, never inconsistent."""
        table = self.authority.table()
        owners = {
            gid for entry, gid in table.entries if entry.overlaps(rng)
        }
        if len(owners) != 1:
            raise ValueError(
                f"{rng.describe()} spans groups {sorted(owners)}; migrate "
                f"one owner's range at a time"
            )
        src = owners.pop()
        if src == dst:
            raise ValueError(f"group {dst} already owns {rng.describe()}")
        if dst not in self.clusters:
            raise ValueError(f"unknown destination group {dst}")
        new_table = table.move(rng, dst)
        version = new_table.version

        # 1. Freeze: the source stops admitting the range.
        self._push_ownership(src, version, self._ranges(new_table, src))
        # 2. Drain: the range's final state, provably complete.
        dump = self._barrier_dump(src, rng, timeout_s=drain_timeout_s)
        # 3. Grant: the destination starts admitting the range (clients
        #    cannot route to it yet -- the table is unpublished).
        self._push_ownership(dst, version, self._ranges(new_table, dst))
        # 4. Install: replicated delete-then-put of the final state.
        self._install(dst, rng, dump.items, version)
        # 5. Publish: everyone else learns the version, then clients do.
        for gid in self.gids:
            if gid not in (src, dst):
                self._push_ownership(
                    gid, version, self._ranges(new_table, gid)
                )
        self.authority.publish(new_table)
        return new_table

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------

    @staticmethod
    def _ranges(
        table: RoutingTable, gid: int
    ) -> Tuple[Tuple[int, int], ...]:
        return tuple(
            (entry.lo, entry.hi) for entry in table.ranges_of(gid)
        )

    def _admin(self, gid: int) -> NetClient:
        if gid not in self._admins:
            self._admins[gid] = NetClient(
                self.clusters[gid].addresses,
                client_id=f"shard-admin-{gid}",
            )
        return self._admins[gid]

    def _push_ownership(
        self,
        gid: int,
        version: int,
        ranges: Tuple[Tuple[int, int], ...],
        timeout_s: float = 10.0,
    ) -> None:
        """Push ``(version, ranges)`` to every **live** node of the
        group; raises if any live node cannot be made to ack.

        Dead nodes are skipped deliberately: a SIGKILLed process lost
        its in-memory ownership with everything else, and its respawn
        refuses stamped commands until :meth:`respawn` re-pushes --
        refusal is safe, amnesia would not be.  The whole push (and
        the ``_pushed`` record) sits under the ownership lock so a
        concurrent respawn can never wedge a stale fact in between."""
        with self._ownership_lock:
            admin = self._admin(gid)
            pending = {
                nid for nid, handle in self.clusters[gid].handles.items()
                if handle.alive
            }
            deadline = time.monotonic() + timeout_s
            while pending and time.monotonic() < deadline:
                for nid in sorted(pending):
                    if not self.clusters[gid].handles[nid].alive:
                        pending.discard(nid)
                        continue
                    try:
                        reply = admin.shard_ownership(nid, version, ranges)
                    except (OSError, ProtocolError, ConnectionError):
                        continue
                    if reply.version >= version:
                        pending.discard(nid)
                if pending:
                    time.sleep(0.05)
            if pending:
                raise RuntimeError(
                    f"group {gid}: live nodes {sorted(pending)} did not "
                    f"ack ownership v{version}"
                )
            self._pushed[gid] = (version, ranges)

    def _barrier_dump(
        self, gid: int, rng: KeyRange, timeout_s: float = 30.0
    ) -> ShardDumpResponse:
        """An in-range dump taken behind a same-term commit barrier:
        from a leader that has committed an entry *of its own term* at
        or past its log length as first observed in that term.

        Soundness (drain): the freeze already completed, so no node
        admits new in-range entries -- a node killed and respawned
        refuses them outright until :meth:`respawn` re-pushes the
        post-freeze ownership.  Leadership within a term is contiguous
        (a node votes for itself and can never be elected twice in one
        term), so two dumps from the same ``(nid, term)`` with
        ``role == "leader"`` bracket one continuous reign: every
        in-range entry in that leader's log sits below ``n0``, its log
        length at the first dump.  When a later dump from the same
        reign shows ``commit_in_term`` and ``commit_len >= n0``, all
        those entries are committed and applied, hence in the dump.
        Any in-range entry on some *other* node's log is absent from
        the leader's log; by the Log Matching property it conflicts
        below the committed term-``T`` entry, and any candidate
        carrying it loses the election up-to-date check against the
        majority holding that entry (its last log term is ``< T``), so
        it can never commit later.  The dump is the range's final
        state.

        This also covers the weaker need of the install step's
        stale-key sweep: a *fresh* leader's commit index may trail
        entries committed under its predecessor until it commits in
        its own term, so only a barrier dump is guaranteed to have
        applied every committed in-range key.

        The wait is not a quiesce: an idle group never commits in a
        new term on its own, so each unsatisfied round nudges the
        leader with a replicated no-op (unkeyed, so never
        shard-refused) to move the barrier.  Leader kills mid-wait
        just re-anchor the barrier at the next reign.
        """
        cluster = self.clusters[gid]
        admin = self._admin(gid)
        deadline = time.monotonic() + timeout_s
        base: Optional[Tuple[int, int, int]] = None  # (nid, term, n0)
        while time.monotonic() < deadline:
            try:
                leader = cluster.wait_for_leader(
                    timeout_s=min(5.0, max(0.1,
                                           deadline - time.monotonic()))
                )
                dump = admin.shard_dump(leader, rng.lo, rng.hi)
            except (RuntimeError, OSError, ProtocolError, ConnectionError):
                continue
            if dump.role != "leader":
                time.sleep(0.05)
                continue
            if base is None or (base[0], base[1]) != (dump.nid, dump.term):
                base = (dump.nid, dump.term, dump.log_len)
            if dump.commit_in_term and dump.commit_len >= base[2]:
                return dump
            try:
                admin.request_direct(leader, ("noop",), timeout_s=1.0)
            except (OSError, ProtocolError, ConnectionError):
                pass
            time.sleep(0.05)
        raise RuntimeError(
            f"group {gid}: {rng.describe()} gave no barrier dump within "
            f"{timeout_s:.0f}s (last leader base {base})"
        )

    def _install(
        self,
        dst: int,
        rng: KeyRange,
        items: Tuple[Tuple[str, object], ...],
        version: int,
    ) -> None:
        """Write the drained state into the destination as ordinary
        replicated commands: first delete the destination's stale
        in-range keys (a range that bounced away and back would
        otherwise resurrect values the interim owner overwrote or
        deleted), then put every dump item.  Each command rides the
        normal at-most-once retry loop, so leader kills mid-install
        are survived, not special-cased."""
        admin = self._admin(dst)
        incoming = dict(items)
        stale = self._barrier_dump(dst, rng)
        for key, _ in stale.items:
            if key not in incoming:
                admin.request(("delete", key), table_version=version)
        for key, value in sorted(incoming.items()):
            admin.request(("put", key, value), table_version=version)
