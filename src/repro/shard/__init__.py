"""Multi-group sharding over independent ``repro.net`` groups.

One consensus group caps out no matter how fast its node loop gets
(PR 6 measured the ceiling); the ROADMAP's "millions of users" needs
many groups.  This package routes keys across N independent
:mod:`repro.net` clusters:

* :mod:`repro.shard.ring` -- a deterministic hash ring: named key
  ranges over group ids, held in a **versioned** routing table whose
  versions make stale routing *safe* (a group refuses keys it no
  longer owns, the client refetches and retries).
* :mod:`repro.shard.client` -- :class:`ShardClient`: routes single-key
  operations to the owning group, fans multi-key operations out across
  groups, records one Jepsen-style history across all of them.
* :mod:`repro.shard.manager` -- :class:`ShardedCluster`: spawns the
  groups (reusing :class:`repro.net.procs.LocalCluster` per group, one
  safety monitor per group) and drives shard **split/merge** as a
  checked reconfiguration scenario: freeze the range, drain the folded
  state to the new owner, bump the table version.

Linearizability composes for free: the Wing-Gong checker is per-key
(locality), every key lives in exactly one group at a time, so the
merged cross-group history is checkable with the unmodified checker.
"""

from .client import ShardClient, TableAuthority
from .manager import ShardedCluster
from .ring import HASH_SPACE, KeyRange, RoutingTable, hash_key
from .scenario import (
    ShardScenarioConfig,
    ShardScenarioResult,
    run_shard_scenario,
)

__all__ = [
    "HASH_SPACE",
    "KeyRange",
    "RoutingTable",
    "ShardClient",
    "ShardScenarioConfig",
    "ShardScenarioResult",
    "ShardedCluster",
    "TableAuthority",
    "hash_key",
    "run_shard_scenario",
]
