"""A deterministic hash ring with a versioned routing table.

Keys hash to a 64-bit space via BLAKE2b (stable across processes and
Python versions -- the built-in ``hash`` is salted per process, which
would make every node disagree about ownership).  The space is
partitioned into half-open ranges ``[lo, hi)``, each owned by exactly
one group; a :class:`RoutingTable` is an immutable snapshot of that
partition stamped with a **version**.

Versions are what make stale routing safe rather than merely unlikely:
every reassignment produces a *new* table with ``version + 1``, the
old owner learns it lost the range *before* the new table is
published, and nodes refuse keyed commands they do not own (wire error
``"wrong-shard"``).  A client holding any stale table therefore either
routes correctly or gets refused -- it can never read or write a key
at a group that no longer owns it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: The key hash space is [0, HASH_SPACE), 64 bits.
HASH_SPACE = 1 << 64


def hash_key(key: str) -> int:
    """Deterministic 64-bit position of ``key`` on the ring."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class KeyRange:
    """A half-open slice ``[lo, hi)`` of the hash space."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi <= HASH_SPACE:
            raise ValueError(f"bad range [{self.lo}, {self.hi})")

    def contains(self, position: int) -> bool:
        return self.lo <= position < self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def halves(self) -> Tuple["KeyRange", "KeyRange"]:
        """Split at the midpoint (the canonical split geometry)."""
        if self.width < 2:
            raise ValueError(f"range [{self.lo}, {self.hi}) cannot split")
        mid = self.lo + self.width // 2
        return KeyRange(self.lo, mid), KeyRange(mid, self.hi)

    def covers(self, other: "KeyRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "KeyRange") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def describe(self) -> str:
        return f"[{self.lo:#x}, {self.hi:#x})"


def _coalesce(
    entries: Iterable[Tuple[KeyRange, int]]
) -> Tuple[Tuple[KeyRange, int], ...]:
    """Merge adjacent ranges with the same owner (canonical form, so
    two tables describing the same ownership compare equal)."""
    out: List[Tuple[KeyRange, int]] = []
    for rng, gid in sorted(entries, key=lambda e: e[0].lo):
        if out and out[-1][1] == gid and out[-1][0].hi == rng.lo:
            out[-1] = (KeyRange(out[-1][0].lo, rng.hi), gid)
        else:
            out.append((rng, gid))
    return tuple(out)


@dataclass(frozen=True)
class RoutingTable:
    """An immutable, versioned partition of the hash space into
    group-owned ranges.  All mutation is functional: :meth:`move`
    returns a new table with ``version + 1``."""

    version: int
    entries: Tuple[Tuple[KeyRange, int], ...]

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"table version {self.version} must be >= 1")
        if not self.entries:
            raise ValueError("a routing table needs at least one range")
        object.__setattr__(self, "entries", _coalesce(self.entries))
        cursor = 0
        for rng, _ in self.entries:
            if rng.lo != cursor:
                raise ValueError(
                    f"ranges must partition the space: gap/overlap at "
                    f"{cursor:#x} (next range starts at {rng.lo:#x})"
                )
            cursor = rng.hi
        if cursor != HASH_SPACE:
            raise ValueError(
                f"ranges must cover the space: they end at {cursor:#x}"
            )
        object.__setattr__(
            self, "_starts", tuple(rng.lo for rng, _ in self.entries)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def initial(cls, group_ids: Sequence[int]) -> "RoutingTable":
        """Version 1: the space cut into equal contiguous slices, one
        per group, in group-id order (deterministic for any input
        order)."""
        gids = sorted(set(group_ids))
        if not gids:
            raise ValueError("need at least one group")
        n = len(gids)
        bounds = [HASH_SPACE * i // n for i in range(n)] + [HASH_SPACE]
        return cls(
            version=1,
            entries=tuple(
                (KeyRange(bounds[i], bounds[i + 1]), gid)
                for i, gid in enumerate(gids)
            ),
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def owner_of_hash(self, position: int) -> int:
        if not 0 <= position < HASH_SPACE:
            raise ValueError(f"position {position} outside the hash space")
        index = bisect_right(self._starts, position) - 1
        return self.entries[index][1]

    def owner(self, key: str) -> int:
        """The group id owning ``key``."""
        return self.owner_of_hash(hash_key(key))

    def ranges_of(self, gid: int) -> Tuple[KeyRange, ...]:
        return tuple(rng for rng, owner in self.entries if owner == gid)

    def groups(self) -> Tuple[int, ...]:
        return tuple(sorted({gid for _, gid in self.entries}))

    def widest_range_of(self, gid: int) -> KeyRange:
        ranges = self.ranges_of(gid)
        if not ranges:
            raise ValueError(f"group {gid} owns nothing")
        return max(ranges, key=lambda rng: (rng.width, -rng.lo))

    # ------------------------------------------------------------------
    # Reassignment (functional)
    # ------------------------------------------------------------------

    def move(self, rng: KeyRange, dst: int) -> "RoutingTable":
        """Reassign exactly ``rng`` to group ``dst``; every overlapped
        entry is carved, everything outside ``rng`` keeps its owner.
        Returns a new table with ``version + 1``."""
        out: List[Tuple[KeyRange, int]] = []
        for entry_rng, gid in self.entries:
            if not entry_rng.overlaps(rng):
                out.append((entry_rng, gid))
                continue
            if entry_rng.lo < rng.lo:
                out.append((KeyRange(entry_rng.lo, rng.lo), gid))
            if rng.hi < entry_rng.hi:
                out.append((KeyRange(max(rng.lo, entry_rng.lo), rng.hi), dst))
                out.append((KeyRange(rng.hi, entry_rng.hi), gid))
            else:
                out.append(
                    (KeyRange(max(rng.lo, entry_rng.lo), entry_rng.hi), dst)
                )
        return RoutingTable(version=self.version + 1, entries=tuple(out))

    def split_candidate(self, gid: int) -> KeyRange:
        """The range a split of ``gid`` would hand off: the upper half
        of its widest range (deterministic, so a split/merge round trip
        is reproducible per seed)."""
        return self.widest_range_of(gid).halves()[1]

    # ------------------------------------------------------------------
    # Serialization (debug / CLI / a future networked authority)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "entries": [[rng.lo, rng.hi, gid] for rng, gid in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RoutingTable":
        return cls(
            version=data["version"],
            entries=tuple(
                (KeyRange(lo, hi), gid) for lo, hi, gid in data["entries"]
            ),
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{rng.describe()}->g{gid}" for rng, gid in self.entries
        )
        return f"v{self.version}: {parts}"
