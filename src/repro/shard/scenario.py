"""Shard split/merge under load, as a checked scenario.

The Jepsen-style drill for the sharded deployment: worker threads
drive a mixed kvstore workload through :class:`ShardClient`\\ s (one
history each) while the control loop performs a shard **split** (half
of group 1's range moves to group 2) and then a **merge** (the range
moves back) mid-load, and a per-shard nemesis -- on its own thread,
so faults keep firing while the control thread is blocked inside a
migration -- kills group leaders and partitions them away,
deliberately jittered into the migration window, which is when the
freeze/drain/install protocol is actually under fire.

At the end the per-client histories are merged
(:func:`repro.net.client.merge_histories`) and the whole cross-group
record is checked per key by the unmodified Wing-Gong checker: every
key lives in exactly one group at a time, so linearizability composes
across shards by locality.  With per-group safety monitors enabled,
each group's live verdict is collected too.

Deterministic knobs (seeded workload mix, load-relative fault
schedule) keep runs reproducible; wall-clock still varies, so the
checked property is the safety verdict, never timing.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.client import ClientError, merge_histories
from ..runtime.history import History
from ..runtime.linearize import LinearizabilityResult, check_history
from ..runtime.nemesis import ShardFault, per_shard_schedule
from .manager import ShardedCluster
from .ring import KeyRange, RoutingTable

log = logging.getLogger("repro.shard.scenario")


@dataclass
class ShardScenarioConfig:
    """One scenario run: topology, workload mix, fault schedule."""

    groups: int = 2
    nodes_per_group: int = 3
    clients: int = 3
    ops: int = 200
    keys: int = 32
    seed: int = 0

    #: Operation mix (the remainder after reads/adds/deletes is puts).
    read_fraction: float = 0.3
    add_fraction: float = 0.35
    delete_fraction: float = 0.05

    #: Completed-op fractions at which the split and the merge start.
    split_at_frac: float = 0.25
    merge_at_frac: float = 0.55

    #: The per-shard nemesis (load-relative, seeded).
    faults: bool = True
    kills_per_group: int = 1
    respawn_after_ops: int = 30
    partition_groups: int = 1
    partition_ops: int = 25

    #: Per-operation client deadline; a timed-out op stays pending.
    op_timeout_s: float = 8.0
    #: Whole-run safety valve: workers abort past this.
    run_timeout_s: float = 180.0
    monitor: bool = False
    log_dir: Optional[str] = None


@dataclass
class ShardScenarioStats:
    ops_attempted: int = 0
    ops_completed: int = 0
    ops_unknown: int = 0
    reroutes: int = 0
    kills: int = 0
    respawns: int = 0
    partitions: int = 0
    migrations_done: int = 0
    migrations_failed: int = 0
    fault_log: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.ops_completed}/{self.ops_attempted} ops ok "
            f"({self.ops_unknown} unknown, {self.reroutes} reroutes), "
            f"{self.kills} kills, {self.partitions} partitions, "
            f"{self.migrations_done}/"
            f"{self.migrations_done + self.migrations_failed} migrations"
        )


@dataclass
class ShardScenarioResult:
    config: ShardScenarioConfig
    history: History
    linearizability: LinearizabilityResult
    stats: ShardScenarioStats
    table: RoutingTable
    #: Per-group monitor verdict (``None`` when no monitor attached).
    monitor_ok: Dict[int, Optional[bool]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        # Failed migration *attempts* are tolerated (they are retried
        # and leave nothing inconsistent behind); what must hold is
        # that both reconfigurations eventually completed and the
        # merged history checks out.
        expected = 2 if self.config.groups > 1 else 0
        return (
            self.linearizability.ok
            and self.stats.migrations_done == expected
            and all(v is not False for v in self.monitor_ok.values())
        )

    def describe(self) -> str:
        verdict = "OK" if self.ok else "VIOLATIONS FOUND"
        lines = [
            f"shard scenario seed={self.config.seed}: {verdict}",
            f"  {self.stats.describe()}",
            f"  routing table: {self.table.describe()}",
            f"  {self.linearizability.describe()}",
        ]
        for gid, good in sorted(self.monitor_ok.items()):
            state = "ok" if good else ("unreachable" if good is None
                                       else "VIOLATION")
            lines.append(f"  monitor g{gid}: {state}")
        if self.stats.fault_log:
            lines.append("  faults: " + "; ".join(self.stats.fault_log))
        return "\n".join(lines)


class _Workload:
    """The worker side: seeded per-client op streams over one shared
    attempt counter (the clock the nemesis and migrations key off)."""

    def __init__(self, config: ShardScenarioConfig,
                 cluster: ShardedCluster) -> None:
        self.config = config
        self.cluster = cluster
        self.attempts = 0
        self.completed = 0
        self.unknown = 0
        self.reroutes = 0
        self._lock = threading.Lock()
        self.abort = threading.Event()
        self.histories: List[History] = []
        self._threads: List[threading.Thread] = []

    def _bump(self, ok: bool) -> None:
        with self._lock:
            self.attempts += 1
            if ok:
                self.completed += 1
            else:
                self.unknown += 1

    def _run_client(self, index: int, quota: int) -> None:
        config = self.config
        rng = random.Random(config.seed * 1009 + index)
        client = self.cluster.client(
            client_id=f"shard-w{index}",
            total_timeout_s=config.op_timeout_s,
        )
        self.histories.append(client.history)
        with client:
            for _ in range(quota):
                if self.abort.is_set():
                    return
                key = f"k{rng.randrange(config.keys)}"
                draw = rng.random()
                try:
                    if draw < config.read_fraction:
                        client.get(key)
                    elif draw < config.read_fraction + config.add_fraction:
                        client.add(key, rng.randrange(1, 10))
                    elif draw < (config.read_fraction + config.add_fraction
                                 + config.delete_fraction):
                        client.delete(key)
                    else:
                        client.put(key, rng.randrange(1000))
                    self._bump(ok=True)
                except ClientError:
                    # Unknown outcome (or exhausted re-routes): the
                    # operation stays pending in the history.
                    self._bump(ok=False)
            with self._lock:
                self.reroutes += client.reroutes

    def start(self) -> None:
        config = self.config
        quota, extra = divmod(config.ops, config.clients)
        for index in range(config.clients):
            thread = threading.Thread(
                target=self._run_client,
                args=(index, quota + (1 if index < extra else 0)),
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def join(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        if self.running():
            self.abort.set()
            for thread in self._threads:
                thread.join(5.0)


class _Nemesis:
    """The fault side: consumes a load-relative schedule against the
    live cluster on its **own daemon thread** (sharing the control
    thread would stall every fault for the full length of a migration
    call -- precisely the window faults exist to hit); every action is
    best-effort (a fault that finds its target already dead just
    logs).  Cluster surfaces it touches are nemesis-thread-safe:
    ``wait_for_leader`` probes through a fresh client, ``respawn``
    re-pushes ownership through its own client under the manager's
    ownership lock, and partitions go through this class's own admin
    clients."""

    def __init__(self, cluster: ShardedCluster,
                 schedule: Tuple[ShardFault, ...],
                 stats: ShardScenarioStats) -> None:
        self.cluster = cluster
        self.pending = list(schedule)
        self.stats = stats
        self._killed: Dict[int, int] = {}
        self._partitioned: Dict[int, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._halt = threading.Event()

    def start(self, at_op_fn) -> None:
        """Fire schedule entries as ``at_op_fn()`` (the workload's
        attempt counter) passes them, until :meth:`stop` or the
        schedule runs dry."""

        def loop() -> None:
            while not self._halt.is_set() and self.pending:
                self.poll(at_op_fn())
                self._halt.wait(0.02)

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._halt.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def poll(self, at_op: int) -> None:
        while self.pending and self.pending[0].at_op <= at_op:
            fault = self.pending.pop(0)
            try:
                self._fire(fault)
                self.stats.fault_log.append(fault.describe())
            except (ClientError, RuntimeError, OSError) as exc:
                self.stats.fault_log.append(
                    f"{fault.describe()} failed: {exc}"
                )

    def _fire(self, fault: ShardFault) -> None:
        gid = fault.gid
        if fault.action == "kill-leader":
            leader = self.cluster.wait_for_leader(gid, timeout_s=5.0)
            self.cluster.kill(gid, leader)
            self._killed[gid] = leader
            self.stats.kills += 1
        elif fault.action == "respawn":
            nid = self._killed.pop(gid, None)
            if nid is not None:
                self.cluster.respawn(gid, nid)
                self.stats.respawns += 1
        elif fault.action == "partition-leader":
            leader = self.cluster.wait_for_leader(gid, timeout_s=5.0)
            self._set_partition(gid, leader)
            self._partitioned[gid] = leader
            self.stats.partitions += 1
        elif fault.action == "heal":
            if self._partitioned.pop(gid, None) is not None:
                self._set_partition(gid, None)

    def _set_partition(self, gid: int, leader: Optional[int]) -> None:
        """Isolate ``leader`` from its group (raft traffic only; admin
        and client connections still reach it, so it keeps refusing or
        stalling requests like a real isolated leader).  ``None``
        heals."""
        cluster = self.cluster.clusters[gid]
        with cluster.client(client_id=f"nemesis-g{gid}") as admin:
            for nid, handle in cluster.handles.items():
                if not handle.alive:
                    continue
                if leader is None:
                    blocked: Tuple[int, ...] = ()
                elif nid == leader:
                    blocked = tuple(
                        other for other in cluster.handles if other != nid
                    )
                else:
                    blocked = (leader,)
                try:
                    admin.partition(nid, blocked)
                except (ClientError, OSError) as exc:
                    log.warning("partition push to g%d n%d failed: %s",
                                gid, nid, exc)

    def heal_all(self) -> None:
        for gid in list(self._partitioned):
            try:
                self._fire(ShardFault(0, gid, "heal"))
            except (ClientError, RuntimeError, OSError):
                pass
        for gid, nid in list(self._killed.items()):
            try:
                self.cluster.respawn(gid, nid)
                self.stats.respawns += 1
            except (ClientError, RuntimeError, OSError):
                pass
        self._killed.clear()


def run_shard_scenario(config: ShardScenarioConfig) -> ShardScenarioResult:
    """Run one seeded split/merge-under-load drill; returns the merged
    history plus every verdict."""
    stats = ShardScenarioStats()
    schedule = (
        per_shard_schedule(
            config.seed,
            tuple(range(1, config.groups + 1)),
            config.ops,
            kills_per_group=config.kills_per_group,
            respawn_after_ops=config.respawn_after_ops,
            partition_groups=config.partition_groups,
            partition_ops=config.partition_ops,
        )
        if config.faults
        else ()
    )
    split_at = int(config.ops * config.split_at_frac)
    merge_at = int(config.ops * config.merge_at_frac)
    with ShardedCluster(
        groups=config.groups,
        nodes_per_group=config.nodes_per_group,
        seed=config.seed,
        monitor=config.monitor,
        log_dir=config.log_dir,
    ) as cluster:
        for gid in cluster.gids:
            cluster.wait_for_leader(gid)
        workload = _Workload(config, cluster)
        nemesis = _Nemesis(cluster, schedule, stats)
        workload.start()
        nemesis.start(lambda: workload.attempts)
        deadline = time.monotonic() + config.run_timeout_s
        moved: Optional[KeyRange] = None
        merged_back = False
        src, dst = 1, 2 if config.groups > 1 else 1
        # A failed migration is retryable verbatim (nothing published,
        # every earlier step idempotent); until it succeeds the range
        # is frozen -- unavailable, never inconsistent -- so retry a
        # few times rather than strand the workload's keys.
        attempts_left = 3
        while workload.running():
            if time.monotonic() > deadline:
                workload.abort.set()
                stats.fault_log.append("run timeout: aborted workload")
                break
            at_op = workload.attempts
            if (moved is None and at_op >= split_at and dst != src
                    and attempts_left > 0):
                try:
                    moved, _ = cluster.split(src, dst)
                    stats.migrations_done += 1
                    attempts_left = 3
                    stats.fault_log.append(
                        f"@{at_op} split {moved.describe()} g{src}->g{dst}"
                    )
                except (ClientError, RuntimeError, OSError) as exc:
                    stats.migrations_failed += 1
                    attempts_left -= 1
                    stats.fault_log.append(f"@{at_op} split failed: {exc}")
            elif (moved is not None and not merged_back
                  and at_op >= merge_at and attempts_left > 0):
                try:
                    cluster.merge(moved, src)
                    stats.migrations_done += 1
                    attempts_left = 3
                    stats.fault_log.append(
                        f"@{at_op} merge {moved.describe()} g{dst}->g{src}"
                    )
                    merged_back = True
                except (ClientError, RuntimeError, OSError) as exc:
                    stats.migrations_failed += 1
                    attempts_left -= 1
                    stats.fault_log.append(f"@{at_op} merge failed: {exc}")
            time.sleep(0.02)
        nemesis.stop()
        nemesis.heal_all()
        workload.join(timeout_s=30.0)
        stats.ops_attempted = workload.attempts
        stats.ops_completed = workload.completed
        stats.ops_unknown = workload.unknown
        stats.reroutes = workload.reroutes
        monitor_ok: Dict[int, Optional[bool]] = {}
        if config.monitor:
            for gid in cluster.gids:
                status = cluster.monitor_status(gid)
                monitor_ok[gid] = None if status is None else status.ok
        table = cluster.authority.table()
    history = merge_histories(workload.histories)
    return ShardScenarioResult(
        config=config,
        history=history,
        linearizability=check_history(history),
        stats=stats,
        table=table,
        monitor_ok=monitor_ok,
    )
