"""Typed event tracing with per-node Lamport clocks.

The runtime-checking literature the chaos layer follows (Derecho's
runtime verification, the MongoDB logless-reconfig analysis) localizes
protocol bugs from *recorded event traces*, not from a final assertion
message.  :class:`Tracer` is that recorder for the simulated cluster: a
bounded ring buffer of :class:`TraceEvent` values, each stamped with

* the simulated wall clock (``t_ms``, the discrete-event simulator's
  ``now``), and
* a per-node Lamport clock.  Local events tick the node's counter;
  message receipt joins the sender's send-stamp (``max(local, sent)+1``),
  so ``lamport`` ordering is consistent with the happens-before
  relation even when the simulated clock ties or fault-injected
  reordering delivers messages out of send order.

The event vocabulary is closed (:data:`EVENT_KINDS`): ``send`` /
``receive`` / ``drop`` / ``duplicate`` for the transport, ``crash`` /
``restart`` for fail-stop faults, ``partition_start`` for nemesis
partitions, ``election_start`` / ``leader_elected`` / ``commit`` /
``reconfig`` for the protocol, and ``client_invoke`` /
``client_response`` for the workload.  Anything else is a programming
error and raises immediately.

**Disabled-path contract:** the default tracer everywhere is
:data:`NULL_TRACER`, whose recording methods are empty and return 0.
Instrumented hot paths guard on ``tracer.enabled`` so the disabled
cost is one attribute test and (at call sites that cannot guard) one
no-op call -- the overhead benchmark holds the instrumented-but-
disabled cluster within 5% of an uninstrumented baseline.  Tracing
never consumes simulator or fault-plan randomness and never schedules
simulator events, so enabling it cannot perturb a seeded run.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

#: The closed vocabulary of event kinds a tracer will accept.
EVENT_KINDS = frozenset({
    "send",
    "receive",
    "drop",
    "duplicate",
    "crash",
    "restart",
    "partition_start",
    "election_start",
    "leader_elected",
    "commit",
    "reconfig",
    "client_invoke",
    "client_response",
    # Live-cluster kinds (repro.net): a node's log/commit advance (the
    # monitor's input) and a leader folding its committed prefix.
    "log_advance",
    "compaction",
    # Sharding (repro.shard): a node adopting a routing-table version
    # (the freeze/grant/publish pushes of a shard migration).
    "shard_ownership",
})

#: First line of every JSONL export: lets a consumer distinguish "the
#: buffer was empty" from "the buffer evicted events" -- fatal ambiguity
#: for an online monitor reading someone else's dump.
TRACE_HEADER_KEY = "__trace_header"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``node`` is the node the event happened *at* (the sender for
    transport events); ``lamport`` is that node's Lamport stamp;
    ``data`` carries kind-specific detail (peer, message type, term,
    commit length, ...), restricted to JSON-representable values.
    """

    kind: str
    t_ms: float
    node: object
    lamport: int
    data: Mapping = field(default_factory=dict)

    def to_dict(self) -> Dict:
        out = {
            "kind": self.kind,
            "t_ms": round(self.t_ms, 6),
            "node": self.node,
            "lamport": self.lamport,
        }
        out.update(self.data)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping) -> "TraceEvent":
        data = {
            k: v for k, v in raw.items()
            if k not in ("kind", "t_ms", "node", "lamport")
        }
        return cls(
            kind=raw["kind"],
            t_ms=raw["t_ms"],
            node=raw["node"],
            lamport=raw["lamport"],
            data=data,
        )

    def describe(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.data.items())
        return (
            f"{self.t_ms:10.3f}ms  S{self.node}  L{self.lamport:<5d} "
            f"{self.kind:<15s} {detail}"
        )


class Tracer:
    """A bounded recorder of typed cluster events.

    ``capacity`` bounds the ring buffer; when it overflows, the oldest
    events are evicted.  Eviction is *counted* (``dropped``), reported
    by every export as a leading header line, and mirrored into
    ``metrics`` (counter ``trace.dropped``) when one is supplied --
    a silent ring buffer cannot back an online monitor.

    ``sink``, when given, is called synchronously with every recorded
    :class:`TraceEvent` *before* it can be evicted; it is how a node
    streams its trace to :mod:`repro.monitor` without the exporter
    racing the ring buffer.  A sink must never raise.
    """

    #: Instrumented hot paths guard on this instead of an isinstance
    #: check; the null tracer overrides it to False.
    enabled: bool = True

    def __init__(self, capacity: int = 65_536, sink=None, metrics=None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        #: Per-node Lamport clocks.
        self.clocks: Dict[object, int] = {}
        #: Events recorded over the tracer's lifetime (>= len(events)).
        self.recorded = 0
        #: Events evicted from the ring buffer (recorded - buffered).
        self.dropped = 0
        self._sink = sink
        self._m_dropped = (
            metrics.counter("trace.dropped")
            if metrics is not None and metrics.enabled else None
        )

    # -- recording -----------------------------------------------------

    def _tick(self, node) -> int:
        stamp = self.clocks.get(node, 0) + 1
        self.clocks[node] = stamp
        return stamp

    def _append(self, event: TraceEvent) -> None:
        events = self.events
        if len(events) == self.capacity:
            self.dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
        events.append(event)
        self.recorded += 1
        if self._sink is not None:
            self._sink(event)

    def record(self, kind: str, t_ms: float, node, **data) -> int:
        """Record one local event at ``node``; returns its Lamport stamp."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        stamp = self._tick(node)
        self._append(TraceEvent(kind, t_ms, node, stamp, data))
        return stamp

    def send(self, t_ms: float, frm, to, msg: str, **data) -> int:
        """Record a ``send``; the returned stamp travels with the message
        and must be handed to :meth:`receive` at delivery."""
        return self.record("send", t_ms, frm, to=to, msg=msg, **data)

    def receive(self, t_ms: float, to, frm, msg: str, sent_lamport: int,
                **data) -> int:
        """Record a ``receive``, joining the sender's clock:
        ``L(to) = max(L(to), sent) + 1``."""
        stamp = max(self.clocks.get(to, 0), sent_lamport) + 1
        self.clocks[to] = stamp
        self._append(TraceEvent(
            "receive", t_ms, to, stamp,
            dict(frm=frm, msg=msg, sent_lamport=sent_lamport, **data),
        ))
        return stamp

    # -- export --------------------------------------------------------

    def snapshot(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self.events)

    def _header(self) -> Dict:
        return {
            TRACE_HEADER_KEY: 1,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "capacity": self.capacity,
        }

    def to_jsonl(self) -> str:
        """Header line plus the buffered events, one JSON object per line."""
        lines = [json.dumps(self._header(), sort_keys=True)]
        lines.extend(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.events
        )
        return "\n".join(lines)

    def dump_jsonl(self, path: str) -> int:
        """Write the header and buffer to ``path``; returns the event count."""
        with open(path, "w") as handle:
            handle.write(json.dumps(self._header(), sort_keys=True))
            handle.write("\n")
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.events)


def load_jsonl(path: str) -> List[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` values.

    Tolerates (and skips) the ``__trace_header`` line that
    :meth:`Tracer.dump_jsonl` now writes, as well as header-less dumps
    from before it existed.
    """
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if TRACE_HEADER_KEY in raw:
                continue
            events.append(TraceEvent.from_dict(raw))
    return events


def load_jsonl_header(path: str) -> Dict:
    """The export's header counters (``recorded``/``dropped``/
    ``capacity``); empty for a pre-header dump."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                raw = json.loads(line)
                return raw if TRACE_HEADER_KEY in raw else {}
    return {}


def events_by_kind(
    events: Iterable[TraceEvent], *kinds: str
) -> List[TraceEvent]:
    """The sub-trace of the given kinds, preserving order."""
    wanted = frozenset(kinds)
    return [event for event in events if event.kind in wanted]


class NullTracer(Tracer):
    """The no-op tracer: records nothing, costs (almost) nothing.

    Every recording method is an empty body returning stamp 0, so call
    sites that cannot cheaply guard on ``enabled`` still pay only a
    method dispatch.  There is exactly one shared instance
    (:data:`NULL_TRACER`); constructing more is harmless but pointless.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, kind: str, t_ms: float, node, **data) -> int:
        return 0

    def send(self, t_ms: float, frm, to, msg: str, **data) -> int:
        return 0

    def receive(self, t_ms: float, to, frm, msg: str, sent_lamport: int,
                **data) -> int:
        return 0


#: The shared disabled tracer every instrumented component defaults to.
NULL_TRACER = NullTracer()
