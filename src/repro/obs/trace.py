"""Typed event tracing with per-node Lamport clocks.

The runtime-checking literature the chaos layer follows (Derecho's
runtime verification, the MongoDB logless-reconfig analysis) localizes
protocol bugs from *recorded event traces*, not from a final assertion
message.  :class:`Tracer` is that recorder for the simulated cluster: a
bounded ring buffer of :class:`TraceEvent` values, each stamped with

* the simulated wall clock (``t_ms``, the discrete-event simulator's
  ``now``), and
* a per-node Lamport clock.  Local events tick the node's counter;
  message receipt joins the sender's send-stamp (``max(local, sent)+1``),
  so ``lamport`` ordering is consistent with the happens-before
  relation even when the simulated clock ties or fault-injected
  reordering delivers messages out of send order.

The event vocabulary is closed (:data:`EVENT_KINDS`): ``send`` /
``receive`` / ``drop`` / ``duplicate`` for the transport, ``crash`` /
``restart`` for fail-stop faults, ``partition_start`` for nemesis
partitions, ``election_start`` / ``leader_elected`` / ``commit`` /
``reconfig`` for the protocol, and ``client_invoke`` /
``client_response`` for the workload.  Anything else is a programming
error and raises immediately.

**Disabled-path contract:** the default tracer everywhere is
:data:`NULL_TRACER`, whose recording methods are empty and return 0.
Instrumented hot paths guard on ``tracer.enabled`` so the disabled
cost is one attribute test and (at call sites that cannot guard) one
no-op call -- the overhead benchmark holds the instrumented-but-
disabled cluster within 5% of an uninstrumented baseline.  Tracing
never consumes simulator or fault-plan randomness and never schedules
simulator events, so enabling it cannot perturb a seeded run.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

#: The closed vocabulary of event kinds a tracer will accept.
EVENT_KINDS = frozenset({
    "send",
    "receive",
    "drop",
    "duplicate",
    "crash",
    "restart",
    "partition_start",
    "election_start",
    "leader_elected",
    "commit",
    "reconfig",
    "client_invoke",
    "client_response",
})


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``node`` is the node the event happened *at* (the sender for
    transport events); ``lamport`` is that node's Lamport stamp;
    ``data`` carries kind-specific detail (peer, message type, term,
    commit length, ...), restricted to JSON-representable values.
    """

    kind: str
    t_ms: float
    node: object
    lamport: int
    data: Mapping = field(default_factory=dict)

    def to_dict(self) -> Dict:
        out = {
            "kind": self.kind,
            "t_ms": round(self.t_ms, 6),
            "node": self.node,
            "lamport": self.lamport,
        }
        out.update(self.data)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping) -> "TraceEvent":
        data = {
            k: v for k, v in raw.items()
            if k not in ("kind", "t_ms", "node", "lamport")
        }
        return cls(
            kind=raw["kind"],
            t_ms=raw["t_ms"],
            node=raw["node"],
            lamport=raw["lamport"],
            data=data,
        )

    def describe(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.data.items())
        return (
            f"{self.t_ms:10.3f}ms  S{self.node}  L{self.lamport:<5d} "
            f"{self.kind:<15s} {detail}"
        )


class Tracer:
    """A bounded recorder of typed cluster events.

    ``capacity`` bounds the ring buffer; when it overflows, the oldest
    events are evicted (``recorded`` keeps the true total, so overflow
    is detectable as ``recorded > len(events)``).
    """

    #: Instrumented hot paths guard on this instead of an isinstance
    #: check; the null tracer overrides it to False.
    enabled: bool = True

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        #: Per-node Lamport clocks.
        self.clocks: Dict[object, int] = {}
        #: Events recorded over the tracer's lifetime (>= len(events)).
        self.recorded = 0

    # -- recording -----------------------------------------------------

    def _tick(self, node) -> int:
        stamp = self.clocks.get(node, 0) + 1
        self.clocks[node] = stamp
        return stamp

    def record(self, kind: str, t_ms: float, node, **data) -> int:
        """Record one local event at ``node``; returns its Lamport stamp."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        stamp = self._tick(node)
        self.events.append(TraceEvent(kind, t_ms, node, stamp, data))
        self.recorded += 1
        return stamp

    def send(self, t_ms: float, frm, to, msg: str, **data) -> int:
        """Record a ``send``; the returned stamp travels with the message
        and must be handed to :meth:`receive` at delivery."""
        return self.record("send", t_ms, frm, to=to, msg=msg, **data)

    def receive(self, t_ms: float, to, frm, msg: str, sent_lamport: int,
                **data) -> int:
        """Record a ``receive``, joining the sender's clock:
        ``L(to) = max(L(to), sent) + 1``."""
        stamp = max(self.clocks.get(to, 0), sent_lamport) + 1
        self.clocks[to] = stamp
        self.events.append(TraceEvent(
            "receive", t_ms, to, stamp,
            dict(frm=frm, msg=msg, sent_lamport=sent_lamport, **data),
        ))
        self.recorded += 1
        return stamp

    # -- export --------------------------------------------------------

    def snapshot(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self.events)

    def to_jsonl(self) -> str:
        """The buffered events as one JSON object per line."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.events
        )

    def dump_jsonl(self, path: str) -> int:
        """Write the buffer to ``path`` as JSONL; returns the event count."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.events)


def load_jsonl(path: str) -> List[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` values."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def events_by_kind(
    events: Iterable[TraceEvent], *kinds: str
) -> List[TraceEvent]:
    """The sub-trace of the given kinds, preserving order."""
    wanted = frozenset(kinds)
    return [event for event in events if event.kind in wanted]


class NullTracer(Tracer):
    """The no-op tracer: records nothing, costs (almost) nothing.

    Every recording method is an empty body returning stamp 0, so call
    sites that cannot cheaply guard on ``enabled`` still pay only a
    method dispatch.  There is exactly one shared instance
    (:data:`NULL_TRACER`); constructing more is harmless but pointless.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, kind: str, t_ms: float, node, **data) -> int:
        return 0

    def send(self, t_ms: float, frm, to, msg: str, **data) -> int:
        return 0

    def receive(self, t_ms: float, to, frm, msg: str, sent_lamport: int,
                **data) -> int:
        return 0


#: The shared disabled tracer every instrumented component defaults to.
NULL_TRACER = NullTracer()
