"""Counters, gauges, and latency histograms with a snapshot API.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` -- a monotonically increasing count (messages sent,
  requests timed out, faults injected);
* :class:`Gauge` -- a last-written value (current frontier size,
  dedup hit-rate);
* :class:`Histogram` -- a value distribution with ``p50``/``p95``/
  ``p99`` computed from a bounded reservoir (Vitter's algorithm R with
  a *seeded* RNG, so two identical runs report identical percentiles).

``registry.snapshot()`` returns a plain, JSON-serializable dict -- the
form the violation bundle persists and ``trace_view`` renders.

As with tracing, the disabled path is a first-class citizen:
:data:`NULL_METRICS` hands out a shared no-op instrument whose
``inc``/``set``/``observe`` are empty, and its ``enabled`` flag lets
hot paths skip instrumentation blocks entirely.  Instruments are
created once and cached on the caller (``registry.counter(name)`` is a
dict lookup, not a per-event cost).
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """A value distribution summarized by count/mean/min/max/percentiles.

    Keeps a fixed-size uniform sample (reservoir sampling), seeded from
    the instrument's name so percentile reports are reproducible across
    identical runs -- the same property everything else in the
    simulator has.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_reservoir_size", "_rng")

    def __init__(self, name: str, reservoir_size: int = 1024) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(zlib.crc32(name.encode()))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._reservoir_size:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir_size:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) of the sampled distribution,
        by linear interpolation; 0.0 when empty."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _NullInstrument:
    """The shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(
                name, reservoir_size
            )
        return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """Every instrument's current value as a plain nested dict."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def describe(self) -> str:
        """A compact human-readable dump, one instrument per line."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name} = {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"{name} = {gauge.value}")
        for name, histogram in sorted(self.histograms.items()):
            s = histogram.summary()
            lines.append(
                f"{name}: n={s['count']} mean={s['mean']:.3f} "
                f"p50={s['p50']:.3f} p95={s['p95']:.3f} p99={s['p99']:.3f} "
                f"max={s['max']:.3f}"
            )
        return "\n".join(lines)


class NullMetrics(MetricsRegistry):
    """The disabled registry: every lookup returns the no-op instrument."""

    enabled = False

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, reservoir_size: int = 1024):
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled registry instrumented components default to.
NULL_METRICS = NullMetrics()
