"""Observability: tracing, metrics, and replayable violation bundles.

The two halves the chaos layer was missing:

* :mod:`repro.obs.trace` -- a :class:`Tracer` recording typed events
  (``send``/``receive``/``drop``/``duplicate``/``crash``/``restart``/
  ``election_start``/``leader_elected``/``commit``/``reconfig``/
  ``client_invoke``/``client_response``), each stamped with simulated
  time and a per-node Lamport clock, in a bounded ring buffer with
  JSONL export.  The default everywhere is the no-op
  :data:`NULL_TRACER`.
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, and reservoir-sampled histograms (p50/p95/p99) with a
  ``snapshot()`` API; disabled default :data:`NULL_METRICS`.

:mod:`repro.obs.bundle` combines them into the *violation bundle*: on
any nemesis/safety/linearizability failure the run's config, verdicts,
stats, metrics snapshot, event trace, and client history are written
to disk as a directory from which :func:`replay_bundle` reproduces the
identical run (same seed ⇒ same violation) and
``examples/trace_view.py`` renders a timeline.
"""

from .bundle import (
    BUNDLE_VERSION,
    ViolationBundle,
    find_bundles,
    load_bundle,
    nemesis_config_from_dict,
    nemesis_config_to_dict,
    replay_bundle,
    verdict_matches,
    write_bundle,
)
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .trace import (
    EVENT_KINDS,
    NULL_TRACER,
    TRACE_HEADER_KEY,
    NullTracer,
    TraceEvent,
    Tracer,
    events_by_kind,
    load_jsonl,
    load_jsonl_header,
)

__all__ = [
    "BUNDLE_VERSION",
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "TRACE_HEADER_KEY",
    "TraceEvent",
    "Tracer",
    "ViolationBundle",
    "events_by_kind",
    "find_bundles",
    "load_bundle",
    "load_jsonl",
    "load_jsonl_header",
    "nemesis_config_from_dict",
    "nemesis_config_to_dict",
    "replay_bundle",
    "verdict_matches",
    "write_bundle",
]
