"""Replayable violation bundles.

When a nemesis run fails a check -- committed prefixes disagree, the
at-most-once audit flags a double commit, or the recorded client
history is not linearizable -- the seed and an assertion message are
not enough to *explain* the failure.  A violation bundle is the
self-contained artifact that is: a directory holding

* ``manifest.json`` -- bundle version, the full serialized
  :class:`~repro.runtime.nemesis.NemesisConfig` (seed, fault schedule,
  workload mix, client discipline), both checkers' verdicts, the run
  stats, and the metrics snapshot;
* ``trace.jsonl`` -- the full event trace (one JSON object per event);
* ``history.jsonl`` -- the client history the linearizability checker
  consumed.

Everything the run did is derived deterministically from the config,
so :func:`replay_bundle` reproduces the identical run -- same seed ⇒
same violation -- and :func:`verdict_matches` checks that it did.
``examples/trace_view.py`` renders a bundle as a timeline and per-link
message-flow summary.

This module never imports the runtime at module level (the runtime
imports :mod:`repro.obs`); replay imports it lazily.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Dict, List

from .trace import TraceEvent, load_jsonl

#: Bumped when the on-disk layout changes; loaders reject other versions.
BUNDLE_VERSION = 1

MANIFEST_FILE = "manifest.json"
TRACE_FILE = "trace.jsonl"
HISTORY_FILE = "history.jsonl"


# ----------------------------------------------------------------------
# NemesisConfig <-> JSON
# ----------------------------------------------------------------------


def nemesis_config_to_dict(config) -> Dict:
    """Serialize a :class:`~repro.runtime.nemesis.NemesisConfig` to a
    JSON-safe dict (``bundle_dir`` is deliberately dropped: a replay
    must not recursively write bundles)."""
    conditions = config.conditions
    latency = config.latency
    return {
        "seed": config.seed,
        "ops": config.ops,
        "keys": config.keys,
        "initial_members": sorted(config.initial_members),
        "extra_nodes": sorted(config.extra_nodes),
        "read_fraction": config.read_fraction,
        "add_fraction": config.add_fraction,
        "delete_fraction": config.delete_fraction,
        "conditions": {
            "drop_prob": conditions.drop_prob,
            "duplicate_prob": conditions.duplicate_prob,
            "reorder_prob": conditions.reorder_prob,
            "reorder_window_ms": conditions.reorder_window_ms,
            "link_drop_prob": [
                [frm, to, prob]
                for (frm, to), prob in sorted(conditions.link_drop_prob.items())
            ],
        },
        "latency": None if latency is None else {
            "base_ms": latency.base_ms,
            "jitter": latency.jitter,
            "spike_prob": latency.spike_prob,
            "spike_scale": latency.spike_scale,
            "per_entry_ms": latency.per_entry_ms,
            "tx_per_entry_ms": latency.tx_per_entry_ms,
        },
        "crash_leader_at": list(config.crash_leader_at),
        "restart_after_ops": config.restart_after_ops,
        "partition_at": config.partition_at,
        "partition_ms": config.partition_ms,
        "partition_symmetric": config.partition_symmetric,
        "reconfig_trajectory": [
            sorted(members) for members in config.reconfig_trajectory
        ],
        "request_timeout_ms": config.request_timeout_ms,
        "election_timeout_ms": config.election_timeout_ms,
        "client_request_ids": config.client_request_ids,
        "trace_capacity": config.trace_capacity,
    }


def nemesis_config_from_dict(raw: Dict):
    """The inverse of :func:`nemesis_config_to_dict`."""
    from ..runtime.nemesis import NemesisConfig
    from ..runtime.simnet import LatencyModel, NetworkConditions

    conditions_raw = raw["conditions"]
    conditions = NetworkConditions(
        drop_prob=conditions_raw["drop_prob"],
        duplicate_prob=conditions_raw["duplicate_prob"],
        reorder_prob=conditions_raw["reorder_prob"],
        reorder_window_ms=conditions_raw["reorder_window_ms"],
        link_drop_prob={
            (frm, to): prob
            for frm, to, prob in conditions_raw["link_drop_prob"]
        },
    )
    latency_raw = raw["latency"]
    latency = None if latency_raw is None else LatencyModel(**latency_raw)
    return NemesisConfig(
        seed=raw["seed"],
        ops=raw["ops"],
        keys=raw["keys"],
        initial_members=frozenset(raw["initial_members"]),
        extra_nodes=frozenset(raw["extra_nodes"]),
        read_fraction=raw["read_fraction"],
        add_fraction=raw["add_fraction"],
        delete_fraction=raw["delete_fraction"],
        conditions=conditions,
        latency=latency,
        crash_leader_at=tuple(raw["crash_leader_at"]),
        restart_after_ops=raw["restart_after_ops"],
        partition_at=raw["partition_at"],
        partition_ms=raw["partition_ms"],
        partition_symmetric=raw["partition_symmetric"],
        reconfig_trajectory=tuple(
            frozenset(members) for members in raw["reconfig_trajectory"]
        ),
        request_timeout_ms=raw["request_timeout_ms"],
        election_timeout_ms=raw["election_timeout_ms"],
        client_request_ids=raw["client_request_ids"],
        trace_capacity=raw["trace_capacity"],
    )


# ----------------------------------------------------------------------
# History <-> JSONL
# ----------------------------------------------------------------------


def _operation_to_dict(op) -> Dict:
    return {
        "op_id": op.op_id,
        "client": op.client,
        "op": op.op,
        "key": op.key,
        "value": op.value,
        "invoked_ms": op.invoked_ms,
        "completed_ms": op.completed_ms,
        "result": op.result,
    }


def _history_from_dicts(rows: List[Dict]):
    from ..runtime.history import History, Operation

    history = History()
    for row in rows:
        history.operations.append(Operation(**row))
    return history


# ----------------------------------------------------------------------
# Write / load / replay
# ----------------------------------------------------------------------


@dataclass
class ViolationBundle:
    """An on-disk bundle loaded back into memory."""

    path: str
    manifest: Dict
    events: List[TraceEvent]
    history: object  # repro.runtime.history.History

    @property
    def seed(self) -> int:
        return self.manifest["seed"]

    @property
    def verdict(self) -> Dict:
        return self.manifest["verdict"]

    def config(self):
        """The deserialized :class:`NemesisConfig` this bundle records."""
        return nemesis_config_from_dict(self.manifest["config"])


def write_bundle(directory: str, result) -> str:
    """Persist a failed :class:`~repro.runtime.nemesis.NemesisResult`
    (its config, verdicts, stats, metrics, trace, and history) under
    ``directory``; returns the bundle path.

    The bundle name is deterministic per seed, so re-running the same
    failing seed overwrites its bundle instead of accumulating copies.
    """
    tracer = result.tracer
    path = os.path.join(directory, f"nemesis-seed{result.config.seed}")
    os.makedirs(path, exist_ok=True)
    manifest = {
        "version": BUNDLE_VERSION,
        "kind": "nemesis-violation",
        "seed": result.config.seed,
        "config": nemesis_config_to_dict(result.config),
        "verdict": {
            "ok": result.ok,
            "safety_violations": list(result.safety_violations),
            "linearizability_ok": result.linearizability.ok,
            "linearizability": result.linearizability.describe(),
            "linearizability_failures": dict(result.linearizability.failures),
        },
        "stats": dataclasses.asdict(result.stats),
        "metrics": result.metrics or {},
        "trace_recorded": 0 if tracer is None else tracer.recorded,
        "trace_buffered": 0 if tracer is None else len(tracer.events),
    }
    with open(os.path.join(path, MANIFEST_FILE), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=repr)
    if tracer is not None:
        tracer.dump_jsonl(os.path.join(path, TRACE_FILE))
    else:
        open(os.path.join(path, TRACE_FILE), "w").close()
    with open(os.path.join(path, HISTORY_FILE), "w") as handle:
        for op in result.history.operations:
            handle.write(json.dumps(_operation_to_dict(op), default=repr))
            handle.write("\n")
    return path


def load_bundle(path: str) -> ViolationBundle:
    """Load a bundle directory written by :func:`write_bundle`."""
    manifest_path = os.path.join(path, MANIFEST_FILE)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    version = manifest.get("version")
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"bundle {path!r} has version {version!r}, "
            f"expected {BUNDLE_VERSION}"
        )
    events = load_jsonl(os.path.join(path, TRACE_FILE))
    rows: List[Dict] = []
    with open(os.path.join(path, HISTORY_FILE)) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    history = _history_from_dicts(rows)
    return ViolationBundle(
        path=path, manifest=manifest, events=events, history=history
    )


def replay_bundle(bundle: "ViolationBundle | str"):
    """Re-run the exact configuration a bundle records.

    Every stochastic input is part of the config (simulator seed, fault
    seed, workload seed, client discipline), so the replay is the same
    run: same stats, same verdicts, same violation.  Returns the fresh
    :class:`~repro.runtime.nemesis.NemesisResult`.
    """
    from ..runtime.nemesis import run_nemesis

    if isinstance(bundle, str):
        bundle = load_bundle(bundle)
    config = bundle.config()
    config.bundle_dir = None  # a replay must not write nested bundles
    return run_nemesis(config)


def verdict_matches(bundle: ViolationBundle, result) -> bool:
    """Did a (re-)run reach exactly the verdict the bundle recorded?"""
    recorded = bundle.verdict
    return (
        recorded["ok"] == result.ok
        and recorded["safety_violations"] == list(result.safety_violations)
        and recorded["linearizability_ok"] == result.linearizability.ok
        and recorded["linearizability_failures"]
        == dict(result.linearizability.failures)
    )


def find_bundles(directory: str) -> List[str]:
    """Bundle paths under ``directory`` (things with a manifest.json)."""
    if not os.path.isdir(directory):
        return []
    found: List[str] = []
    for name in sorted(os.listdir(directory)):
        candidate = os.path.join(directory, name)
        if os.path.isfile(os.path.join(candidate, MANIFEST_FILE)):
            found.append(candidate)
    return found
