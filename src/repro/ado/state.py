"""ADO state (Fig. 19): persistent log, cache tree, CID map, owner map.

``Σ_ADO ≜ PersistLog * CacheTree * CIDMap * OwnerMap``.  Unlike Adore
the committed methods live in a separate append-only :data:`persist`
log, the cache tree holds only *uncommitted* caches, and two auxiliary
maps track every client's active cache and the unique owner (leader) of
every timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from .cid import CID, CIDLike, ROOT, RootCID
from .events import Method


@dataclass(frozen=True)
class AdoCache:
    """One uncommitted cache: a position plus the invoked method."""

    cid: CID
    method: Method


#: The owner-map sentinel: the timestamp is burnt, nobody may own it.
NO_OWN = "NoOwn"

Owner = Union[int, str]


@dataclass(frozen=True)
class AdoState:
    """An immutable ADO state."""

    persist: Tuple[AdoCache, ...] = ()
    caches: FrozenSet[AdoCache] = frozenset()
    cids: "FrozenDict" = None
    owners: "FrozenDict" = None

    def __post_init__(self):
        if self.cids is None:
            object.__setattr__(self, "cids", FrozenDict())
        if self.owners is None:
            object.__setattr__(self, "owners", FrozenDict())

    # -- Fig. 23 auxiliary functions ---------------------------------

    def root(self) -> CIDLike:
        """``root(evs)``: the last committed cid, or Root (Fig. 23)."""
        if self.persist:
            return self.persist[-1].cid
        return ROOT

    def cache_cids(self) -> FrozenSet[CID]:
        return frozenset(c.cid for c in self.caches)

    def no_owner_at(self, time: int) -> bool:
        """``noOwnerAt(evs, time)``: the timestamp is unclaimed."""
        owner = self.owners.get(time)
        return owner is None or owner == NO_OWN

    def max_owner(self) -> Optional[Owner]:
        """``maxOwner(evs)``: the owner entry at the largest claimed time."""
        if not self.owners:
            return None
        return self.owners.get(max(self.owners.keys()))

    def active_cid(self, nid: int) -> Optional[CID]:
        return self.cids.get(nid)


class FrozenDict:
    """A tiny immutable mapping with value-based hashing."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Optional[Dict] = None) -> None:
        self._data = dict(data) if data else {}
        self._hash = None

    def get(self, key, default=None):
        return self._data.get(key, default)

    def set(self, key, value) -> "FrozenDict":
        updated = dict(self._data)
        updated[key] = value
        return FrozenDict(updated)

    def set_many(self, pairs) -> "FrozenDict":
        updated = dict(self._data)
        updated.update(pairs)
        return FrozenDict(updated)

    def keys(self):
        return self._data.keys()

    def items(self):
        return self._data.items()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrozenDict):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __repr__(self) -> str:
        return f"FrozenDict({self._data!r})"


def vote_no_own(owners: FrozenDict, time: int) -> FrozenDict:
    """``voteNoOwn(owns, t)``: burn every unclaimed timestamp ≤ ``t``.

    A (possibly failed) election at time ``t`` means a quorum has
    promised not to accept anything at or below ``t``; the owner map
    records that by marking all unclaimed slots NoOwn (Fig. 23).
    """
    updates = {
        t: NO_OWN
        for t in range(1, time + 1)
        if t not in owners
    }
    return owners.set_many(updates.items()) if updates else owners


def position_valid(state: AdoState, cid: CIDLike) -> bool:
    """Whether a client's active cid still names a live position.

    A position is live when its parent chain reaches the committed
    frontier through caches that still exist: its proper ancestors must
    each be present in the uncommitted tree or be the committed root.
    A push that commits a sibling branch prunes the stale branches, so
    stale clients' positions become invalid -- this is the check that
    "stops replicas from continuing to use stale states after a
    different one was committed" (Appendix D.1).
    """
    if isinstance(cid, RootCID):
        return not state.persist
    parent = cid.parent
    return parent == state.root() or parent in state.cache_cids()
