"""ADO event interpretation (Fig. 22) and log folding.

``interp : Ev_ADO → Σ_ADO → Σ_ADO`` consumes one event;
``interp_all`` folds a whole event log from the initial state.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .cid import CID, is_le, is_lt, next_cid, depth
from .events import (
    Event,
    InvokeMinus,
    InvokePlus,
    PullMinus,
    PullPlus,
    PullStar,
    PushMinus,
    PushPlus,
)
from .state import AdoCache, AdoState, vote_no_own


def initial_state() -> AdoState:
    """The empty ADO state."""
    return AdoState()


def partition(
    caches: Iterable[AdoCache], ccid: CID
) -> Tuple[Tuple[AdoCache, ...], frozenset]:
    """``partition(cs, cid)`` (Fig. 23).

    Splits the uncommitted caches into the committed prefix (ancestors
    of ``ccid`` including itself, sorted root-to-leaf) and the surviving
    suffix (proper descendants of ``ccid``).  Sibling branches are
    stale and silently discarded -- this is where the ADO model, unlike
    Adore, physically deletes state.
    """
    committed = sorted(
        (c for c in caches if is_le(c.cid, ccid)),
        key=lambda c: depth(c.cid),
    )
    survivors = frozenset(c for c in caches if is_lt(ccid, c.cid))
    return tuple(committed), survivors


def interp(event: Event, state: AdoState) -> AdoState:
    """One step of Fig. 22."""
    if isinstance(event, PullPlus):
        cids = state.cids.set(event.nid, CID(event.nid, event.time, event.cid))
        owners = vote_no_own(
            state.owners.set(event.time, event.nid), event.time - 1
        )
        return AdoState(state.persist, state.caches, cids, owners)
    if isinstance(event, PullStar):
        owners = vote_no_own(state.owners, event.time)
        return AdoState(state.persist, state.caches, state.cids, owners)
    if isinstance(event, (PullMinus, InvokeMinus, PushMinus)):
        return state
    if isinstance(event, InvokePlus):
        active = state.cids.get(event.nid)
        caches = state.caches | {AdoCache(active, event.method)}
        cids = state.cids.set(event.nid, next_cid(active))
        return AdoState(state.persist, caches, cids, state.owners)
    if isinstance(event, PushPlus):
        committed, survivors = partition(state.caches, event.ccid)
        persist = state.persist + committed
        cids = state.cids.set(event.nid, next_cid(event.ccid))
        return AdoState(persist, survivors, cids, state.owners)
    raise TypeError(f"unknown ADO event {event!r}")


def interp_all(events: Iterable[Event]) -> AdoState:
    """``interpAll(evs) ≜ fold(evs, interp, initState)`` (Fig. 19)."""
    state = initial_state()
    for event in events:
        state = interp(event, state)
    return state
