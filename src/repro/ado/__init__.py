"""The original ADO model (Appendix D.1, Fig. 19-23).

The precursor of Adore: an event-sourced model with a separate
persistent log of committed methods, a cache tree of uncommitted ones,
a per-client active-cache map, and an owner map assigning each
timestamp its unique leader (or NoOwn).  Included both for completeness
and so the documentation can contrast the two models: the ADO deletes
stale branches and hides election/commit metadata, which is exactly
what Adore adds back to support protocol-level reasoning and
reconfiguration.
"""

from .cid import CID, ROOT, RootCID, ancestors, depth, is_le, is_lt, next_cid, nid_of, time_of
from .events import (
    Event,
    InvokeMinus,
    InvokePlus,
    PullMinus,
    PullPlus,
    PullStar,
    PushMinus,
    PushPlus,
)
from .interp import initial_state, interp, interp_all, partition
from .semantics import (
    ADO_FAIL,
    AdoFail,
    AdoMachine,
    AdoOracle,
    PullOkAdo,
    PullPreempt,
    PushOkAdo,
    RandomAdoOracle,
    ScriptedAdoOracle,
    validate_ado_pull,
    validate_ado_push,
)
from .state import NO_OWN, AdoCache, AdoState, FrozenDict, position_valid, vote_no_own

__all__ = [
    "ADO_FAIL",
    "AdoCache",
    "AdoFail",
    "AdoMachine",
    "AdoOracle",
    "AdoState",
    "CID",
    "Event",
    "FrozenDict",
    "InvokeMinus",
    "InvokePlus",
    "NO_OWN",
    "PullMinus",
    "PullOkAdo",
    "PullPlus",
    "PullPreempt",
    "PullStar",
    "PushMinus",
    "PushOkAdo",
    "PushPlus",
    "ROOT",
    "RandomAdoOracle",
    "RootCID",
    "ScriptedAdoOracle",
    "ancestors",
    "depth",
    "initial_state",
    "interp",
    "interp_all",
    "is_le",
    "is_lt",
    "next_cid",
    "nid_of",
    "partition",
    "position_valid",
    "time_of",
    "validate_ado_pull",
    "validate_ado_push",
    "vote_no_own",
]
