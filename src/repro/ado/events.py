"""ADO events (Fig. 19): the possible outcomes of each operation.

The ADO model is event-sourced: every operation appends one event to a
global log, and the state is the fold of :func:`repro.ado.interp.interp`
over that log (``interpAll``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

from .cid import CID, CIDLike

Method = Hashable


@dataclass(frozen=True)
class PullPlus:
    """``Pull⁺(nid, time, cid)``: a successful election; ``cid`` is the
    parent cache the new leader builds on."""

    nid: int
    time: int
    cid: CIDLike


@dataclass(frozen=True)
class PullStar:
    """``Pull*(nid, time)``: a preempting failure -- the candidate lost
    but stole enough votes to block earlier timestamps."""

    nid: int
    time: int


@dataclass(frozen=True)
class PullMinus:
    """``Pull⁻(nid)``: a no-effect election failure."""

    nid: int


@dataclass(frozen=True)
class InvokePlus:
    """``Invoke⁺(nid, M)``: a successful method invocation."""

    nid: int
    method: Method


@dataclass(frozen=True)
class InvokeMinus:
    """``Invoke⁻(nid)``: a failed method invocation."""

    nid: int


@dataclass(frozen=True)
class PushPlus:
    """``Push⁺(nid, ccid)``: a successful commit up to cache ``ccid``."""

    nid: int
    ccid: CID


@dataclass(frozen=True)
class PushMinus:
    """``Push⁻(nid)``: a failed commit."""

    nid: int


Event = Union[
    PullPlus, PullStar, PullMinus, InvokePlus, InvokeMinus, PushPlus, PushMinus
]
