"""ADO operation semantics (Fig. 20-21): oracles and event generation.

Operations append events to a global log; validity of the oracle
choices is specified by the VALIDPULLORACLE / VALIDPUSHORACLE rules of
Fig. 20 and checked eagerly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from ..core.errors import InvalidOracleOutcome
from .cid import CID, CIDLike, nid_of, time_of
from .events import (
    Event,
    InvokeMinus,
    InvokePlus,
    Method,
    PullMinus,
    PullPlus,
    PullStar,
    PushMinus,
    PushPlus,
)
from .interp import interp, interp_all
from .state import AdoState, position_valid


# ----------------------------------------------------------------------
# Oracle outcomes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PullOkAdo:
    """``Ok(time, cid)``: a successful election adopting cache ``cid``."""

    time: int
    cid: CIDLike


@dataclass(frozen=True)
class PullPreempt:
    """``Preempt(time)``: a failed election that still burnt ``time``."""

    time: int


@dataclass(frozen=True)
class PushOkAdo:
    """``Ok(cid)``: commit up to cache ``cid``."""

    cid: CID


@dataclass(frozen=True)
class AdoFail:
    """``Fail``: no effect."""


ADO_FAIL = AdoFail()


def validate_ado_pull(state: AdoState, nid: int, outcome) -> None:
    """VALIDPULLORACLE (Fig. 20): fresh, unowned time; live parent."""
    if isinstance(outcome, AdoFail):
        return
    if isinstance(outcome, PullPreempt):
        if not state.no_owner_at(outcome.time):
            raise InvalidOracleOutcome(
                f"preempt at owned time {outcome.time}"
            )
        return
    if not isinstance(outcome, PullOkAdo):
        raise InvalidOracleOutcome(f"not a pull outcome: {outcome!r}")
    cid = outcome.cid
    if isinstance(cid, CID) and time_of(cid) >= outcome.time:
        raise InvalidOracleOutcome(
            f"pull time {outcome.time} not above parent's {time_of(cid)}"
        )
    if not state.no_owner_at(outcome.time):
        raise InvalidOracleOutcome(f"time {outcome.time} already owned")
    if cid != state.root() and cid not in state.cache_cids():
        raise InvalidOracleOutcome(
            f"parent {cid!r} neither a live cache nor the committed root"
        )


def validate_ado_push(state: AdoState, nid: int, outcome) -> None:
    """VALIDPUSHORACLE (Fig. 20): own, current-time, live cache; caller
    must be the maximum owner (not preempted)."""
    if isinstance(outcome, AdoFail):
        return
    if not isinstance(outcome, PushOkAdo):
        raise InvalidOracleOutcome(f"not a push outcome: {outcome!r}")
    cid = outcome.cid
    if nid_of(cid) != nid:
        raise InvalidOracleOutcome(f"push of foreign cache {cid!r}")
    if cid not in state.cache_cids():
        raise InvalidOracleOutcome(f"push of unknown cache {cid!r}")
    if state.max_owner() != nid:
        raise InvalidOracleOutcome(
            f"node {nid} is not the maximum owner "
            f"({state.max_owner()!r} is)"
        )


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------

class AdoOracle(ABC):
    """Resolves the ADO pull/push nondeterminism."""

    @abstractmethod
    def pull_outcome(self, state: AdoState, nid: int):
        ...

    @abstractmethod
    def push_outcome(self, state: AdoState, nid: int):
        ...


class ScriptedAdoOracle(AdoOracle):
    """Replays fixed outcomes, validating each against the state."""

    def __init__(self, outcomes) -> None:
        self._outcomes = list(outcomes)
        self._cursor = 0

    def _next(self):
        if self._cursor >= len(self._outcomes):
            raise InvalidOracleOutcome("scripted ADO oracle exhausted")
        outcome = self._outcomes[self._cursor]
        self._cursor += 1
        return outcome

    def pull_outcome(self, state: AdoState, nid: int):
        outcome = self._next()
        validate_ado_pull(state, nid, outcome)
        return outcome

    def push_outcome(self, state: AdoState, nid: int):
        outcome = self._next()
        validate_ado_push(state, nid, outcome)
        return outcome


class RandomAdoOracle(AdoOracle):
    """Samples a valid outcome (or fails)."""

    def __init__(self, seed: Optional[int] = None, fail_prob: float = 0.1):
        self._rng = random.Random(seed)
        self.fail_prob = fail_prob

    def pull_outcome(self, state: AdoState, nid: int):
        if self._rng.random() < self.fail_prob:
            return ADO_FAIL
        time = self._fresh_time(state)
        candidates: List[CIDLike] = [state.root()] + [
            c for c in sorted(state.cache_cids(), key=repr)
            if time_of(c) < time
        ]
        return PullOkAdo(time=time, cid=self._rng.choice(candidates))

    def push_outcome(self, state: AdoState, nid: int):
        if self._rng.random() < self.fail_prob:
            return ADO_FAIL
        if state.max_owner() != nid:
            return ADO_FAIL
        own = [c for c in sorted(state.cache_cids(), key=repr) if nid_of(c) == nid]
        if not own:
            return ADO_FAIL
        return PushOkAdo(cid=self._rng.choice(own))

    def _fresh_time(self, state: AdoState) -> int:
        owned = [t for t in state.owners.keys()]
        return (max(owned) if owned else 0) + 1


# ----------------------------------------------------------------------
# The machine
# ----------------------------------------------------------------------

class AdoMachine:
    """An event-sourced ADO instance (Fig. 19-23).

    Keeps the full event log; the state is always ``interpAll`` of it
    (recomputed incrementally).
    """

    def __init__(self, oracle: AdoOracle) -> None:
        self.oracle = oracle
        self.events: List[Event] = []
        self.state: AdoState = interp_all([])

    def _emit(self, event: Event) -> Event:
        self.events.append(event)
        self.state = interp(event, self.state)
        return event

    def pull(self, nid: int) -> Event:
        """The pull generation rules (Fig. 21)."""
        outcome = self.oracle.pull_outcome(self.state, nid)
        if isinstance(outcome, AdoFail):
            return self._emit(PullMinus(nid))
        if isinstance(outcome, PullPreempt):
            return self._emit(PullStar(nid, outcome.time))
        return self._emit(PullPlus(nid, outcome.time, outcome.cid))

    def invoke(self, nid: int, method: Method) -> Event:
        """MethodInvocation / MethodFailure (Fig. 21)."""
        active = self.state.active_cid(nid)
        if active is None or not position_valid(self.state, active):
            return self._emit(InvokeMinus(nid))
        return self._emit(InvokePlus(nid, method))

    def push(self, nid: int) -> Event:
        """The push generation rules (Fig. 21)."""
        outcome = self.oracle.push_outcome(self.state, nid)
        if isinstance(outcome, AdoFail):
            return self._emit(PushMinus(nid))
        return self._emit(PushPlus(nid, outcome.cid))

    def persistent_methods(self) -> List[Method]:
        """The committed method sequence (the persistent log)."""
        return [cache.method for cache in self.state.persist]

    def replay(self) -> AdoState:
        """Recompute the state from the event log (sanity check)."""
        return interp_all(self.events)
