"""Cache identifiers for the ADO model (Appendix D.1, Fig. 19/23).

``CID ≜ ⟨N_nid * N_time * CID⟩ | Root``: a cache's identity *is* its
path -- a linked chain of (creator, timestamp) links back to ``Root``.
The tree structure of the ADO cache set is induced entirely by these
chains; the strict order ``cid1 < cid2`` is the proper-ancestor
relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union


@dataclass(frozen=True)
class RootCID:
    """The distinguished ``Root`` identifier."""

    def __repr__(self) -> str:
        return "Root"


ROOT = RootCID()


@dataclass(frozen=True)
class CID:
    """A non-root identifier: ``⟨nid, time, parent⟩``."""

    nid: int
    time: int
    parent: Union["CID", RootCID]

    def __repr__(self) -> str:
        return f"<n{self.nid},t{self.time},{self.parent!r}>"


CIDLike = Union[CID, RootCID]


def nid_of(cid: CID) -> int:
    """``nidOf(cid)`` (Fig. 23)."""
    return cid.nid


def time_of(cid: CID) -> int:
    """``timeOf(cid)`` (Fig. 23)."""
    return cid.time


def next_cid(cid: CID) -> CID:
    """``nextCID(cid) ≜ ⟨nid, time, cid⟩``: the same creator and round
    extend their own chain by one link (Fig. 23)."""
    return CID(nid=cid.nid, time=cid.time, parent=cid)


def ancestors(cid: CIDLike) -> Iterator[CIDLike]:
    """The proper ancestors of ``cid``, nearest first, ending at Root."""
    current = cid
    while isinstance(current, CID):
        current = current.parent
        yield current


def is_lt(a: CIDLike, b: CIDLike) -> bool:
    """``a < b``: ``a`` is a proper ancestor of ``b`` (Fig. 23)."""
    if isinstance(b, RootCID):
        return False
    return any(a == anc for anc in ancestors(b))


def is_le(a: CIDLike, b: CIDLike) -> bool:
    """``a ≤ b``: ancestor-or-equal."""
    return a == b or is_lt(a, b)


def depth(cid: CIDLike) -> int:
    """Chain length back to Root (Root itself has depth 0)."""
    return sum(1 for _ in ancestors(cid))
