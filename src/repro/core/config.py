"""The configuration/quorum parameters of the Adore model (Fig. 7/25).

Adore is generic over the notion of a configuration.  A
:class:`ReconfigScheme` bundles the three opaque parameters of the paper:

* ``Config`` -- any hashable value (the scheme interprets it),
* ``mbrs : Config → Set(N_nid)`` -- :meth:`ReconfigScheme.members`,
* ``isQuorum : Set(N_nid) → Config → B`` -- :meth:`ReconfigScheme.is_quorum`,
* ``R1⁺ : Config → Config → B`` -- :meth:`ReconfigScheme.r1_plus`.

The safety proof only relies on two assumptions about these parameters:

* REFLEXIVE: ``R1⁺(cf, cf)`` for every valid configuration ``cf``;
* OVERLAP: if ``R1⁺(cf, cf')`` then any quorum of ``cf`` intersects any
  quorum of ``cf'``.

Concrete schemes live in :mod:`repro.schemes`;
:mod:`repro.schemes.assumptions` checks REFLEXIVE and OVERLAP
exhaustively over bounded universes, the executable analogue of the
paper's per-scheme Coq side conditions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable

from .cache import Config, NodeId


class ReconfigScheme(ABC):
    """The parameterized quorum/configuration interface of Fig. 7.

    Subclasses define what a configuration *is* (a member set, a pair of
    sets for joint consensus, a primary plus backups, ...), what counts
    as a quorum, and which configuration transitions R1⁺ permits.
    """

    #: Human-readable scheme name, used in reports and benchmarks.
    name: str = "abstract"

    @abstractmethod
    def members(self, conf: Config) -> FrozenSet[NodeId]:
        """``mbrs(conf)``: the replicas participating in ``conf``."""

    @abstractmethod
    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        """``isQuorum(group, conf)``: does ``group`` form a quorum of ``conf``?"""

    @abstractmethod
    def r1_plus(self, old: Config, new: Config) -> bool:
        """``R1⁺(old, new)``: may a leader under ``old`` propose ``new``?"""

    def is_valid_config(self, conf: Config) -> bool:
        """Whether ``conf`` is a well-formed configuration for this scheme.

        Used by the assumption checkers to restrict the universe of
        configurations that REFLEXIVE/OVERLAP must hold over.
        """
        return True

    def describe_config(self, conf: Config) -> str:
        """Human-readable rendering of a configuration."""
        return repr(conf)


class StaticScheme(ReconfigScheme):
    """A majority-quorum scheme that forbids all reconfiguration.

    This instantiates the CADO model (Adore minus the boxed/blue parts):
    ``R1⁺`` holds only reflexively, so ``reconfig`` can never change the
    configuration, and the static majority-overlap argument applies.
    """

    name = "static-majority"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return frozenset(conf)

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        conf_set = frozenset(conf)
        return len(conf_set) < 2 * len(frozenset(group) & conf_set)

    def r1_plus(self, old: Config, new: Config) -> bool:
        return frozenset(old) == frozenset(new)

    def is_valid_config(self, conf: Config) -> bool:
        return len(frozenset(conf)) > 0


def majority(group: Iterable[NodeId], conf_members: Iterable[NodeId]) -> bool:
    """``|C| < 2 * |S ∩ C|``: the standard majority-quorum test.

    Shared by several schemes (Raft single-node, joint consensus) and by
    the network-based Raft specification.
    """
    members = frozenset(conf_members)
    return len(members) < 2 * len(frozenset(group) & members)
