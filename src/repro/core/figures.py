"""Canonical replays of the paper's figure scenarios.

These build the exact cache trees the paper draws, via the real
semantics driven by scripted oracles.  They are shared by the unit
tests, the examples, and the Fig. 4 counterexample benchmark:

* :func:`fig5_machine` -- the Fig. 5 walkthrough (pull, invoke, partial
  push, reconfig, competing election adopting the CCache).
* :func:`fig4_unsafe_machine` -- the Fig. 4 / Fig. 12 safety violation
  of Raft's original single-node algorithm (R3 disabled): two leaders
  with disjoint quorums commit on divergent branches.
* :func:`fig4_blocked_machine` -- the same schedule with R3 enforced;
  the very first reconfiguration is denied, so the violation is
  unreachable.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .cache import Cid
from .oracle import PullOk, PushOk, ScriptedOracle
from .semantics import AdoreMachine, OpResult
from ..schemes.single_node import RaftSingleNodeScheme


def fig5_machine() -> Tuple[AdoreMachine, Dict[str, Cid]]:
    """The Fig. 5 evolution on a three-replica system {1, 2, 3}.

    Sequence: S1 is elected (a); invokes M1 and M2 (b); a push commits
    only M1 -- a partial failure leaving M2 uncommitted (c); S1
    reconfigures, growing its active branch with an RCache (d); S2 is
    elected with voters {2, 3}, whose most recently *observed* cache is
    the CCache (they have not observed S1's MCache/RCache), and invokes
    M3 on the new branch (e).

    Returns the machine plus a name → cid map for the caches the paper
    labels.
    """
    nodes = frozenset({1, 2, 3})
    scheme = RaftSingleNodeScheme()
    oracle = ScriptedOracle([
        PullOk(group=frozenset({1, 2, 3}), time=1),
        # Commit M1 only (cid 2); M2 stays a partial failure.
        PushOk(group=frozenset({1, 2, 3}), target=2),
        PullOk(group=frozenset({2, 3}), time=2),
    ])
    machine = AdoreMachine.create(nodes, scheme, oracle, strict=True)
    labels: Dict[str, Cid] = {}

    labels["E1"] = _ok(machine.pull(1)).new_cid
    labels["M1"] = _ok(machine.invoke(1, "M1")).new_cid
    labels["M2"] = _ok(machine.invoke(1, "M2")).new_cid
    labels["C1"] = _ok(machine.push(1)).new_cid
    labels["R1"] = _ok(machine.reconfig(1, frozenset({1, 2, 3, 4}))).new_cid
    labels["E2"] = _ok(machine.pull(2)).new_cid
    labels["M3"] = _ok(machine.invoke(2, "M3")).new_cid
    return machine, labels


def _fig4_script() -> ScriptedOracle:
    return ScriptedOracle([
        # (a) S1 elected with {1,2,3} at time 1.
        PullOk(group=frozenset({1, 2, 3}), time=1),
        # (b) S2 elected with {2,3,4} at time 2 -- its voters have not
        # observed S1's RCache, so the election forks at the root.
        PullOk(group=frozenset({2, 3, 4}), time=2),
        # (c) S2 commits its reconfiguration with {2,4}, a majority of
        # its new configuration {1,2,4}.
        PushOk(group=frozenset({2, 4}), target=4),
        # (d) S1 re-elected at time 3 with {1,3} -- a majority of its
        # own (uncommitted!) configuration {1,2,3}.
        PullOk(group=frozenset({1, 3}), time=3),
        # S1 commits a regular command with {1,3}: disjoint from {2,4}.
        PushOk(group=frozenset({1, 3}), target=7),
    ])


def fig4_unsafe_machine() -> Tuple[AdoreMachine, Dict[str, Cid]]:
    """The Fig. 4 / Fig. 12 violation with R3 disabled.

    Initial configuration {1, 2, 3, 4}.  S1 proposes removing S4 but
    fails to replicate it; S2 is elected and removes S3, committing with
    {2, 4}; S1 is then re-elected under its own stale configuration with
    {1, 3} and commits independently.  The resulting tree has CCaches on
    two branches -- replicated state safety is broken.
    """
    nodes = frozenset({1, 2, 3, 4})
    machine = AdoreMachine.create(
        nodes, RaftSingleNodeScheme(), _fig4_script(), enforce_r3=False, strict=True
    )
    labels: Dict[str, Cid] = {}
    labels["E1"] = _ok(machine.pull(1)).new_cid
    labels["R1"] = _ok(machine.reconfig(1, frozenset({1, 2, 3}))).new_cid
    labels["E2"] = _ok(machine.pull(2)).new_cid
    labels["R2"] = _ok(machine.reconfig(2, frozenset({1, 2, 4}))).new_cid
    labels["C2"] = _ok(machine.push(2)).new_cid
    labels["E3"] = _ok(machine.pull(1)).new_cid
    labels["M1"] = _ok(machine.invoke(1, "M1")).new_cid
    labels["C3"] = _ok(machine.push(1)).new_cid
    return machine, labels


def fig4_blocked_machine() -> Tuple[AdoreMachine, OpResult]:
    """The same schedule with R3 enforced: the reconfig is denied.

    Returns the machine and the denied reconfiguration's
    :class:`OpResult` (``reason == "r3-denied"``).
    """
    nodes = frozenset({1, 2, 3, 4})
    oracle = ScriptedOracle([PullOk(group=frozenset({1, 2, 3}), time=1)])
    machine = AdoreMachine.create(nodes, RaftSingleNodeScheme(), oracle)
    _ok(machine.pull(1))
    denied = machine.reconfig(1, frozenset({1, 2, 3}))
    return machine, denied


def _ok(result: OpResult) -> OpResult:
    if not result.ok:
        raise AssertionError(
            f"figure scenario step {result.op} by {result.nid} failed: "
            f"{result.reason}"
        )
    return result
