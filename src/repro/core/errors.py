"""Exception hierarchy for the Adore reproduction.

The library distinguishes three failure categories:

* :class:`AdoreError` -- base class for everything raised by this package.
* :class:`ModelViolation` -- an internal invariant of the model was broken
  (e.g. a malformed cache tree).  These indicate a bug in the caller or in
  the library itself, never a legal protocol outcome.
* :class:`InvalidOracleOutcome` -- an oracle produced an outcome that does
  not satisfy the validity rules of Fig. 11/27 of the paper.  Scripted
  oracles used in tests raise this when a scenario step is illegal.
* :class:`SafetyViolation` -- a safety checker found a state that violates
  replicated state safety (Definition 4.1) or one of the Appendix-B
  invariants.  Raised by checkers operating in ``raise`` mode; the same
  information is also available as a structured report.
"""

from __future__ import annotations


class AdoreError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ModelViolation(AdoreError):
    """An internal invariant of the model state was broken."""


class MalformedTree(ModelViolation):
    """The cache tree is structurally invalid (cycle, missing parent, ...)."""


class UnknownCache(ModelViolation):
    """A cache id was looked up that is not present in the tree."""


class InvalidOracleOutcome(AdoreError):
    """An oracle returned an outcome violating the valid-oracle rules."""


class InvalidOperation(AdoreError):
    """An operation was invoked whose preconditions do not hold.

    In the paper such calls are modelled as NoOp transitions; the machine
    API mirrors that by default, but the strict API raises this error so
    tests can distinguish "the network failed" from "the rule forbids it".
    """


class ReconfigDenied(InvalidOperation):
    """``reconfig`` was blocked by R1+/R2/R3 (``canReconf`` is false)."""


class NotLeader(InvalidOperation):
    """The caller is not the leader at its active cache's timestamp."""


class SafetyViolation(AdoreError):
    """A state violating a safety property was detected."""

    def __init__(self, message: str, witness: object = None) -> None:
        super().__init__(message)
        self.witness = witness
