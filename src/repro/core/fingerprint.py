"""128-bit structural fingerprints (the model checker's hashing layer).

The explicit-state model checker deduplicates states by a 128-bit
*structural fingerprint* instead of by hashing full state objects.
Following TLC's fingerprinting design (Yu, Manolios, Lamport, "Model
checking TLA+ specifications"), a fingerprint collision silently merges
two distinct states; at 128 bits the collision probability over ``n``
states is about ``n^2 / 2^129`` -- below ``10^-26`` even for a billion
states -- which is the same (documented, measured) trade TLC makes at
64 bits.  Everything outside :mod:`repro.mc` keeps exact equality.

Three primitives live here:

* :func:`canonical_encode` -- a total, type-tagged, *order-insensitive
  for unordered containers* byte serialization.  Two values that
  compare equal encode identically regardless of dict/set insertion
  order, which is what makes fingerprints safe to use as equality
  proxies (``repr``-based hashing has no such guarantee).
* :func:`fp128` -- BLAKE2b-128 of a byte string, as an int (never 0,
  so 0 can serve as the empty-slot sentinel in open-addressing sets).
* The multiset combine: entry fingerprints are combined by *addition
  mod 2^128* (:data:`FP_MASK`), so a container's fingerprint is
  order-independent and can be maintained **incrementally**: adding an
  entry adds its term, removing subtracts it -- O(changed entries)
  instead of O(container).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any

#: Fingerprint width: combines are taken mod 2**128.
FP_BITS = 128
FP_MASK = (1 << FP_BITS) - 1


def fp128(data: bytes) -> int:
    """BLAKE2b-128 of ``data`` as a non-zero 128-bit int.

    The zero value is remapped to 1 so that 0 stays available as the
    empty-slot sentinel of :class:`repro.mc.fpset.FingerprintSet`.
    """
    fp = int.from_bytes(blake2b(data, digest_size=16).digest(), "little")
    return fp or 1


def combine(*fps: int) -> int:
    """An order-*sensitive* hash of already-computed fingerprints."""
    return fp128(b"".join(fp.to_bytes(16, "little") for fp in fps))


def ms_add(acc: int, term: int) -> int:
    """Add one entry term to a multiset fingerprint."""
    return (acc + term) & FP_MASK


def ms_sub(acc: int, term: int) -> int:
    """Remove one entry term from a multiset fingerprint."""
    return (acc - term) & FP_MASK


def canonical_encode(obj: Any) -> bytes:
    """A canonical, type-tagged byte serialization of ``obj``.

    Properties the model checker relies on:

    * **total on the model's value domain**: ints, strs, bytes, bools,
      None, floats, tuples/lists, sets/frozensets, dicts -- nested
      arbitrarily.
    * **canonical**: equal values encode equally.  Unordered containers
      are serialized in sorted-by-encoding order, so dict/set insertion
      order can never leak into a fingerprint (the classic ``repr``
      hashing bug).
    * **prefix-free by construction**: every atom carries a type tag
      and a length, so distinct structures cannot collide by
      concatenation accidents.

    Unknown types fall back to a tagged ``repr`` with the type's
    qualified name, which keeps the encoding total; such values should
    implement stable ``__repr__`` if they participate in state.
    """
    out = bytearray()
    _encode_into(obj, out)
    return bytes(out)


def _encode_into(obj: Any, out: bytearray) -> None:
    # bool must precede int (bool is an int subclass).
    if obj is None:
        out += b"N;"
    elif obj is True:
        out += b"B1;"
    elif obj is False:
        out += b"B0;"
    elif type(obj) is int:
        out += b"I%d;" % obj
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out += b"S%d:" % len(raw)
        out += raw
    elif type(obj) is bytes:
        out += b"Y%d:" % len(obj)
        out += obj
    elif type(obj) is float:
        out += b"F%s;" % repr(obj).encode("ascii")
    elif type(obj) in (tuple, list):
        out += b"T%d:" % len(obj)
        for item in obj:
            _encode_into(item, out)
    elif type(obj) in (frozenset, set):
        parts = sorted(canonical_encode(item) for item in obj)
        out += b"E%d:" % len(parts)
        for part in parts:
            out += part
    elif type(obj) is dict:
        pairs = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in obj.items()
        )
        out += b"D%d:" % len(pairs)
        for key, value in pairs:
            out += key
            out += value
    elif isinstance(obj, int):  # IntEnum, NodeId subtypes, ...
        out += b"I%d;" % int(obj)
    else:
        tag = type(obj).__qualname__.encode("utf-8", "replace")
        raw = repr(obj).encode("utf-8", "replace")
        out += b"R%d:%s%d:" % (len(tag), tag, len(raw))
        out += raw
