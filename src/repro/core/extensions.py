"""Alternative reconfiguration styles sketched in Section 8.

The paper's Related Work discusses how Adore could model two other
families of algorithms "with some slight modifications"; this module
implements both sketches so they can be executed and model-checked:

* **Stop-the-world** (Stoppable Paxos, WormSpace, Viewstamped
  Replication's view change): once a reconfiguration commits there is a
  clean break -- the old configuration must never act again.  The paper:
  "Adore could model this style of stop-the-world reconfiguration by
  deleting all caches not on the active branch when an RCache is
  committed, which simulates copying the committed commands to a new
  cluster of servers."  :func:`apply_push_stop_world` implements exactly
  that pruning, and :class:`StopTheWorldMachine` plugs it into the
  machine.

* **Lamport's α-reconfiguration** (Reconfiguring a State Machine): a
  configuration committed in slot *i* takes effect at slot *i + α*.
  The paper's two required changes: "wait until a configuration is
  committed to begin using it" and "block new methods from being
  invoked on an active branch that has α uncommitted caches".
  :class:`AlphaReconfigMachine` realizes both: new caches inherit the
  configuration of the last *committed* RCache on their branch (not the
  hot one), and invoke/reconfig refuse when α commands are already in
  flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .aux import active_cache, most_recent
from .cache import Cid, Config, MCache, Method, NodeId, is_ccache, is_committable, is_rcache
from .config import ReconfigScheme
from .oracle import Fail, PushOutcome
from .semantics import AdoreMachine, OpResult, apply_push
from .state import AdoreState
from .tree import ROOT_CID, CacheTree, TreeEntry


# ----------------------------------------------------------------------
# Stop-the-world
# ----------------------------------------------------------------------

def prune_to_branch(tree: CacheTree, cid: Cid) -> CacheTree:
    """Keep only the branch through ``cid`` and its descendants.

    The surviving caches are exactly the committed history plus its
    viable continuations; sibling branches (the old configuration's
    speculation) are deleted -- the "copy the log to the new cluster"
    step of stop-the-world schemes.  Cid freshness is preserved because
    the maximal cid lies on the kept branch (it was just added).
    """
    keep = set(tree.branch(cid)) | set(tree.descendants(cid))
    entries = {
        kept: TreeEntry(tree.parent(kept), tree.cache(kept)) for kept in keep
    }
    # Guard freshness: deleted cids must never be reused, so keep a
    # tombstone at the maximal cid if it was pruned (cannot happen when
    # cid is the newest cache, which push guarantees, but replays of
    # hand-built states may differ).
    max_cid = max(tree.cids())
    if max_cid not in entries:
        raise ValueError(
            "prune_to_branch would discard the newest cache; stop-the-world "
            "pruning must happen at the just-committed CCache"
        )
    return CacheTree(entries)


def apply_push_stop_world(
    state: AdoreState,
    nid: NodeId,
    outcome: PushOutcome,
    scheme: ReconfigScheme,
) -> Tuple[AdoreState, Optional[Cid], str]:
    """``push`` that performs the clean break on committed RCaches.

    Behaves exactly like the hot-model push; additionally, when the
    newly committed prefix contains an RCache, every cache not on the
    new CCache's branch is deleted.  After the break the old
    configuration cannot be resurrected: its speculative caches are
    gone, so no later pull can adopt them.
    """
    new_state, cid, reason = apply_push(state, nid, outcome, scheme)
    if cid is None:
        return new_state, cid, reason
    tree = new_state.tree
    committed_reconfig = any(
        is_rcache(tree.cache(anc)) and not _had_ccache_below(state.tree, anc)
        for anc in tree.ancestors(cid)
        if anc in state.tree
    )
    if committed_reconfig:
        tree = prune_to_branch(tree, cid)
        return new_state.with_tree(tree), cid, "ok-stopped-world"
    return new_state, cid, reason


def _had_ccache_below(tree: CacheTree, cid: Cid) -> bool:
    return any(is_ccache(tree.cache(d)) for d in tree.descendants(cid))


class StopTheWorldMachine(AdoreMachine):
    """An Adore machine whose commits stop the world on reconfiguration."""

    def push(self, nid: NodeId) -> OpResult:
        from .oracle import validate_push

        outcome = self.oracle.push_outcome(self.state, nid, self.scheme)
        validate_push(self.state, nid, outcome, self.scheme)
        state, cid, reason = apply_push_stop_world(
            self.state, nid, outcome, self.scheme
        )
        return self._record(
            OpResult("push", nid, cid is not None, reason, state, cid, outcome)
        )


# ----------------------------------------------------------------------
# Lamport's α-reconfiguration
# ----------------------------------------------------------------------

def effective_config(tree: CacheTree, cid: Cid) -> Config:
    """The last *committed* configuration on the branch of ``cid``.

    Under α-style reconfiguration an RCache's configuration is inert
    until a CCache commits it; the effective configuration is therefore
    taken from the deepest RCache ancestor-or-self that has a CCache
    descendant on this branch, falling back to the root configuration.
    """
    branch = tree.branch(cid)
    branch_set = set(branch)
    effective = tree.cache(ROOT_CID).conf
    for anc in branch:
        cache = tree.cache(anc)
        if not is_rcache(cache):
            continue
        committed_here = any(
            is_ccache(tree.cache(d))
            for d in tree.descendants(anc)
            if d in branch_set
        )
        if committed_here:
            effective = cache.conf
    return effective


def uncommitted_depth(tree: CacheTree, cid: Cid) -> int:
    """How many M/RCaches on the branch of ``cid`` lack a committing
    CCache below them on this branch (the α window occupancy)."""
    branch = tree.branch(cid)
    branch_set = set(branch)
    count = 0
    for anc in branch:
        if not is_committable(tree.cache(anc)):
            continue
        committed_here = any(
            is_ccache(tree.cache(d))
            for d in tree.descendants(anc)
            if d in branch_set
        )
        if not committed_here:
            count += 1
    return count


@dataclass
class AlphaReconfigMachine(AdoreMachine):
    """Adore with Lamport's α-delayed reconfiguration semantics.

    Differences from the hot model (both from Section 8's sketch):

    * quorums are evaluated against the *effective* (last committed)
      configuration, so an uncommitted RCache has no influence yet;
    * at most ``alpha`` commands may be uncommitted on the active
      branch; invoke/reconfig refuse beyond that, which bounds how far
      consensus instances may run ahead of a pending configuration.
    """

    alpha: int = 2

    @classmethod
    def create(cls, conf0, scheme, oracle, alpha: int = 2, **kwargs):
        base = AdoreMachine.create(conf0, scheme, oracle, **kwargs)
        return cls(
            scheme=base.scheme,
            oracle=base.oracle,
            state=base.state,
            strict=base.strict,
            alpha=alpha,
        )

    def pull(self, nid: NodeId) -> OpResult:
        """An election whose quorum is judged by the *effective* config.

        The hot model evaluates ``isQuorum`` against the adopted cache's
        (possibly uncommitted) configuration; under α semantics an
        uncommitted RCache must not influence elections, so the quorum
        test uses :func:`effective_config` of the adopted branch.
        """
        from .oracle import validate_pull
        from .cache import ECache

        outcome = self.oracle.pull_outcome(self.state, nid, self.scheme)
        validate_pull(self.state, nid, outcome, self.scheme)
        if isinstance(outcome, Fail):
            return self._record(
                OpResult("pull", nid, False, "oracle-fail", self.state)
            )
        c_max_cid = most_recent(self.state.tree, outcome.group)
        conf = effective_config(self.state.tree, c_max_cid)
        state = self.state.set_times(outcome.group, outcome.time)
        if not self.scheme.is_quorum(outcome.group, conf):
            return self._record(
                OpResult("pull", nid, False, "no-quorum", state, None, outcome)
            )
        new_cache = ECache(
            caller=nid,
            time=outcome.time,
            vrsn=0,
            conf=conf,
            voters=outcome.group,
        )
        tree, cid = state.tree.add_leaf(c_max_cid, new_cache)
        return self._record(
            OpResult("pull", nid, True, "ok", state.with_tree(tree), cid, outcome)
        )

    def _window_open(self, nid: NodeId) -> bool:
        active = active_cache(self.state.tree, nid)
        if active is None:
            return True
        return uncommitted_depth(self.state.tree, active) < self.alpha

    def invoke(self, nid: NodeId, method: Method) -> OpResult:
        if not self._window_open(nid):
            return self._record(
                OpResult("invoke", nid, False, "alpha-window-full", self.state)
            )
        result = super().invoke(nid, method)
        if result.ok:
            # Re-issue the cache with the *effective* configuration.
            result = self._rewrite_conf(result)
        return result

    def reconfig(self, nid: NodeId, new_conf: Config) -> OpResult:
        if not self._window_open(nid):
            return self._record(
                OpResult("reconfig", nid, False, "alpha-window-full", self.state)
            )
        return super().reconfig(nid, new_conf)

    def _rewrite_conf(self, result: OpResult) -> OpResult:
        """Patch the just-added MCache's configuration to the effective
        one (the hot semantics stamped the inherited conf)."""
        tree = self.state.tree
        cid = result.new_cid
        cache = tree.cache(cid)
        effective = effective_config(tree, cid)
        if cache.conf == effective:
            return result
        patched = MCache(
            caller=cache.caller,
            time=cache.time,
            vrsn=cache.vrsn,
            conf=effective,
            method=cache.method,
        )
        entries = {
            other: TreeEntry(tree.parent(other), tree.cache(other))
            for other in tree.cids()
        }
        entries[cid] = TreeEntry(tree.parent(cid), patched)
        self.state = self.state.with_tree(CacheTree(entries))
        self.history[-1] = OpResult(
            result.op, result.nid, result.ok, result.reason, self.state, cid
        )
        return self.history[-1]
