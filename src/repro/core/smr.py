"""The three client interfaces of Fig. 2: SMR, network, and ADO styles.

Fig. 2 contrasts how a client updates a distributed key-value store
under three models.  The network-level loop lives in
:mod:`repro.raft`; this module supplies the other two on top of an
:class:`~repro.core.semantics.AdoreMachine`:

* :class:`AdoStyleClient` -- the ADO pseudocode verbatim: ``pull`` if
  needed, ``invoke``, ``push``, each step may fail and the client
  decides to retry or abandon;
* :class:`SmrClient` -- the opaque ``rpc_call`` of the SMR model,
  implemented as a retry loop around the ADO steps.  From the caller's
  perspective a command either commits (with its position in the global
  log) or times out -- exactly the abstraction SMR promises and Adore
  refines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .cache import Method, NodeId
from .errors import AdoreError
from .safety import committed_methods
from .semantics import AdoreMachine


class RpcTimeout(AdoreError):
    """The SMR call did not commit within its retry budget."""


@dataclass
class CallStats:
    """Bookkeeping for one rpc_call: how the three phases went."""

    pulls: int = 0
    invokes: int = 0
    pushes: int = 0
    retries: int = 0


@dataclass
class AdoStyleClient:
    """Fig. 2's ADO client: three explicit, individually fallible steps.

    The client tracks whether it currently believes it holds an active
    cache (leadership); ``pull`` re-establishes it after a failure.
    """

    machine: AdoreMachine
    nid: NodeId
    has_active_cache: bool = False

    def pull(self) -> bool:
        result = self.machine.pull(self.nid)
        self.has_active_cache = result.ok
        return result.ok

    def invoke(self, method: Method) -> bool:
        if not self.has_active_cache:
            return False
        result = self.machine.invoke(self.nid, method)
        if not result.ok:
            # Preempted: the active cache is stale.
            self.has_active_cache = False
        return result.ok

    def push(self) -> bool:
        result = self.machine.push(self.nid)
        return result.ok

    def update(self, method: Method) -> bool:
        """The Fig. 2 ADO pseudocode, verbatim::

            if !pull()   { return FAIL; }
            if !invoke(M){ return FAIL; }
            if push()    { return OK; } else { return FAIL; }
        """
        if not self.has_active_cache and not self.pull():
            return False
        if not self.invoke(method):
            return False
        return self.push()


@dataclass
class SmrClient:
    """Fig. 2's SMR client: ``return rpc_call(M)``.

    Internally retries the ADO steps until the method is visibly
    committed (present in the global committed log) or the retry budget
    runs out -- the "internally, a replica may initiate an election and
    repeatedly multicast the command" of Section 2.2.1.
    """

    machine: AdoreMachine
    nid: NodeId
    max_retries: int = 8
    stats: CallStats = field(default_factory=CallStats)
    _ado: Optional[AdoStyleClient] = None

    def __post_init__(self) -> None:
        self._ado = AdoStyleClient(self.machine, self.nid)

    def _committed(self) -> List[Method]:
        return committed_methods(self.machine.state.tree)

    def rpc_call(self, method: Method) -> int:
        """Commit ``method``; returns its slot in the global log.

        Raises :class:`RpcTimeout` after ``max_retries`` failed
        attempts, mirroring the SMR "updates the state, or times out
        and fails" contract.
        """
        for attempt in range(self.max_retries):
            if attempt:
                self.stats.retries += 1
            if not self._ado.has_active_cache:
                self.stats.pulls += 1
                if not self._ado.pull():
                    continue
            self.stats.invokes += 1
            if not self._ado.invoke(method):
                continue
            self.stats.pushes += 1
            self._ado.push()
            # A failed push may still have committed a prefix that
            # includes our method (partial success), so check the log
            # rather than trusting the return value.
            committed = self._committed()
            if method in committed:
                return committed.index(method)
        raise RpcTimeout(
            f"rpc_call({method!r}) did not commit after "
            f"{self.max_retries} attempts"
        )
