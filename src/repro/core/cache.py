"""Cache variants of the Adore model (Fig. 6 / Fig. 24 of the paper).

A *cache* is one node of the Adore cache tree.  There are four variants:

* :class:`ECache` -- records a leader election (paper: *ECache*).
* :class:`MCache` -- records a method invocation (paper: *MCache*).
* :class:`RCache` -- records a reconfiguration command (paper: *RCache*).
* :class:`CCache` -- records a successful commit (paper: *CCache*).

Every cache carries the node id of the replica whose operation created it
(``caller``), a logical timestamp (``time`` -- a Paxos ballot / Raft term),
a version number (``vrsn`` -- reset to 0 by elections, incremented by each
method/reconfig call), and the configuration (``conf``) under which it was
created.  For an :class:`RCache` the ``conf`` field holds the *new*
configuration, which takes effect immediately (hot reconfiguration).

Configurations are opaque to this module: they are any hashable value
interpreted by a :class:`repro.core.config.ReconfigScheme`.

The strict order ``>`` on caches (Fig. 9/26) compares ``(time, vrsn)``
lexicographically, with the tie-break that a :class:`CCache` is greater
than a non-CCache with the same timestamp and version.  This is exposed
as :func:`cache_gt` and as the sort key :func:`order_key`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Tuple, Union

from .fingerprint import canonical_encode, fp128

NodeId = int
Time = int
Vrsn = int
Cid = int
Method = Hashable
Config = Hashable


@dataclass(frozen=True)
class _CacheBase:
    """Fields shared by every cache variant."""

    caller: NodeId
    time: Time
    vrsn: Vrsn
    conf: Config

    #: Short tag used in renderings and reprs; overridden per variant.
    kind: str = field(default="?", init=False, repr=False)

    @property
    def supporters(self) -> FrozenSet[NodeId]:
        """The replicas that approved this cache.

        For method and reconfiguration caches the only supporter is the
        caller (Fig. 9); election and commit caches override this with the
        explicit voter set recorded by the oracle.
        """
        memo = self.__dict__.get("_callerset")
        if memo is None:
            memo = frozenset({self.caller})
            object.__setattr__(self, "_callerset", memo)
        return memo

    @property
    def observers(self) -> FrozenSet[NodeId]:
        """The replicas whose *local log* covers this cache.

        This is the relation ``mostRecent`` maximizes over.  It differs
        from :attr:`supporters` in exactly one case: voting in an
        election records a supporter of the ECache (used for timestamp
        bookkeeping and the quorum-intersection arguments) but does
        **not** hand the voter the leader's log -- in Raft a granted
        vote leaves the voter's log untouched.  Hence an ECache is
        observed only by its caller (the winner adopted the branch),
        while a commit's acknowledging quorum has adopted the leader's
        branch up to the committed cache.  This distinction is what
        makes the Fig. 4 counterexample expressible: a voter of a later
        election can still legitimately serve an older branch.
        """
        return self.supporters

    def fingerprint(self) -> int:
        """A 128-bit structural fingerprint of this cache.

        Computed once per instance (caches are immutable) from the
        canonical type-tagged encoding, so two caches fingerprint
        equally iff they compare equal -- regardless of how the
        ``conf``/``voters`` collections were built up.
        """
        fp = self.__dict__.get("_fp")
        if fp is None:
            fp = fp128(canonical_encode((self.kind,) + self._fp_fields()))
            object.__setattr__(self, "_fp", fp)
        return fp

    def _fp_fields(self) -> Tuple:
        return (self.caller, self.time, self.vrsn, self.conf)

    def describe(self) -> str:
        """A compact human-readable rendering, e.g. ``E(n1,t2,v0)``."""
        return f"{self.kind}(n{self.caller},t{self.time},v{self.vrsn})"


@dataclass(frozen=True)
class ECache(_CacheBase):
    """An election cache: ``ECache(nid, time, vrsn, supporters, conf)``.

    Created by a successful ``pull``.  ``vrsn`` is always 0 (version
    numbers reset at the start of each round).  ``voters`` records the
    replicas whose votes elected the caller.
    """

    voters: FrozenSet[NodeId] = frozenset()
    kind: str = field(default="E", init=False, repr=False)

    @property
    def supporters(self) -> FrozenSet[NodeId]:
        return self.voters

    @property
    def observers(self) -> FrozenSet[NodeId]:
        # Votes do not transfer log entries (see _CacheBase.observers),
        # but winning does: the elected leader's state *is* the adopted
        # branch this ECache extends (explicitly adopted in Paxos-style
        # elections; the candidate's own log in Raft-style ones).  The
        # caller is therefore an observer; the voters are not.  Note
        # {caller} ⊆ voters, so this stays a sub-relation of the
        # paper's supporter relation.
        memo = self.__dict__.get("_callerset")
        if memo is None:
            memo = frozenset({self.caller})
            object.__setattr__(self, "_callerset", memo)
        return memo

    def _fp_fields(self) -> Tuple:
        return (self.caller, self.time, self.vrsn, self.conf, self.voters)


@dataclass(frozen=True)
class MCache(_CacheBase):
    """A method cache: ``MCache(nid, time, vrsn, method, conf)``.

    Created by ``invoke``.  The method is an arbitrary identifier: actual
    method semantics have no bearing on protocol safety (Section 3), so
    the model treats them opaquely.  Applications interpret them (see
    :mod:`repro.runtime.kvstore`).
    """

    method: Method = None
    kind: str = field(default="M", init=False, repr=False)

    def _fp_fields(self) -> Tuple:
        return (self.caller, self.time, self.vrsn, self.conf, self.method)


@dataclass(frozen=True)
class RCache(_CacheBase):
    """A reconfiguration cache: ``RCache(nid, time, vrsn, conf)``.

    Created by ``reconfig``.  Behaves like an :class:`MCache` whose
    payload is a new configuration; ``conf`` holds the *new*
    configuration, which descendants inherit immediately.
    """

    kind: str = field(default="R", init=False, repr=False)


@dataclass(frozen=True)
class CCache(_CacheBase):
    """A commit cache: ``CCache(nid, time, vrsn, supporters, conf)``.

    Created by a successful ``push``; inserted *between* the committed
    cache and its children (``insertBtw``), which keeps the tree
    append-only.  ``voters`` records the quorum that acknowledged the
    commit.  A CCache copies its parent's ``time`` and ``vrsn`` but is
    ordered strictly greater than it.
    """

    voters: FrozenSet[NodeId] = frozenset()
    kind: str = field(default="C", init=False, repr=False)

    @property
    def supporters(self) -> FrozenSet[NodeId]:
        return self.voters

    @property
    def observers(self) -> FrozenSet[NodeId]:
        # Acknowledging a commit adopts the leader's branch up to here.
        return self.voters

    def _fp_fields(self) -> Tuple:
        return (self.caller, self.time, self.vrsn, self.conf, self.voters)


Cache = Union[ECache, MCache, RCache, CCache]

#: Per-process intern table: cache -> the canonical instance.  Keyed by
#: the caches themselves: dataclass equality is exact (no fingerprint
#: collision risk) and the generated tuple hash is far cheaper than a
#: structural fingerprint, which matters because the successor generator
#: constructs millions of short-lived candidate caches.  Caches are tiny
#: and the set of distinct ones a run creates is far smaller than its
#: set of distinct trees, so a strong table is fine -- but bounded
#: (:data:`_CACHE_CAP`) so a pathological workload cannot grow it
#: without limit.
_INTERNED: Dict["Cache", "Cache"] = {}

#: Default flush threshold for the cache intern table.  Distinct caches
#: number in the thousands on real runs, so the default effectively
#: never flushes; bounded runs lower it via repro.core.cachemgr.
_DEFAULT_CACHE_CAP = 1 << 20

_CACHE_CAP = _DEFAULT_CACHE_CAP

#: Called (in registration order) every time the intern table is
#: flushed.  Interned caches are otherwise immortal, which lets
#: downstream memo tables key on ``id(cache)``; any such table MUST
#: register a listener that drops its entries, atomically with the
#: flush, before a recycled id can collide (repro.core.tree registers
#: its entry-fingerprint memo here).
_FLUSH_LISTENERS: list = []

_CACHE_STATS: Dict[str, int] = {"flushes": 0, "evicted": 0}


def intern_cache(cache: "Cache") -> "Cache":
    """The canonical shared instance structurally equal to ``cache``.

    Hash-consing: every tree-growth operation routes its new cache
    through this table, so structurally-equal caches are reference-equal
    within a process, their fingerprints/order keys/observer sets are
    computed once (and only for caches that actually get interned), and
    successor trees share cache objects with their parents.
    """
    got = _INTERNED.get(cache)
    if got is not None:
        return got
    if len(_INTERNED) >= _CACHE_CAP:
        flush_interned_caches()
    _INTERNED[cache] = cache
    return cache


def flush_interned_caches() -> None:
    """Flush the cache intern table and fire the flush listeners.

    Safe at any point: live caches stay alive through the trees holding
    them and re-intern (as the same object) on next use; only the
    canonical-instance mapping and the id-keyed downstream memos are
    dropped.
    """
    _CACHE_STATS["flushes"] += 1
    _CACHE_STATS["evicted"] += len(_INTERNED)
    _INTERNED.clear()
    for listener in _FLUSH_LISTENERS:
        listener()


def add_cache_flush_listener(listener) -> None:
    """Register ``listener`` to run on every intern-table flush."""
    if listener not in _FLUSH_LISTENERS:
        _FLUSH_LISTENERS.append(listener)


def configure_cache_intern(cap: Optional[int] = None) -> None:
    """Set the cache intern table's flush threshold."""
    global _CACHE_CAP
    if cap is not None:
        if cap < 1:
            raise ValueError(f"cache intern cap must be >= 1, got {cap}")
        _CACHE_CAP = cap


def cache_intern_policy() -> int:
    """The current flush threshold of the cache intern table."""
    return _CACHE_CAP


def cache_intern_stats() -> Dict[str, int]:
    """Flush counters plus the current table size."""
    stats = dict(_CACHE_STATS)
    stats["occupancy"] = len(_INTERNED)
    return stats


def is_ecache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is an election cache."""
    return isinstance(cache, ECache)


def is_mcache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is a method cache."""
    return isinstance(cache, MCache)


def is_rcache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is a reconfiguration cache."""
    return isinstance(cache, RCache)


def is_ccache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is a commit cache."""
    return isinstance(cache, CCache)


def is_committable(cache: _CacheBase) -> bool:
    """True iff ``cache`` may be the target of a ``push`` (M or R cache)."""
    return isinstance(cache, (MCache, RCache))


def order_key(cache: _CacheBase) -> Tuple[Time, Vrsn, int]:
    """Sort key realizing the strict order ``>`` of Fig. 9/26.

    ``(time, vrsn)`` lexicographic, then CCaches above non-CCaches at the
    same ``(time, vrsn)``.  Under the model's invariants (unique leader
    per timestamp, version numbers incremented per call) this key is
    unique for the caches the semantics ever compares.
    """
    key = cache.__dict__.get("_okey")
    if key is None:
        key = (cache.time, cache.vrsn, 1 if is_ccache(cache) else 0)
        object.__setattr__(cache, "_okey", key)
    return key


def cache_gt(left: _CacheBase, right: _CacheBase) -> bool:
    """The strict order ``left > right`` on caches (Fig. 9/26)."""
    return order_key(left) > order_key(right)


def cache_ge(left: _CacheBase, right: _CacheBase) -> bool:
    """Non-strict order: ``left > right`` or equal order keys."""
    return order_key(left) >= order_key(right)
