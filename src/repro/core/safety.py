"""Safety properties and their checkers (Section 4 and Appendix B).

The centrepiece is *replicated state safety* (Definition 4.1): every
CCache lies on a single branch of the cache tree, i.e. there is global
agreement on a consistent commit history.  The paper proves this in Coq
by induction on ``rdist``; here each named lemma/theorem of Appendix B
becomes an executable predicate over a cache tree, and the model checker
(:mod:`repro.mc`) validates them over every reachable state of bounded
instances.

Checker naming follows the paper: each function's docstring cites the
corresponding Coq theorem name (``rado_inv_*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from .cache import (
    CCache,
    Cid,
    MCache,
    RCache,
    cache_gt,
    is_ccache,
    is_committable,
    is_ecache,
    is_rcache,
    order_key,
)
from .errors import SafetyViolation
from .state import AdoreState, TimeMap
from .tree import ROOT_CID, CacheTree, forget_tree, set_memo_trimmer


# ----------------------------------------------------------------------
# Memo trimming (cache-manager hook)
# ----------------------------------------------------------------------

#: Per-tree memo entries that are pure speed/space trades: large derived
#: tables rebuilt on demand if the tree is ever revisited.  What the
#: trimmer deliberately KEEPS is the cheap, high-leverage scratch --
#: memoized safety-report verdicts (the whole point of letting a tree
#: survive a flush) and the small ``rprefix`` prefix-count table the
#: incremental ``rdist`` of future successors derives from.
_HEAVY_MEMO_KEYS = ("branches", "descendants", "node_tables", "kinds")


def trim_tree_memo(tree: CacheTree) -> None:
    """Drop heavy derived scratch from ``tree``'s memo, keep verdicts.

    Installed as :mod:`repro.core.tree`'s memo trimmer: the policy-driven
    epoch flush applies it to trees that survive a ``"recall"`` flush, so
    a bounded run's heuristic survivors cost one small dict each rather
    than the full O(tree²) ancestry tables.  (``"subnodes"`` survivors
    are the live frontier and keep their tables: the engine is about to
    expand them, so trimming would force an immediate rebuild.)
    """
    memo = tree._memo
    if not memo:
        return
    for key in _HEAVY_MEMO_KEYS:
        memo.pop(key, None)


set_memo_trimmer(trim_tree_memo)


# ----------------------------------------------------------------------
# rdist (Definition 4.2)
# ----------------------------------------------------------------------

def _rprefix(tree: CacheTree) -> dict:
    """Per-cid count of RCaches on the root-to-cid path (inclusive).

    Memoized on the (hash-consed) tree; turns :func:`rdist` into O(depth)
    arithmetic instead of materializing the path.  Built by walking down
    from the root, so it covers exactly the caches reachable from it --
    the only ones ``rdist`` is ever asked about on well-formed trees.
    """
    memo = tree.memo()
    table = memo.get("rprefix")
    if table is None:
        # Incremental form: a tree derived by add_leaf extends the
        # parent tree's table by one entry, and insert_btw only ever
        # inserts a CCache (never an RCache), which changes no existing
        # path's RCache count either.  Both therefore copy the parent
        # table and add the new node's entry.
        prov = memo.get("prov")
        if prov is not None:
            parent_tree, op, new_cid, parent_cid = prov
            parent_memo = parent_tree._memo
            base = parent_memo.get("rprefix") if parent_memo else None
            new_is_r = is_rcache(tree.cache(new_cid))
            if base is not None and (op == "leaf" or not new_is_r):
                table = dict(base)
                table[new_cid] = base[parent_cid] + (1 if new_is_r else 0)
                memo["rprefix"] = table
                return table
        table = {}
        stack = [(ROOT_CID, 0)]
        while stack:
            cid, above = stack.pop()
            count = above + (1 if is_rcache(tree.cache(cid)) else 0)
            table[cid] = count
            for child in tree.children(cid):
                stack.append((child, count))
        memo["rprefix"] = table
    return table


def rdist(tree: CacheTree, a: Cid, b: Cid) -> int:
    """The number of RCaches on the path between ``a`` and ``b``.

    The path runs through the nearest common ancestor and excludes both
    endpoints (Definition 4.2).  This counts exactly the
    reconfigurations that can make the two caches' configurations
    diverge.  Computed from the per-branch RCache prefix counts: each
    leg contributes its prefix-count difference to the NCA minus the
    excluded endpoint, and the NCA itself counts when it is interior.
    """
    nca = tree.nearest_common_ancestor(a, b)
    table = _rprefix(tree)
    at_nca = table[nca]
    total = 0
    if a != nca:
        total += table[a] - at_nca - (1 if is_rcache(tree.cache(a)) else 0)
    if b != nca:
        total += table[b] - at_nca - (1 if is_rcache(tree.cache(b)) else 0)
    if nca != a and nca != b and is_rcache(tree.cache(nca)):
        total += 1
    return total


def tree_rdist(tree: CacheTree) -> int:
    """The maximum ``rdist`` between any two caches in the tree."""
    cids = list(tree.cids())
    best = 0
    for a, b in combinations(cids, 2):
        best = max(best, rdist(tree, a, b))
    return best


# ----------------------------------------------------------------------
# Committed log extraction
# ----------------------------------------------------------------------

def is_committed(tree: CacheTree, cid: Cid) -> bool:
    """A cache is committed iff a CCache is among its descendants-or-self.

    (Section 2.4: MCaches and RCaches are implicitly committed if a
    CCache is among their descendants; this keeps the tree append-only.)
    """
    return any(
        is_ccache(tree.cache(d)) for d in tree.descendants(cid, include_self=True)
    )


def max_ccache(tree: CacheTree) -> Cid:
    """The greatest CCache under the cache order (the deepest commit)."""
    best = tree.max_cache(tree.kind_cids("C"))
    return ROOT_CID if best is None else best


def committed_log(tree: CacheTree) -> List[Cid]:
    """The globally committed command sequence (the SMR persistent log).

    The MCaches/RCaches on the branch of the greatest CCache that lie
    above it, in root-to-leaf order.  Well-defined whenever replicated
    state safety holds (all CCaches are on that branch).
    """
    tip = max_ccache(tree)
    return [
        cid
        for cid in tree.branch(tip)
        if is_committable(tree.cache(cid))
    ]


def committed_methods(tree: CacheTree) -> List[object]:
    """The committed payloads: method names, or configs for RCaches."""
    out: List[object] = []
    for cid in committed_log(tree):
        cache = tree.cache(cid)
        out.append(cache.method if hasattr(cache, "method") else cache.conf)
    return out


# ----------------------------------------------------------------------
# Invariant checkers (Definition 4.1 and Appendix B)
# ----------------------------------------------------------------------

def check_replicated_state_safety(tree: CacheTree) -> List[str]:
    """Definition 4.1 / Theorem B.9 [rado_inv_C_linear].

    For any two CCaches, one must be a descendant of the other.  Returns
    violation descriptions (empty when safe).
    """
    problems: List[str] = []
    ccaches = tree.kind_cids("C")
    for a, b in combinations(ccaches, 2):
        if not tree.same_branch(a, b):
            problems.append(
                f"CCaches {a} ({tree.cache(a).describe()}) and "
                f"{b} ({tree.cache(b).describe()}) lie on different branches "
                f"(rdist={rdist(tree, a, b)})"
            )
    return problems


def check_descendant_order(tree: CacheTree) -> List[str]:
    """Lemma B.1 [rado_inv_descendant_lt]: descendants are greater.

    If ``C_Y`` is a descendant of ``C_X`` then ``C_Y > C_X``.
    """
    problems: List[str] = []
    for cid, parent, cache in tree.parent_items():
        if parent is None:
            continue
        if not cache_gt(cache, tree.cache(parent)):
            problems.append(
                f"cache {cid} ({cache.describe()}) is not greater "
                f"than its parent {parent} ({tree.cache(parent).describe()})"
            )
    return problems


def check_leader_time_uniqueness(
    tree: CacheTree, max_rdist: Optional[int] = None
) -> List[str]:
    """Lemmas B.2/B.5 [rado_inv_E_unique_time_no_R / _overlap].

    Two distinct ECaches within ``max_rdist`` reconfigurations of each
    other must have distinct timestamps.  ``max_rdist=None`` checks all
    pairs (which holds on reachable states of the *correct* model and is
    what the ablations break).
    """
    problems: List[str] = []
    etimes = [(cid, tree.cache(cid).time) for cid in tree.kind_cids("E")]
    for (a, ta), (b, tb) in combinations(etimes, 2):
        if ta != tb:
            continue
        if max_rdist is not None and rdist(tree, a, b) > max_rdist:
            continue
        problems.append(
            f"ECaches {a} and {b} share timestamp {ta} "
            f"(rdist={rdist(tree, a, b)})"
        )
    return problems


def check_election_commit_order(
    tree: CacheTree, max_rdist: Optional[int] = None
) -> List[str]:
    """Theorems B.3/B.6 [rado_inv_EC_descendant_no_R and kin].

    For a CCache ``C_C`` and an ECache ``C_E`` with ``C_E > C_C`` and
    rdist within bound, ``C_E`` must be a descendant of ``C_C``: later
    leaders must have every earlier commit in their history.
    """
    problems: List[str] = []
    ckeys = [(c, order_key(tree.cache(c))) for c in tree.kind_cids("C")]
    for e in tree.kind_cids("E"):
        ekey = order_key(tree.cache(e))
        for c, ckey in ckeys:
            if not ekey > ckey:
                continue
            if max_rdist is not None and rdist(tree, e, c) > max_rdist:
                continue
            if not tree.is_ancestor(c, e, strict=True):
                problems.append(
                    f"ECache {e} ({tree.cache(e).describe()}) > CCache {c} "
                    f"({tree.cache(c).describe()}) but is not its descendant "
                    f"(rdist={rdist(tree, e, c)})"
                )
    return problems


def check_ccache_in_rcache_fork(tree: CacheTree) -> List[str]:
    """Lemma 4.4 / B.8 [rado_inv_R_branch_case].

    For RCaches ``C_R1``/``C_R2`` with ``rdist = 0`` on diverging
    branches, some CCache must sit strictly between their nearest common
    ancestor and one of them.  This is the consequence of R3 that breaks
    the circularity in the general safety proof.
    """
    problems: List[str] = []
    for a, b in combinations(tree.kind_cids("R"), 2):
        if tree.same_branch(a, b):
            continue
        if rdist(tree, a, b) != 0:
            continue
        nca = tree.nearest_common_ancestor(a, b)
        found = any(
            is_ccache(tree.cache(mid))
            for target in (a, b)
            for mid in tree.ancestors(target)
            if tree.is_ancestor(nca, mid, strict=True)
        )
        if not found:
            problems.append(
                f"RCaches {a} and {b} fork at {nca} with no intervening CCache"
            )
    return problems


def check_version_reset(tree: CacheTree) -> List[str]:
    """ECaches reset the version number to 0; M/RCaches increment it."""
    problems: List[str] = []
    for cid, parent, cache in tree.parent_items():
        if is_ecache(cache) and cache.vrsn != 0:
            problems.append(f"ECache {cid} has version {cache.vrsn}")
        if parent is not None and is_committable(cache):
            parent_cache = tree.cache(parent)
            if cache.time == parent_cache.time and cache.vrsn != parent_cache.vrsn + 1:
                problems.append(
                    f"cache {cid} does not increment its parent's version "
                    f"({cache.vrsn} after {parent_cache.vrsn})"
                )
    return problems


@dataclass
class SafetyReport:
    """The aggregated result of all invariant checks over one state."""

    safety: List[str] = field(default_factory=list)
    well_formedness: List[str] = field(default_factory=list)
    descendant_order: List[str] = field(default_factory=list)
    leader_time_uniqueness: List[str] = field(default_factory=list)
    election_commit_order: List[str] = field(default_factory=list)
    ccache_in_rcache_fork: List[str] = field(default_factory=list)
    version_reset: List[str] = field(default_factory=list)

    #: Checker labels in reporting order; also the keys accepted by
    #: :meth:`filtered`.
    LABELS = (
        "safety",
        "well-formedness",
        "descendant-order",
        "leader-time-uniqueness",
        "election-commit-order",
        "ccache-in-rcache-fork",
        "version-reset",
    )

    @property
    def ok(self) -> bool:
        """True when no checker reported a violation."""
        return not (
            self.safety
            or self.well_formedness
            or self.descendant_order
            or self.leader_time_uniqueness
            or self.election_commit_order
            or self.ccache_in_rcache_fork
            or self.version_reset
        )

    def _by_label(self) -> List[Tuple[str, List[str]]]:
        return [
            ("safety", self.safety),
            ("well-formedness", self.well_formedness),
            ("descendant-order", self.descendant_order),
            ("leader-time-uniqueness", self.leader_time_uniqueness),
            ("election-commit-order", self.election_commit_order),
            ("ccache-in-rcache-fork", self.ccache_in_rcache_fork),
            ("version-reset", self.version_reset),
        ]

    def all_violations(self) -> List[str]:
        """All violation descriptions, tagged by checker."""
        out: List[str] = []
        for label, items in self._by_label():
            out.extend(f"[{label}] {item}" for item in items)
        return out

    def filtered(self, labels: "Iterable[str]") -> "SafetyReport":
        """A report keeping only the named checkers' findings.

        Used by ablation experiments to target one invariant (e.g. only
        top-level ``"safety"``) while ignoring the auxiliary lemmas that
        break earlier.
        """
        wanted = set(labels)
        unknown = wanted - set(self.LABELS)
        if unknown:
            raise ValueError(f"unknown invariant labels: {sorted(unknown)}")
        kept = {
            label.replace("-", "_"): (items if label in wanted else [])
            for label, items in self._by_label()
        }
        return SafetyReport(**kept)


def validate_invariant_labels(labels: Iterable[str]) -> Tuple[str, ...]:
    """Check ``labels`` against :attr:`SafetyReport.LABELS` and return
    them as a tuple.

    Raises ``ValueError`` on unknown labels.  Callers that defer the
    actual checking (the model checker validates at construction, then
    checks states in worker processes) use this to fail fast in the
    submitting process rather than with a cross-process traceback.
    """
    labels = tuple(labels)
    unknown = set(labels) - set(SafetyReport.LABELS)
    if unknown:
        raise ValueError(f"unknown invariant labels: {sorted(unknown)}")
    return labels


#: Validated ``(wanted, memo_key)`` per ``(lemma_rdist_bound, only)``.
_CHECK_CONFIGS: dict = {}


def _delta_clean(
    tree: CacheTree,
    op: str,
    new_cid: Cid,
    parent_cid: Cid,
    wanted: set,
    bound: Optional[int],
) -> bool:
    """True iff adding one node to a *clean* tree stays clean.

    Incremental form of the checkers for the two growth operations: a
    clean parent report plus clean delta pairs implies a clean report,
    because (a) adding a leaf, or inserting a non-RCache into an edge,
    changes no existing pair's rdist, branch membership, or pairwise
    ancestry, so every previously-checked pair checks identically, and
    (b) the only new pairs involve the new node, which are exactly the
    ones examined here (for ``insert_btw`` also the reparented
    children's parent-edge conditions).  Any failed or *suspect* delta
    returns False and the caller recomputes the full report, so
    violation messages and their order always come from the full
    checkers.  Callers must not use this when inserting an RCache
    between existing nodes (that can change existing rdists).
    """
    new_cache = tree.cache(new_cid)
    pcache = tree.cache(parent_cid)
    new_is_c = is_ccache(new_cache)
    new_is_e = is_ecache(new_cache)
    reparented = tree.children(new_cid) if op == "btw" else ()

    if "well-formedness" in wanted:
        if new_is_e and new_cache.vrsn != 0:
            return False
        if new_is_c and (
            not is_committable(pcache)
            or (pcache.time, pcache.vrsn) != (new_cache.time, new_cache.vrsn)
        ):
            return False
        for child in reparented:
            cc = tree.cache(child)
            if is_ccache(cc) and (
                not is_committable(new_cache)
                or (new_cache.time, new_cache.vrsn) != (cc.time, cc.vrsn)
            ):
                return False
    if "descendant-order" in wanted:
        if not cache_gt(new_cache, pcache):
            return False
        for child in reparented:
            if not cache_gt(tree.cache(child), new_cache):
                return False
    if "version-reset" in wanted:
        if new_is_e and new_cache.vrsn != 0:
            return False
        if (
            is_committable(new_cache)
            and new_cache.time == pcache.time
            and new_cache.vrsn != pcache.vrsn + 1
        ):
            return False
        for child in reparented:
            cc = tree.cache(child)
            if (
                is_committable(cc)
                and cc.time == new_cache.time
                and cc.vrsn != new_cache.vrsn + 1
            ):
                return False
    if "safety" in wanted and new_is_c:
        # Same predicate as ``same_branch`` over every other CCache, in
        # O(depth + |C|) instead of O(|C| * depth): a CCache shares a
        # branch with the new one iff it lies on the new node's root
        # path (membership in ``on_branch``) or is its descendant (the
        # rare direction -- on clean trees almost every existing CCache
        # is an ancestor of the newly committed one).
        on_branch = set(tree.branch(new_cid))
        for other in tree.kind_cids("C"):
            if other == new_cid or other in on_branch:
                continue
            if not tree.is_ancestor(new_cid, other, strict=True):
                return False
    if "leader-time-uniqueness" in wanted and new_is_e:
        for other in tree.kind_cids("E"):
            if other == new_cid or tree.cache(other).time != new_cache.time:
                continue
            if bound is None or rdist(tree, other, new_cid) <= bound:
                return False
    if "election-commit-order" in wanted:
        if new_is_e:
            nkey = order_key(new_cache)
            for c in tree.kind_cids("C"):
                if not nkey > order_key(tree.cache(c)):
                    continue
                if bound is not None and rdist(tree, new_cid, c) > bound:
                    continue
                if not tree.is_ancestor(c, new_cid, strict=True):
                    return False
        elif new_is_c:
            nkey = order_key(new_cache)
            for e in tree.kind_cids("E"):
                if not order_key(tree.cache(e)) > nkey:
                    continue
                if bound is not None and rdist(tree, e, new_cid) > bound:
                    continue
                if not tree.is_ancestor(new_cid, e, strict=True):
                    return False
    if "ccache-in-rcache-fork" in wanted and is_rcache(new_cache):
        for other in tree.kind_cids("R"):
            if other == new_cid or tree.same_branch(other, new_cid):
                continue
            if rdist(tree, other, new_cid) != 0:
                continue
            nca = tree.nearest_common_ancestor(other, new_cid)
            found = any(
                is_ccache(tree.cache(mid))
                for target in (other, new_cid)
                for mid in tree.ancestors(target)
                if tree.is_ancestor(nca, mid, strict=True)
            )
            if not found:
                return False
    return True


def check_state(
    state: AdoreState,
    lemma_rdist_bound: Optional[int] = 1,
    only: Optional[Iterable[str]] = None,
) -> SafetyReport:
    """Run the invariant checkers over ``state``.

    ``lemma_rdist_bound`` bounds the rdist at which the Appendix-B
    lemmas are checked (the paper proves them for rdist ≤ 1 and derives
    the general safety theorem from them); the top-level safety check is
    always unbounded.  ``only`` restricts which checkers *run* (labels
    from ``SafetyReport.LABELS``) -- unlike :meth:`SafetyReport.filtered`
    this skips the computation entirely, which matters inside the model
    checker's inner loop.

    Every checker reads only ``state.tree`` (the time map never appears
    in an invariant), so the report is pure in the tree, the rdist
    bound, and the selection -- and is memoized on the (hash-consed)
    tree.  States that differ only in their time maps share one report;
    the *set of checks run per distinct tree* is unchanged.
    """
    tree = state.tree
    # The checker selection is validated and keyed once per distinct
    # (bound, only) pair -- the explorer asks with the same pair for
    # every state it visits.
    try:
        config = _CHECK_CONFIGS.get((lemma_rdist_bound, only))
    except TypeError:  # unhashable `only` (e.g. a list)
        config = None
        only = tuple(only)
    if config is None:
        wanted = set(SafetyReport.LABELS) if only is None else set(only)
        unknown = wanted - set(SafetyReport.LABELS)
        if unknown:
            raise ValueError(f"unknown invariant labels: {sorted(unknown)}")
        memo_key = ("safety_report", lemma_rdist_bound, tuple(sorted(wanted)))
        config = _CHECK_CONFIGS[(lemma_rdist_bound, only)] = (wanted, memo_key)
    wanted, memo_key = config

    memo = tree.memo()
    cached = memo.get(memo_key)
    if cached is not None:
        return cached

    # Incremental fast path: this tree extends a parent tree whose
    # report (same bound + selection) is already known clean.  If the
    # delta pairs are clean too, the report is clean; anything suspect
    # falls through to the full recomputation, so violating states
    # always get the full checkers' messages in their exact order.
    prov = memo.get("prov")
    if prov is not None:
        parent_tree, op, new_cid, parent_cid = prov
        parent_memo = parent_tree._memo
        parent_report = parent_memo.get(memo_key) if parent_memo else None
        if (
            parent_report is not None
            and parent_report.ok
            and (op == "leaf" or not is_rcache(tree.cache(new_cid)))
            and _delta_clean(tree, op, new_cid, parent_cid, wanted, lemma_rdist_bound)
        ):
            report = memo[memo_key] = SafetyReport()
            return report

    def run(label, thunk):
        return thunk() if label in wanted else []

    report = memo[memo_key] = SafetyReport(
        safety=run("safety", lambda: check_replicated_state_safety(tree)),
        well_formedness=run(
            "well-formedness", tree.well_formedness_violations
        ),
        descendant_order=run(
            "descendant-order", lambda: check_descendant_order(tree)
        ),
        leader_time_uniqueness=run(
            "leader-time-uniqueness",
            lambda: check_leader_time_uniqueness(tree, lemma_rdist_bound),
        ),
        election_commit_order=run(
            "election-commit-order",
            lambda: check_election_commit_order(tree, lemma_rdist_bound),
        ),
        ccache_in_rcache_fork=run(
            "ccache-in-rcache-fork", lambda: check_ccache_in_rcache_fork(tree)
        ),
        version_reset=run("version-reset", lambda: check_version_reset(tree)),
    )
    return report


def assert_safe(state: AdoreState, lemma_rdist_bound: Optional[int] = 1) -> None:
    """Raise :class:`SafetyViolation` when any invariant fails."""
    report = check_state(state, lemma_rdist_bound)
    if not report.ok:
        raise SafetyViolation(
            "; ".join(report.all_violations()), witness=state
        )


# ----------------------------------------------------------------------
# Incremental checking over observed logs (one engine, three consumers)
# ----------------------------------------------------------------------

#: Sentinel for an ``(absolute position, entry)`` pair observed at two
#: distinct tree nodes -- re-anchoring across an export gap must refuse
#: to guess between branches.
_AMBIGUOUS = object()


def _freeze(value):
    """An equal-by-value hashable form of an observed payload.

    Log payloads come from client commands and wire-decoded JSON, so
    they may contain dicts/lists (a kvstore ``put`` of a JSON object).
    The engine keys its trie -- and builds hash-consed caches -- on
    payloads, so they must hash; identical payloads must freeze
    identically regardless of dict insertion order.
    """
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze(v) for v in value)
    return value

#: Invariants vacuous on treeified logs: log observations never create
#: ECaches, so the election lemmas have nothing to say and skipping them
#: saves the (empty) scans.
DEFAULT_LOG_INVARIANTS = (
    "safety",
    "well-formedness",
    "descendant-order",
    "ccache-in-rcache-fork",
    "version-reset",
)

_NO_TIMES = TimeMap()


class IncrementalTreeChecker:
    """Maintain the Appendix-B invariants over *observed* replica logs.

    This is the one incremental engine behind three consumers: the model
    checker reaches the same machinery through :func:`check_state` on
    states it generates itself; the simulated cluster's ``check_safety``
    and the live-cluster monitor (:mod:`repro.monitor`) instead *observe*
    per-node logs and fold them into a single growing cache tree here.

    Observations are duck-typed log entries carrying ``time`` (term),
    ``vrsn``, ``payload``, and ``is_config`` -- the shape of
    :class:`repro.raft.messages.LogEntry`, without importing it.  Each
    distinct entry-at-a-position becomes one tree node (a trie over
    logs, so agreeing replicas share structure); a node's committed
    length plants a CCache at its committed tip via ``insert_btw``, the
    same growth operation ``push`` uses in the model.  Unlike the batch
    refinement mapping, commit markers are never retired: a commit
    observed on a branch that later loses stays in the tree, so
    divergent commits are caught even after the losing replica adopts
    the winner's log.

    Every growth step is checked through :func:`check_state`, which
    takes the provenance fast path (:func:`_delta_clean`) because the
    previous tree's clean report is always in its memo -- each observed
    entry costs O(depth), not O(tree).  After each step the superseded
    tree is released from the hash-consing table (``trim=True``), so a
    monitor that runs for days holds one tree, not its whole history.
    """

    def __init__(
        self,
        conf0,
        nodes: Optional[Iterable[int]] = None,
        lemma_rdist_bound: Optional[int] = 1,
        invariants: Optional[Iterable[str]] = DEFAULT_LOG_INVARIANTS,
        trim: bool = True,
    ) -> None:
        members = frozenset(nodes) if nodes is not None else frozenset(conf0)
        self._tree = CacheTree.initial(
            CCache(caller=0, time=0, vrsn=0, conf=conf0, voters=members)
        )
        self._bound = lemma_rdist_bound
        self._invariants = (
            None if invariants is None else validate_invariant_labels(invariants)
        )
        self._trim = trim
        #: (parent cid, entry key) -> the entry's cid: the log trie.
        self._edges: dict = {}
        #: entry cid -> cid new children attach under (the commit marker
        #: once the entry is marked; itself otherwise, via .get default).
        self._attach: dict = {}
        #: entry cids whose commit marker exists already.
        self._marked: set = set()
        #: (absolute position, entry key) -> cid, for gap re-anchoring.
        self._placed: dict = {}
        #: nid -> entry cid per absolute log position (None = unknown).
        self._paths: dict = {}
        #: nid -> highest committed length folded in so far.
        self._commits: dict = {}
        self.events = 0
        self.entries_added = 0
        self.gaps = 0
        self.violation: Optional[SafetyReport] = None
        self.violation_event: Optional[str] = None

    # -- construction helpers ------------------------------------------

    @staticmethod
    def _entry_key(entry) -> Tuple:
        return (
            entry.time, entry.vrsn, bool(entry.is_config),
            _freeze(entry.payload),
        )

    @staticmethod
    def _cache_for(entry):
        if entry.is_config:
            return RCache(
                caller=0, time=entry.time, vrsn=entry.vrsn,
                conf=frozenset(entry.payload),
            )
        return MCache(
            caller=0, time=entry.time, vrsn=entry.vrsn, conf=None,
            method=_freeze(entry.payload),
        )

    def _grew(self, tree: CacheTree, description: str) -> None:
        prev, self._tree = self._tree, tree
        if self.violation is None:
            report = check_state(
                AdoreState(tree, _NO_TIMES), self._bound, only=self._invariants
            )
            if not report.ok:
                self.violation = report
                self.violation_event = description
        if self._trim:
            # Drop the provenance chain (it pins every predecessor tree)
            # and release the superseded tree from the intern table.
            tree.memo().pop("prov", None)
            if prev is not tree:
                forget_tree(prev)

    # -- observations --------------------------------------------------

    def observe(
        self, nid: int, base: int, entries, commit_len: int, anchor_entry=None
    ) -> Optional[SafetyReport]:
        """Fold one replica's log advance into the tree and check it.

        ``base`` is the absolute length of the prefix shared with the
        replica's previous observation, ``entries`` the suffix from
        there, and ``commit_len`` its absolute committed length.  When
        ``base`` lies beyond everything previously observed from this
        replica (it adopted a snapshot covering entries it never
        exported), ``anchor_entry`` -- the last entry of the elided
        prefix -- lets the engine re-anchor onto a position another
        replica already placed; without a unique anchor the advance is
        counted in :attr:`gaps` and skipped.

        Returns the violation report if *this* call detected the first
        violation, else ``None`` (also after a violation: the tree keeps
        growing so the trie stays consistent, but checking stops).
        """
        already = self.violation
        self.events += 1
        path = self._paths.setdefault(nid, [])
        if base > len(path):
            anchored = False
            if anchor_entry is not None and base > 0:
                cid = self._placed.get((base - 1, self._entry_key(anchor_entry)))
                if cid is not None and cid is not _AMBIGUOUS:
                    path.extend([None] * (base - len(path)))
                    path[base - 1] = cid
                    anchored = True
            if not anchored:
                self.gaps += 1
                return None
        else:
            del path[base:]
        parent = path[base - 1] if base > 0 else ROOT_CID
        if parent is None:
            self.gaps += 1
            return None
        for offset, entry in enumerate(entries):
            pos = base + offset
            key = (parent, self._entry_key(entry))
            cid = self._edges.get(key)
            if cid is None:
                attach = self._attach.get(parent, parent)
                tree, cid = self._tree.add_leaf(attach, self._cache_for(entry))
                self._edges[key] = cid
                placed_key = (pos, self._entry_key(entry))
                held = self._placed.get(placed_key)
                if held is None:
                    self._placed[placed_key] = cid
                elif held is not _AMBIGUOUS and held != cid:
                    self._placed[placed_key] = _AMBIGUOUS
                self.entries_added += 1
                self._grew(
                    tree,
                    f"S{nid} appended entry #{pos} "
                    f"(t{entry.time},v{entry.vrsn}, {entry.payload!r})",
                )
            path.append(cid)
            parent = cid
        self._mark_commit(nid, commit_len, path)
        if self.violation is not already:
            return self.violation
        return None

    def _mark_commit(self, nid: int, commit_len: int, path) -> None:
        if commit_len <= self._commits.get(nid, 0):
            return
        self._commits[nid] = commit_len
        tip_pos = commit_len - 1
        if tip_pos >= len(path):
            self.gaps += 1
            return
        tip = path[tip_pos]
        if tip is None or tip in self._marked:
            return
        cache = self._tree.cache(tip)
        marker = CCache(
            caller=0,
            time=cache.time,
            vrsn=cache.vrsn,
            conf=None,
            voters=frozenset({nid}),
        )
        tree, marker_cid = self._tree.insert_btw(tip, marker)
        self._marked.add(tip)
        # Extensions of a committed prefix must land *below* the marker:
        # attaching them as siblings would put a later commit of the
        # same branch off-branch from this one and fabricate violations.
        self._attach[tip] = marker_cid
        self._grew(tree, f"S{nid} committed through entry #{tip_pos}")

    # -- reporting -----------------------------------------------------

    @property
    def tree(self) -> CacheTree:
        """The current (hash-consed) cache tree."""
        return self._tree

    @property
    def ok(self) -> bool:
        return self.violation is None

    def stats(self) -> dict:
        return {
            "events": self.events,
            "entries": self.entries_added,
            "caches": len(self._tree),
            "commits": len(self._marked),
            "nodes": sorted(self._paths),
            "gaps": self.gaps,
            "ok": self.ok,
        }

    def violations(self) -> List[str]:
        """The first violation's descriptions (empty while clean)."""
        if self.violation is None:
            return []
        return self.violation.all_violations()
