"""Bounded, policy-driven management of the hash-consing caches.

PR 5 bought its model-checking speedup with three process-wide strong
tables -- the tree intern table, the cache intern table, and per-tree
memo scratch -- whose only bound was a blunt wipe-everything epoch
flush.  This module is the single knob for all of them, shaped after
the pydl8.5 tree-search cache (``CacheTrie``/``CacheHash`` with a
``maxcachesize`` bound and ``WipeType All/Subnodes/Recall`` wipe
strategies):

* ``wipe="all"`` -- clear the table at the cap (the old behaviour, now
  with provenance trimming so flushed ancestors actually die).
* ``wipe="subnodes"`` -- keep the trees still reachable from the
  model checker's working set (its in-RAM frontier window); evict the
  rest.
* ``wipe="recall"`` -- keep the trees most re-interned since the last
  flush (a cheap recall counter, pydl8.5's ``Recall``/``Reuses``).

The policy is process-global because the tables are: the model-checking
engines call :func:`bounded` around a run, and worker processes inherit
the configuration through ``fork``.

Eviction is always *sound*: these tables memoize pure functions of
immutable values (canonical instances, fingerprints, derived tables,
safety verdicts), so the worst case of any wipe is recomputation, never
a wrong answer.  Visited-state deduplication lives in
:class:`repro.mc.fpset.FingerprintSet`, which is never evicted -- see
DESIGN.md §16 for the full argument.

Typical use::

    from repro.core import cachemgr

    with cachemgr.bounded(tree_cap=1 << 16, wipe="recall"):
        result = explorer.run()
    print(cachemgr.stats())
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from . import cache as _cache
from . import safety as _safety  # noqa: F401  (registers the memo trimmer)
from . import tree as _tree

#: The wipe strategies understood by :func:`configure`.
WIPE_ALL = "all"
WIPE_SUBNODES = "subnodes"
WIPE_RECALL = "recall"

WIPE_POLICIES = (WIPE_ALL, WIPE_SUBNODES, WIPE_RECALL)


@dataclass(frozen=True)
class CachePolicy:
    """A complete cache-manager configuration.

    ``tree_cap``/``cache_cap`` bound the two intern tables;``wipe``
    selects the tree-table strategy (the cache table always wipes all:
    its members are tiny and its flushes must atomically invalidate the
    id-keyed entry-fingerprint memo anyway).
    """

    tree_cap: int = _tree._DEFAULT_INTERN_CAP
    cache_cap: int = _cache._DEFAULT_CACHE_CAP
    wipe: str = WIPE_ALL

    def __post_init__(self) -> None:
        if self.wipe not in WIPE_POLICIES:
            raise ValueError(f"unknown wipe policy {self.wipe!r}")
        if self.tree_cap < 1 or self.cache_cap < 1:
            raise ValueError("cache caps must be >= 1")


DEFAULT_POLICY = CachePolicy()


def configure(policy: CachePolicy) -> None:
    """Apply ``policy`` process-wide (takes effect at the next flush)."""
    _tree.configure_tree_cache(cap=policy.tree_cap, wipe=policy.wipe)
    _cache.configure_cache_intern(cap=policy.cache_cap)


def current_policy() -> CachePolicy:
    """The policy currently in force."""
    tree_cap, wipe = _tree.tree_cache_policy()
    return CachePolicy(tree_cap=tree_cap, cache_cap=_cache.cache_intern_policy(), wipe=wipe)


@contextmanager
def bounded(
    tree_cap: Optional[int] = None,
    cache_cap: Optional[int] = None,
    wipe: str = WIPE_ALL,
) -> Iterator[CachePolicy]:
    """Run a block under a bounded cache policy, then restore.

    ``None`` caps keep their current values.  On exit the previous
    policy is restored and the tables are flushed down to it, so a
    bounded run cannot leave an oversized table behind.
    """
    previous = current_policy()
    policy = CachePolicy(
        tree_cap=previous.tree_cap if tree_cap is None else tree_cap,
        cache_cap=previous.cache_cap if cache_cap is None else cache_cap,
        wipe=wipe,
    )
    configure(policy)
    try:
        yield policy
    finally:
        configure(previous)
        if len(_tree._INTERNED_TREES) > previous.tree_cap:
            _tree.flush_interned_trees()
        if len(_cache._INTERNED) > previous.cache_cap:
            _cache.flush_interned_caches()


def flush() -> None:
    """Force both intern tables through a policy flush now."""
    _tree.flush_interned_trees()
    _cache.flush_interned_caches()


def stats() -> Dict[str, Dict[str, int]]:
    """Flush/occupancy counters for both tables (plus the fp memo)."""
    return {
        "tree_interns": _tree.tree_cache_stats(),
        "cache_interns": _cache.cache_intern_stats(),
    }


def export_metrics(registry) -> None:
    """Publish the counters to a :class:`repro.obs.MetricsRegistry`.

    Gauges mirror the current occupancy; counters are set to the
    monotonic totals (call once at the end of a run, or periodically --
    gauge ``set`` is idempotent).
    """
    snapshot = stats()
    for table, values in snapshot.items():
        for key, value in values.items():
            registry.gauge(f"cachemgr.{table}.{key}").set(value)
