"""The Adore cache tree (Fig. 6 / Fig. 24 of the paper).

``CacheTree ≜ N_cid → N_cid * Cache``: a partial map from cache ids to the
id of the parent plus the cache itself.  The root occupies cid 0.  The two
growth operations are

* :meth:`CacheTree.add_leaf` -- add a new child under a parent (used by
  ``pull``, ``invoke`` and ``reconfig``), and
* :meth:`CacheTree.insert_btw` -- insert a new cache *between* a parent
  and its current children (used by ``push`` to place a CCache below the
  committed cache while keeping its partial-failure children viable).

Trees are immutable: both operations return a new tree.  This makes
states hashable, which the explicit-state model checker
(:mod:`repro.mc`) relies on, and makes scenario scripts trivially
re-playable.

The paper keeps the tree append-only -- committed methods are not moved
to a separate persistent log as in the ADO model; instead a cache is
*implicitly* committed when a CCache is among its descendants.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .cache import (
    Cache,
    Cid,
    NodeId,
    add_cache_flush_listener,
    intern_cache,
    is_ccache,
    is_committable,
    is_ecache,
    order_key,
)
from .errors import MalformedTree, UnknownCache
from .fingerprint import FP_MASK, fp128

ROOT_CID: Cid = 0


@dataclass(frozen=True)
class TreeEntry:
    """One slot of the cache tree: parent pointer plus the cache."""

    parent: Optional[Cid]
    cache: Cache


def _entry_fp(cid: Cid, parent: Optional[Cid], cache: Cache) -> int:
    """The multiset term one ``(cid, parent, cache)`` slot contributes.

    A tree's fingerprint is the sum of its entry terms mod 2**128
    (see :mod:`repro.core.fingerprint`), which is what lets
    :meth:`CacheTree.add_leaf` / :meth:`CacheTree.insert_btw` derive the
    successor's fingerprint from the parent's in O(changed entries).

    Memoized per ``(cid, parent, interned cache)``: the same few slots
    recur across millions of candidate successors.  The cache is
    interned first -- interned caches are immortal (strong intern
    table), so ``id(cache)`` is a stable memo key.
    """
    cache = intern_cache(cache)
    key = (cid, parent, id(cache))
    term = _ENTRY_FPS.get(key)
    if term is None:
        term = _ENTRY_FPS[key] = fp128(
            b"%d|%d|%s"
            % (cid, -1 if parent is None else parent, cache.fingerprint().to_bytes(16, "little"))
        )
    return term


_ENTRY_FPS: Dict[Tuple, int] = {}

# The table above keys on id(cache), which is stable only while the
# cache intern table keeps its members immortal.  A cache-table flush
# breaks that, so it must drop this memo in the same step -- before any
# recycled id can alias a dead cache's entry.
add_cache_flush_listener(_ENTRY_FPS.clear)


#: Per-process hash-consing table: tree fingerprint -> the one shared
#: instance.  Deliberately *strong*: the model checker generates each
#: distinct successor tree a dozen times on average, and with weak
#: values the discarded duplicates die before the next occurrence can
#: hit the table, defeating hash-consing exactly where it pays.  Bounded
#: by a policy-driven epoch flush (:func:`_flush_interned_trees`) so
#: pathological runs cannot grow it without limit -- a flush only costs
#: subsequent re-interning.  Configure via
#: :mod:`repro.core.cachemgr` / :func:`configure_tree_cache`.
_INTERNED_TREES: Dict[int, "CacheTree"] = {}

#: Default epoch-flush threshold for the tree intern table.
_DEFAULT_INTERN_CAP = 1 << 19

#: Current cap (mutable via :func:`configure_tree_cache`).
_INTERN_CAP = _DEFAULT_INTERN_CAP

#: Wipe strategy applied at the cap (the pydl8.5 ``WipeType`` shape):
#: ``"all"`` clears the table, ``"subnodes"`` keeps trees a pin provider
#: (typically: the explorer's in-RAM frontier) names as reachable, and
#: ``"recall"`` keeps the most re-interned trees since the last flush.
_WIPE = "all"

#: ``fp -> recall count`` since the last flush.  ``None`` unless the
#: ``"recall"`` policy is active, so the hot intern paths pay only a
#: global load + ``is not None`` when any other policy is selected.
_TREE_RECALLS: Optional[Dict[int, int]] = None

#: Callable yielding tree fingerprints the ``"subnodes"`` policy must
#: keep (set by the model-checking engines to their live frontier).
_PIN_PROVIDER: Optional[Callable[[], Iterable[int]]] = None

#: Callable that drops heavy derived scratch from a surviving tree's
#: memo at flush time (registered by :mod:`repro.core.safety`, which
#: owns the memo-key vocabulary).
_MEMO_TRIMMER: Optional[Callable[["CacheTree"], None]] = None

#: Effective flush trigger.  Normally ``_INTERN_CAP``; raised after a
#: flush whose survivors (pinned frontier trees can exceed the cap)
#: would otherwise re-trigger a flush on every insert.
_FLUSH_AT = _INTERN_CAP

#: Flush/occupancy counters, surfaced via repro.obs metrics by
#: :func:`repro.core.cachemgr.export_metrics`.
_TREE_STATS: Dict[str, int] = {"flushes": 0, "evicted": 0, "survivors": 0, "prov_trimmed": 0}


def _flush_interned_trees() -> None:
    """Apply the configured wipe policy to the tree intern table.

    Whatever the policy, every table member -- evicted *and* surviving
    -- has its ``"prov"`` memo entry dropped: provenance tuples hold a
    strong reference to the parent tree, so an untrimmed chain would
    pin every flushed ancestor of a live frontier tree in memory for
    the rest of the run (provenance only exists to give the incremental
    safety checker *one* valid derivation; new successors of live trees
    re-establish it immediately).
    """
    global _FLUSH_AT
    table = _INTERNED_TREES
    before = len(table)
    survivors: List["CacheTree"] = []
    if _WIPE == "subnodes" and _PIN_PROVIDER is not None:
        pinned = set(_PIN_PROVIDER())
        if pinned:
            survivors = [tree for fp, tree in table.items() if fp in pinned]
    elif _WIPE == "recall" and _TREE_RECALLS:
        recalls = _TREE_RECALLS
        keep = max(_INTERN_CAP // 2, 1)
        recalled = [fp for fp in recalls if fp in table]
        if len(recalled) > keep:
            recalled = heapq.nlargest(keep, recalled, key=recalls.__getitem__)
        survivors = [table[fp] for fp in recalled]
    trimmed = 0
    for tree in table.values():
        memo = tree._memo
        if memo is not None and memo.pop("prov", None) is not None:
            trimmed += 1
    # "recall" survivors are a heuristic bet that may never pay off, so
    # their heavy derived tables are dropped (rebuilt on demand).
    # "subnodes" survivors are the *live frontier* -- the engine expands
    # them next, so trimming would only force an immediate rebuild.
    trimmer = _MEMO_TRIMMER
    if trimmer is not None and _WIPE != "subnodes":
        for tree in survivors:
            trimmer(tree)
    table.clear()
    for tree in survivors:
        table[tree.fingerprint()] = tree
    if _TREE_RECALLS is not None:
        _TREE_RECALLS.clear()
    stats = _TREE_STATS
    stats["flushes"] += 1
    stats["evicted"] += before - len(table)
    stats["survivors"] = len(table)
    stats["prov_trimmed"] += trimmed
    # Survivors may legitimately exceed the cap (a pinned frontier wider
    # than the table bound); back off the trigger so the next flush
    # happens after a fresh quarter-epoch of growth, not on every insert.
    _FLUSH_AT = max(_INTERN_CAP, len(table) + max(_INTERN_CAP // 4, 1))


def _intern_tree(fp: int, tree: "CacheTree") -> "CacheTree":
    if len(_INTERNED_TREES) >= _FLUSH_AT:
        _flush_interned_trees()
    return _INTERNED_TREES.setdefault(fp, tree)


def configure_tree_cache(cap: Optional[int] = None, wipe: Optional[str] = None) -> None:
    """Set the tree intern table's bound and wipe policy.

    ``cap`` is the flush threshold (``None`` leaves it unchanged);
    ``wipe`` is ``"all"``, ``"subnodes"`` or ``"recall"``.  Prefer the
    :mod:`repro.core.cachemgr` facade, which configures both intern
    tables together and restores defaults on exit.
    """
    global _INTERN_CAP, _WIPE, _TREE_RECALLS, _FLUSH_AT
    if cap is not None:
        if cap < 1:
            raise ValueError(f"tree cache cap must be >= 1, got {cap}")
        _INTERN_CAP = cap
        _FLUSH_AT = cap
    if wipe is not None:
        if wipe not in ("all", "subnodes", "recall"):
            raise ValueError(f"unknown wipe policy {wipe!r}")
        _WIPE = wipe
        _TREE_RECALLS = {} if wipe == "recall" else None


def tree_cache_policy() -> Tuple[int, str]:
    """The current ``(cap, wipe)`` of the tree intern table."""
    return _INTERN_CAP, _WIPE


def tree_cache_stats() -> Dict[str, int]:
    """Flush/occupancy counters plus current table sizes."""
    stats = dict(_TREE_STATS)
    stats["occupancy"] = len(_INTERNED_TREES)
    stats["entry_fp_occupancy"] = len(_ENTRY_FPS)
    return stats


def set_tree_pin_provider(
    provider: Optional[Callable[[], Iterable[int]]],
) -> Optional[Callable[[], Iterable[int]]]:
    """Install the ``"subnodes"`` pin provider; returns the previous one.

    The provider is consulted only at flush time and must yield the
    fingerprints of trees that stay reachable from the caller's working
    set (the model checker passes its in-RAM frontier window).
    """
    global _PIN_PROVIDER
    previous = _PIN_PROVIDER
    _PIN_PROVIDER = provider
    return previous


def set_memo_trimmer(trimmer: Optional[Callable[["CacheTree"], None]]) -> None:
    """Install the survivor memo trimmer (see :data:`_MEMO_TRIMMER`)."""
    global _MEMO_TRIMMER
    _MEMO_TRIMMER = trimmer


def flush_interned_trees() -> None:
    """Force an epoch flush now (tests and the cachemgr facade)."""
    _flush_interned_trees()


class CacheTree:
    """An immutable cache tree.

    Construct the initial tree with :meth:`initial`, then grow it with
    :meth:`add_leaf` / :meth:`insert_btw`.  All query methods treat the
    tree as the paper does: a set of caches with ancestor structure.
    """

    __slots__ = ("_entries", "_children", "_fp", "_items", "_memo", "__weakref__")

    def __init__(self, entries: Dict[Cid, TreeEntry], _fp: Optional[int] = None) -> None:
        held = dict(entries)
        # The growth operations (add_leaf / insert_btw) always produce
        # dicts already in ascending-cid insertion order, so the sort
        # is needed only for directly constructed trees.
        cids = list(held)
        if any(a >= b for a, b in zip(cids, cids[1:])):
            held = dict(sorted(held.items()))
        self._entries: Dict[Cid, TreeEntry] = held
        self._items: Tuple[Tuple[Cid, Cache], ...] = tuple(
            (cid, entry.cache) for cid, entry in held.items()
        )
        # The child map is built on first use (_child_map): push-free
        # expansion paths never ask for it.
        self._children: Optional[Dict[Cid, Tuple[Cid, ...]]] = None
        self._fp: Optional[int] = _fp
        self._memo: Optional[Dict] = None

    def _child_map(self) -> Dict[Cid, Tuple[Cid, ...]]:
        children = self._children
        if children is None:
            children = {cid: () for cid in self._entries}
            for cid, entry in self._entries.items():
                # Tolerate dangling parents here so deliberately
                # malformed trees can still be constructed and then
                # *diagnosed* by well_formedness_violations().
                if entry.parent is not None and entry.parent in children:
                    children[entry.parent] = children[entry.parent] + (cid,)
            self._children = children
        return children

    @classmethod
    def _shared(cls, entries: Dict[Cid, TreeEntry], fp: int) -> "CacheTree":
        """The interned tree for ``entries`` (hash-consing).

        Successor states produced by the growth operations route through
        here, so structurally-equal trees are reference-equal within a
        process and the per-tree derived tables (:meth:`node_tables`,
        the ``r2``/``r3`` memos in :mod:`repro.core.aux`) are computed
        once per *distinct* tree instead of once per path reaching it.
        """
        tree = _INTERNED_TREES.get(fp)
        if tree is None:
            tree = _intern_tree(fp, cls(entries, _fp=fp))
        elif _TREE_RECALLS is not None:
            _TREE_RECALLS[fp] = _TREE_RECALLS.get(fp, 0) + 1
        return tree

    def fingerprint(self) -> int:
        """The 128-bit structural fingerprint of this tree.

        Order-insensitive multiset combine of the entry terms, so it
        never depends on dict insertion order; maintained incrementally
        by the growth operations and computed from scratch only for
        directly constructed trees.
        """
        fp = self._fp
        if fp is None:
            fp = 0
            for cid, entry in self._entries.items():
                fp = (fp + _entry_fp(cid, entry.parent, entry.cache)) & FP_MASK
            self._fp = fp
        return fp

    def memo(self) -> Dict:
        """This tree's scratch memo-dict for derived, pure-function data.

        Shared by every holder of the interned instance; values must
        depend only on the tree itself.
        """
        memo = self._memo
        if memo is None:
            memo = self._memo = {}
        return memo

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def initial(cls, root_cache: Cache) -> "CacheTree":
        """A tree holding only ``root_cache`` at :data:`ROOT_CID`."""
        return cls({ROOT_CID: TreeEntry(None, root_cache)})

    def fresh_cid(self) -> Cid:
        """The next unused cache id (``max + 1``, Fig. 26)."""
        return self._items[-1][0] + 1 if self._items else ROOT_CID

    def add_leaf(self, parent: Cid, cache: Cache) -> Tuple["CacheTree", Cid]:
        """Add ``cache`` as a new leaf child of ``parent``.

        Returns the new tree and the cid assigned to the new cache.
        """
        self._require(parent)
        cache = intern_cache(cache)
        cid = self.fresh_cid()
        fp = (self.fingerprint() + _entry_fp(cid, parent, cache)) & FP_MASK
        # Fingerprint-first: when the successor tree is already interned
        # (most candidate successors the model checker generates are),
        # return it without materializing the new entries dict at all.
        tree = _INTERNED_TREES.get(fp)
        if tree is None:
            entries = dict(self._entries)
            entries[cid] = TreeEntry(parent, cache)
            tree = CacheTree._shared(entries, fp)
            # Record how this tree was derived: the incremental safety
            # checker uses any one valid derivation (the report is a
            # pure function of the tree, so which one is irrelevant).
            tree.memo().setdefault("prov", (self, "leaf", cid, parent))
        elif _TREE_RECALLS is not None:
            _TREE_RECALLS[fp] = _TREE_RECALLS.get(fp, 0) + 1
        return tree, cid

    def insert_btw(self, parent: Cid, cache: Cache) -> Tuple["CacheTree", Cid]:
        """Insert ``cache`` between ``parent`` and its current children.

        Every existing child of ``parent`` is re-parented onto the new
        cache (Fig. 26, ``insertBtw``).  Used by ``push``: children of a
        committed cache represent partial failures that must remain
        candidates for later commits, so they are shifted below the new
        CCache rather than discarded.
        """
        self._require(parent)
        cache = intern_cache(cache)
        cid = self.fresh_cid()
        fp = self.fingerprint()
        children = self._child_map()
        for child in children[parent]:
            child_cache = self._entries[child].cache
            fp = (
                fp - _entry_fp(child, parent, child_cache) + _entry_fp(child, cid, child_cache)
            ) & FP_MASK
        fp = (fp + _entry_fp(cid, parent, cache)) & FP_MASK
        tree = _INTERNED_TREES.get(fp)
        if tree is None:
            entries = dict(self._entries)
            for child in children[parent]:
                entries[child] = TreeEntry(cid, entries[child].cache)
            entries[cid] = TreeEntry(parent, cache)
            tree = CacheTree._shared(entries, fp)
            tree.memo().setdefault("prov", (self, "btw", cid, parent))
        elif _TREE_RECALLS is not None:
            _TREE_RECALLS[fp] = _TREE_RECALLS.get(fp, 0) + 1
        return tree, cid

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def _require(self, cid: Cid) -> TreeEntry:
        try:
            return self._entries[cid]
        except KeyError:
            raise UnknownCache(f"cache id {cid} not in tree") from None

    def __contains__(self, cid: Cid) -> bool:
        return cid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def cids(self) -> Iterator[Cid]:
        """All cache ids, in insertion (= cid) order."""
        return (cid for cid, _ in self._items)

    def cache(self, cid: Cid) -> Cache:
        """The cache stored at ``cid``."""
        try:
            return self._entries[cid].cache
        except KeyError:
            raise UnknownCache(f"cache id {cid} not in tree") from None

    def parent(self, cid: Cid) -> Optional[Cid]:
        """The parent cid of ``cid`` (``None`` for the root)."""
        return self._require(cid).parent

    def children(self, cid: Cid) -> Tuple[Cid, ...]:
        """The direct children of ``cid``, in cid order."""
        self._require(cid)
        return self._child_map()[cid]

    def items(self) -> Iterator[Tuple[Cid, Cache]]:
        """``(cid, cache)`` pairs in cid order."""
        return iter(self._items)

    def parent_items(self) -> Iterator[Tuple[Cid, Optional[Cid], Cache]]:
        """``(cid, parent, cache)`` triples in cid order.

        The per-node safety checkers walk every node together with its
        parent; this saves them a lookup round-trip per node.
        """
        entries = self._entries
        return ((cid, entries[cid].parent, cache) for cid, cache in self._items)

    def leaves(self) -> List[Cid]:
        """Cids with no children."""
        children = self._child_map()
        return [cid for cid, _ in self._items if not children[cid]]

    # ------------------------------------------------------------------
    # Ancestry
    # ------------------------------------------------------------------

    def _branch_of(self, cid: Cid) -> Tuple[Cid, ...]:
        """The root-to-``cid`` path as a memoized tuple.

        Every ancestry query (:meth:`ancestors`, :meth:`branch`,
        :meth:`is_ancestor`, :meth:`path_between`) reduces to this
        table; the safety checkers issue them by the million against the
        same interned tree.  Parent chains are walked exactly as the
        un-memoized code did (a dangling parent still raises
        ``KeyError``; the walk is bounded so a cyclic parent chain
        cannot hang it).
        """
        memo = self._memo
        if memo is None:
            memo = self._memo = {}
        table = memo.get("branches")
        if table is None:
            table = memo["branches"] = {}
        got = table.get(cid)
        if got is None:
            chain: List[Cid] = []
            current: Optional[Cid] = cid
            bound = len(self._entries) + 1
            while current is not None and current not in table and bound > 0:
                chain.append(current)
                current = self._entries[current].parent
                bound -= 1
            base: Tuple[Cid, ...] = table.get(current, ()) if current is not None else ()
            for link in reversed(chain):
                base = base + (link,)
                table[link] = base
            got = table[cid]
        return got

    def ancestors(self, cid: Cid, include_self: bool = False) -> List[Cid]:
        """Ancestors of ``cid`` from its parent up to the root.

        With ``include_self`` the list starts at ``cid`` itself.
        """
        self._require(cid)
        branch = self._branch_of(cid)
        if not include_self:
            branch = branch[:-1]
        return list(reversed(branch))

    def branch(self, cid: Cid) -> List[Cid]:
        """The root-to-``cid`` path, inclusive on both ends."""
        self._require(cid)
        return list(self._branch_of(cid))

    def is_ancestor(self, anc: Cid, desc: Cid, strict: bool = True) -> bool:
        """True iff ``anc`` is an ancestor of ``desc``.

        ``strict=False`` additionally accepts ``anc == desc``.
        """
        self._require(anc)
        if anc == desc:
            return not strict
        return anc in self._branch_of(desc)

    def same_branch(self, a: Cid, b: Cid) -> bool:
        """True iff one of ``a``/``b`` is an ancestor-or-self of the other."""
        return self.is_ancestor(a, b, strict=False) or self.is_ancestor(b, a, strict=False)

    def nearest_common_ancestor(self, a: Cid, b: Cid) -> Cid:
        """The nearest common ancestor of ``a`` and ``b`` (possibly one of them)."""
        self._require(a)
        self._require(b)
        # Root-to-node paths share exactly their common prefix; the NCA
        # is the last element of it.
        nca: Optional[Cid] = None
        for x, y in zip(self._branch_of(a), self._branch_of(b)):
            if x != y:
                break
            nca = x
        if nca is None:
            raise MalformedTree(f"no common ancestor of {a} and {b}")
        return nca

    def path_between(self, a: Cid, b: Cid) -> List[Cid]:
        """The path from ``a`` to ``b`` through their nearest common
        ancestor, *excluding* both endpoints (used by ``rdist``).
        """
        nca = self.nearest_common_ancestor(a, b)
        up_a = self.ancestors(a, include_self=True)
        up_b = self.ancestors(b, include_self=True)
        leg_a = up_a[: up_a.index(nca) + 1]
        leg_b = up_b[: up_b.index(nca) + 1]
        # a .. nca plus reversed nca .. b, dropping the duplicate nca.
        path = leg_a + list(reversed(leg_b[:-1]))
        return [cid for cid in path if cid not in (a, b)]

    def descendants(self, cid: Cid, include_self: bool = False) -> List[Cid]:
        """All descendants of ``cid`` (pre-order; memoized per tree)."""
        self._require(cid)
        memo = self.memo().setdefault("descendants", {})
        got = memo.get(cid)
        if got is None:
            out: List[Cid] = []
            children = self._child_map()
            stack = list(reversed(children[cid]))
            while stack:
                current = stack.pop()
                out.append(current)
                stack.extend(reversed(children[current]))
            got = memo[cid] = tuple(out)
        return [cid, *got] if include_self else list(got)

    def subtree_cids(self, cid: Cid) -> FrozenSet[Cid]:
        """The set of cids rooted at ``cid`` (inclusive)."""
        return frozenset(self.descendants(cid, include_self=True))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Cache], bool]) -> List[Cid]:
        """Cids whose caches satisfy ``predicate``, in cid order."""
        return [cid for cid, cache in self.items() if predicate(cache)]

    def max_cache(self, cids: Iterable[Cid]) -> Optional[Cid]:
        """The cid whose cache is greatest under the order ``>``.

        Ties on the order key are broken by the larger cid (the cache
        added later), which makes scenario replays deterministic.
        Returns ``None`` for an empty selection.
        """
        best: Optional[Cid] = None
        for cid in cids:
            cache = self.cache(cid)
            if best is None:
                best = cid
                continue
            best_cache = self.cache(best)
            if (order_key(cache), cid) > (order_key(best_cache), best):
                best = cid
        return best

    def node_tables(
        self,
    ) -> Tuple[
        Dict[NodeId, Tuple[Tuple, Cid]],
        Dict[NodeId, Tuple[Tuple, Cid]],
        Dict[NodeId, Tuple[Tuple, Cid]],
    ]:
        """Per-node greatest-cache tables, computed once per tree.

        Returns ``(observed, active, committed)``: for each node id, the
        ``((order_key, cid))`` of the greatest cache the node observes /
        the greatest non-root cache it called / the greatest CCache it
        supports.  One pass over the tree replaces the per-query scans
        that dominated :func:`repro.core.aux.most_recent`,
        :func:`~repro.core.aux.active_cache` and
        :func:`~repro.core.aux.last_commit` -- the successor generator
        issues dozens of those queries per state against the same tree.
        Max keys include the cid, preserving :meth:`max_cache`'s
        larger-cid tie-break exactly.
        """
        memo = self._memo
        if memo is None:
            memo = self._memo = {}
        tables = memo.get("node_tables")
        if tables is None:
            observed: Dict[NodeId, Tuple[Tuple, Cid]] = {}
            active: Dict[NodeId, Tuple[Tuple, Cid]] = {}
            committed: Dict[NodeId, Tuple[Tuple, Cid]] = {}
            for cid, cache in self._items:
                okey = (order_key(cache), cid)
                for nid in cache.observers:
                    cur = observed.get(nid)
                    if cur is None or okey > cur:
                        observed[nid] = okey
                if cid != ROOT_CID:
                    nid = cache.caller
                    cur = active.get(nid)
                    if cur is None or okey > cur:
                        active[nid] = okey
                if is_ccache(cache):
                    for nid in cache.supporters:
                        cur = committed.get(nid)
                        if cur is None or okey > cur:
                            committed[nid] = okey
            tables = memo["node_tables"] = (observed, active, committed)
        return tables

    def _kind_lists(self) -> Dict[str, List[Cid]]:
        """Cids partitioned by cache kind, one pass, memoized per tree.

        The safety checkers select by kind several times per tree; this
        replaces repeated full scans with a single partition.
        """
        memo = self._memo
        if memo is None:
            memo = self._memo = {}
        kinds = memo.get("kinds")
        if kinds is None:
            kinds = {}
            for cid, cache in self._items:
                kinds.setdefault(cache.kind, []).append(cid)
            memo["kinds"] = kinds
        return kinds

    def kind_cids(self, kind: str) -> Sequence[Cid]:
        """The cids of ``kind`` (``"E"``/``"M"``/``"R"``/``"C"``) in cid
        order, without the defensive copy of :meth:`ccaches` and
        friends.  Callers must not mutate the result; the safety
        checkers iterate these once per distinct tree."""
        return self._kind_lists().get(kind, ())

    def ccaches(self) -> List[Cid]:
        """All commit caches, in cid order."""
        return list(self._kind_lists().get("C", ()))

    def rcaches(self) -> List[Cid]:
        """All reconfiguration caches, in cid order."""
        return list(self._kind_lists().get("R", ()))

    def ecaches(self) -> List[Cid]:
        """All election caches, in cid order."""
        return list(self._kind_lists().get("E", ()))

    # ------------------------------------------------------------------
    # Well-formedness (the paper's 2.3k lines of generic tree invariants)
    # ------------------------------------------------------------------

    def well_formedness_violations(self) -> List[str]:
        """Check the structural invariants of a legal cache tree.

        Returns a list of human-readable violation descriptions (empty
        when well formed).  Mirrors the generic invariants the Coq
        development proves about the tree data structure: single root at
        cid 0, parents present, acyclicity, ECaches have version 0, and
        every CCache sits directly below a committable cache with the
        same timestamp and version.
        """
        problems: List[str] = []
        entries = self._entries
        if ROOT_CID not in entries:
            return [f"root cid {ROOT_CID} missing"]
        if entries[ROOT_CID].parent is not None:
            problems.append("root has a parent")
        for cid, _ in self._items:
            if cid == ROOT_CID:
                continue
            parent = entries[cid].parent
            if parent is None:
                problems.append(f"cache {cid} is a second root")
            elif parent not in entries:
                problems.append(f"cache {cid} has unknown parent {parent}")
        # Acyclicity: walk each parent chain with a step bound.  Chains
        # that terminate (at the root, or at a dangling parent reported
        # above) are remembered so shared suffixes are walked once.
        bound = len(self._entries)
        terminating: set = set()
        for cid in self._entries:
            current: Optional[Cid] = cid
            chain: List[Cid] = []
            for _ in range(bound + 1):
                if current is None or current in terminating:
                    terminating.update(chain)
                    break
                entry = self._entries.get(current)
                if entry is None:
                    terminating.update(chain)
                    break
                chain.append(current)
                current = entry.parent
            else:
                problems.append(f"cycle reachable from cache {cid}")
        for cid, cache in self._items:
            entry = entries[cid]
            if is_ecache(cache) and cache.vrsn != 0:
                problems.append(f"ECache {cid} has nonzero version {cache.vrsn}")
            if is_ccache(cache) and entry.parent is not None:
                parent_cache = entries[entry.parent].cache
                if not is_committable(parent_cache):
                    problems.append(
                        f"CCache {cid} parent is a {parent_cache.kind}Cache, "
                        "expected MCache or RCache"
                    )
                elif (parent_cache.time, parent_cache.vrsn) != (cache.time, cache.vrsn):
                    problems.append(
                        f"CCache {cid} time/vrsn {(cache.time, cache.vrsn)} differ "
                        f"from parent's {(parent_cache.time, parent_cache.vrsn)}"
                    )
        return problems

    def is_well_formed(self) -> bool:
        """True iff :meth:`well_formedness_violations` finds nothing."""
        return not self.well_formedness_violations()

    # ------------------------------------------------------------------
    # Equality / hashing / rendering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CacheTree):
            return NotImplemented
        if self.fingerprint() != other.fingerprint():
            return False
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __reduce__(self):
        # Trees carry caches (weak-referenceable, memoized) and derived
        # tables; ship only the entries and re-intern on the other side
        # so unpickled trees rejoin that process's hash-consing table.
        # The fingerprint rides along so the reader can resolve an
        # intern hit without reconstructing anything -- the spill
        # files' hot path (a frontier entry is typically reloaded
        # while its tree is still interned).
        return (_restore_tree, (self._entries, self.fingerprint()))

    def __repr__(self) -> str:
        return f"CacheTree({len(self._entries)} caches)"

    def render(self) -> str:
        """ASCII rendering of the tree, one cache per line."""
        lines: List[str] = []

        def walk(cid: Cid, depth: int) -> None:
            cache = self._entries[cid].cache
            prefix = "  " * depth + ("- " if depth else "")
            lines.append(f"{prefix}[{cid}] {cache.describe()}")
            for child in self._child_map()[cid]:
                walk(child, depth + 1)

        walk(ROOT_CID, 0)
        return "\n".join(lines)


def _restore_tree(
    entries: Dict[Cid, TreeEntry], fp: Optional[int] = None
) -> CacheTree:
    """Unpickle hook: rebuild and re-intern a tree in this process.

    ``fp`` (the pickled tree's own fingerprint -- a pure function of
    ``entries``) lets an intern hit return without building a tree at
    all.  Pre-spill pickles omit it; they pay the recompute.
    """
    if fp is not None:
        tree = _INTERNED_TREES.get(fp)
        if tree is not None:
            if _TREE_RECALLS is not None:
                _TREE_RECALLS[fp] = _TREE_RECALLS.get(fp, 0) + 1
            return tree
        return _intern_tree(fp, CacheTree(entries, _fp=fp))
    tree = CacheTree(entries)
    return _intern_tree(tree.fingerprint(), tree)


def forget_tree(tree: CacheTree) -> None:
    """Drop ``tree`` from the process-wide intern table.

    The table holds *strong* references (see :data:`_INTERNED_TREES`),
    which is right for the model checker -- every distinct tree recurs
    -- but wrong for a long-lived incremental consumer that grows one
    tree forever and never revisits predecessors: each superseded tree
    would stay pinned until an epoch flush.  Forgetting is always safe:
    the worst case is that an equal tree is re-built and re-interned
    later, losing only its memo scratch.
    """
    got = _INTERNED_TREES.get(tree.fingerprint())
    if got is tree:
        del _INTERNED_TREES[tree.fingerprint()]
