"""The monitor process: trace streams in, safety verdicts out.

One asyncio TCP server accepts two kinds of connections on the same
port, distinguished by their first frame:

* **Nodes** send :class:`~repro.net.wire.MonitorHello` and then a
  stream of :class:`~repro.net.wire.TraceBatch` frames (the node side
  is fire-and-forget; nothing is ever written back).
* **Probes** (tests, :class:`~repro.net.procs.LocalCluster`, the demo)
  send :class:`~repro.net.wire.MonitorStatusRequest` and read one
  :class:`~repro.net.wire.MonitorStatusResponse` carrying the engine
  counters and any violation.

Every received event is appended to an in-memory journal (the future
bundle's trace); ``log_advance`` events additionally feed
:meth:`IncrementalTreeChecker.observe`.  On the first violation the
monitor writes a replayable bundle naming the offending event and
keeps serving status (checking stops, journaling continues), so a CI
job can poll, assert, and collect the artifact.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.safety import IncrementalTreeChecker
from ..net.node import read_frame
from ..net.wire import (
    MonitorHello,
    MonitorStatusRequest,
    MonitorStatusResponse,
    ProtocolError,
    TraceBatch,
    _unpack_entry,
    decode_message,
    encode_frame,
)
from .bundle import write_monitor_bundle

log = logging.getLogger("repro.monitor")

#: Journal cap: a soak's detail events beyond this are dropped oldest-
#: first (counted), but the engine's verdict is unaffected -- it folds
#: events as they arrive, not from the journal.
MAX_JOURNAL_EVENTS = 500_000


@dataclass
class MonitorConfig:
    """Everything the monitor process needs."""

    host: str
    port: int
    #: The cluster's initial configuration (the engine's root CCache).
    conf0: frozenset
    #: All node ids that may stream (defaults to ``conf0``).
    nodes: Optional[frozenset] = None
    #: Where to write the violation bundle (None: no bundle).
    bundle_dir: Optional[str] = None
    lemma_rdist_bound: Optional[int] = 1


@dataclass
class _Verdict:
    """The first violation, frozen at detection time."""

    event_index: int
    event: Dict
    described: str
    violations: List[str]
    bundle: Optional[str] = None


class Monitor:
    """The incremental safety monitor behind one listening socket."""

    def __init__(self, config: MonitorConfig) -> None:
        self.config = config
        nodes = config.nodes if config.nodes is not None else config.conf0
        self.engine = IncrementalTreeChecker(
            frozenset(config.conf0),
            nodes=frozenset(nodes),
            lemma_rdist_bound=config.lemma_rdist_bound,
        )
        #: Arrival-ordered journal of every received event dict.
        self.journal: List[Dict] = []
        self.journal_dropped = 0
        self.nodes_seen: set = set()
        self.verdict: Optional[_Verdict] = None
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()

    # -- event path ----------------------------------------------------

    def on_event(self, nid: int, event: Dict) -> None:
        """Fold one arrived trace event (already a plain JSON dict)."""
        if len(self.journal) >= MAX_JOURNAL_EVENTS:
            self.journal_dropped += 1
        else:
            self.journal.append(event)
        index = len(self.journal) - 1
        if event.get("kind") != "log_advance":
            return
        # The event's own "node" stamp is authoritative (and what
        # replay uses); the batch nid is only a fallback.
        report = _observe(self.engine, event.get("node", nid), event)
        if report is not None and self.verdict is None:
            self.verdict = _Verdict(
                event_index=index,
                event=event,
                described=self.engine.violation_event or "",
                violations=report.all_violations(),
            )
            for line in self.verdict.violations:
                log.error("VIOLATION %s", line)
            log.error(
                "VIOLATION detected at event #%d: %s",
                index, self.verdict.described,
            )
            if self.config.bundle_dir:
                self.verdict.bundle = write_monitor_bundle(
                    self.config.bundle_dir,
                    conf0=self.config.conf0,
                    nodes=sorted(
                        self.config.nodes
                        if self.config.nodes is not None
                        else self.config.conf0
                    ),
                    journal=self.journal,
                    event_index=index,
                    described=self.verdict.described,
                    violations=self.verdict.violations,
                )
                log.error("bundle written to %s", self.verdict.bundle)

    def status(self) -> MonitorStatusResponse:
        stats = self.engine.stats()
        verdict = self.verdict
        return MonitorStatusResponse(
            ok=verdict is None,
            events=stats["events"],
            entries=stats["entries"],
            caches=stats["caches"],
            commits=stats["commits"],
            gaps=stats["gaps"],
            nodes=tuple(sorted(self.nodes_seen)),
            violations=tuple(verdict.violations) if verdict else (),
            bundle=verdict.bundle if verdict else None,
        )

    # -- transport -----------------------------------------------------

    async def start(self) -> None:
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        log.info(
            "monitor listening on %s:%d (conf0=%s)",
            self.config.host, self.config.port, sorted(self.config.conf0),
        )

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopping.wait()
        await self.close()

    def stop(self) -> None:
        self._stopping.set()

    async def close(self) -> None:
        self._stopping.set()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        nid: Optional[int] = None
        try:
            while True:
                payload = await read_frame(reader)
                try:
                    msg = decode_message(payload)
                except ProtocolError as exc:
                    log.warning("dropping connection: %s", exc)
                    return
                if isinstance(msg, MonitorHello):
                    nid = msg.nid
                    self.nodes_seen.add(nid)
                    log.info("S%d connected", nid)
                elif isinstance(msg, TraceBatch):
                    self.nodes_seen.add(msg.nid)
                    for event in msg.events:
                        self.on_event(msg.nid, event)
                elif isinstance(msg, MonitorStatusRequest):
                    writer.write(encode_frame(self.status()))
                    await writer.drain()
                else:
                    log.warning("unexpected %s frame", type(msg).__name__)
                    return
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            if nid is not None:
                log.info("S%d disconnected", nid)
            writer.close()


def _observe(engine: IncrementalTreeChecker, nid: int, event: Dict):
    """Feed one ``log_advance`` event dict into the engine.

    Shared by the live path and bundle replay so both fold events
    identically.  Malformed entries are a stream bug, not a safety
    violation -- count them as gaps rather than crash the monitor.
    """
    try:
        entries = [_unpack_entry(raw) for raw in event.get("entries", [])]
        anchor_raw = event.get("anchor")
        anchor = _unpack_entry(anchor_raw) if anchor_raw is not None else None
        base = event["base"]
        commit_len = event["commit"]
    except (ProtocolError, KeyError, TypeError):
        engine.gaps += 1
        return None
    return engine.observe(
        nid, base, entries, commit_len, anchor_entry=anchor
    )


# ----------------------------------------------------------------------
# Blocking status probe (for tests, procs, the demo)
# ----------------------------------------------------------------------


def monitor_status(
    host: str, port: int, timeout_s: float = 5.0
) -> Optional[MonitorStatusResponse]:
    """One blocking status round-trip; None if the monitor is down."""
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            sock.sendall(encode_frame(MonitorStatusRequest()))
            header = _recv_exact(sock, 4)
            length = struct.unpack(">I", header)[0]
            reply = decode_message(_recv_exact(sock, length))
    except (OSError, ProtocolError):
        return None
    return reply if isinstance(reply, MonitorStatusResponse) else None


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("monitor closed the connection")
        buf += chunk
    return buf


async def _run(monitor: Monitor) -> None:
    loop = asyncio.get_running_loop()
    import signal

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, monitor.stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await monitor.serve_forever()


def run_monitor(config: MonitorConfig) -> Monitor:
    """Run a monitor until SIGTERM/SIGINT; returns it (for its final
    verdict) after shutdown."""
    monitor = Monitor(config)
    asyncio.run(_run(monitor))
    return monitor
