"""Replayable monitor bundles.

Same shape as the nemesis bundles of :mod:`repro.obs.bundle` (a
directory with ``manifest.json`` + ``trace.jsonl``) but with
``"kind": "monitor"`` and a different replay contract: instead of
re-running a seeded simulation, :func:`replay_bundle` re-feeds the
journaled trace through a **fresh** :class:`IncrementalTreeChecker`
and re-derives the verdict; :func:`verdict_matches` asserts the replay
reaches the same violations at the same offending event.  That makes a
live detection auditable offline: the bundle alone decides whether the
monitor cried wolf.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..core.safety import IncrementalTreeChecker
from ..obs.bundle import BUNDLE_VERSION, MANIFEST_FILE, TRACE_FILE

MONITOR_BUNDLE_KIND = "monitor"


def write_monitor_bundle(
    directory: str,
    conf0,
    nodes,
    journal: List[Dict],
    event_index: int,
    described: str,
    violations: List[str],
) -> str:
    """Write the journal and verdict under ``directory``; returns the
    bundle path (a timestamp-free name: one bundle per monitor run)."""
    path = os.path.join(directory, "monitor-violation")
    os.makedirs(path, exist_ok=True)
    manifest = {
        "version": BUNDLE_VERSION,
        "kind": MONITOR_BUNDLE_KIND,
        "conf0": sorted(conf0),
        "nodes": sorted(nodes),
        "event_count": len(journal),
        "violation": {
            "event_index": event_index,
            "event": journal[event_index] if 0 <= event_index < len(journal)
            else None,
            "described": described,
            "violations": list(violations),
        },
    }
    with open(os.path.join(path, MANIFEST_FILE), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    with open(os.path.join(path, TRACE_FILE), "w") as handle:
        for event in journal:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return path


def load_monitor_bundle(path: str) -> Tuple[Dict, List[Dict]]:
    """The manifest and the journaled events of a monitor bundle."""
    with open(os.path.join(path, MANIFEST_FILE)) as handle:
        manifest = json.load(handle)
    if manifest.get("kind") != MONITOR_BUNDLE_KIND:
        raise ValueError(
            f"not a monitor bundle: kind={manifest.get('kind')!r}"
        )
    journal: List[Dict] = []
    with open(os.path.join(path, TRACE_FILE)) as handle:
        for line in handle:
            line = line.strip()
            if line:
                journal.append(json.loads(line))
    return manifest, journal


def replay_bundle(path: str):
    """Re-derive the verdict by folding the journal through a fresh
    engine; returns ``(engine, replayed_verdict_or_None)`` where the
    verdict is ``{"event_index", "violations"}``."""
    from .service import _observe  # shared event-folding, no cycle at import

    manifest, journal = load_monitor_bundle(path)
    engine = IncrementalTreeChecker(
        frozenset(manifest["conf0"]),
        nodes=frozenset(manifest["nodes"]),
    )
    verdict: Optional[Dict] = None
    for index, event in enumerate(journal):
        if event.get("kind") != "log_advance":
            continue
        report = _observe(engine, event.get("node"), event)
        if report is not None and verdict is None:
            verdict = {
                "event_index": index,
                "violations": report.all_violations(),
            }
    return engine, verdict


def verdict_matches(path: str) -> bool:
    """Does replaying the bundle reproduce the recorded verdict?"""
    manifest, _ = load_monitor_bundle(path)
    recorded = manifest["violation"]
    _, replayed = replay_bundle(path)
    if replayed is None:
        return False
    return (
        replayed["event_index"] == recorded["event_index"]
        and replayed["violations"] == recorded["violations"]
    )
