"""``python -m repro.monitor`` -- run or audit the safety monitor.

Subcommands:

* ``serve`` -- listen for node trace streams and check them live (what
  :class:`repro.net.procs.LocalCluster` spawns with ``monitor=True``).
  Exits 1 if a violation was detected by shutdown time, so a wrapper
  script can gate on the verdict.
* ``check`` -- replay a written bundle offline and verify the recorded
  verdict reproduces (:func:`verdict_matches`).  Exit 0 means the
  bundle's violation is real and replayable.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List

from .bundle import replay_bundle, verdict_matches
from .service import MonitorConfig, run_monitor


def _parse_conf(spec: str) -> frozenset:
    return frozenset(int(part) for part in spec.split(",") if part.strip())


def _cmd_serve(args: argparse.Namespace) -> int:
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stdout,
    )
    monitor = run_monitor(MonitorConfig(
        host=args.host,
        port=args.port,
        conf0=_parse_conf(args.conf),
        nodes=_parse_conf(args.nodes) if args.nodes else None,
        bundle_dir=args.bundle_dir,
    ))
    stats = monitor.engine.stats()
    print(f"monitor: {stats}")
    if monitor.verdict is not None:
        print(
            f"monitor: VIOLATION at event #{monitor.verdict.event_index}: "
            f"{monitor.verdict.described}"
        )
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    engine, verdict = replay_bundle(args.bundle)
    if verdict is None:
        print("check: replay found no violation", file=sys.stderr)
        return 1
    print(
        f"check: replay reproduces a violation at event "
        f"#{verdict['event_index']}"
    )
    for line in verdict["violations"]:
        print(f"  {line}")
    if not verdict_matches(args.bundle):
        print("check: replayed verdict DIFFERS from the recorded one",
              file=sys.stderr)
        return 1
    print("check: verdict matches the bundle manifest")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.monitor")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the live safety monitor")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, required=True)
    serve.add_argument("--conf", required=True, help="e.g. 1,2,3")
    serve.add_argument(
        "--nodes", default=None,
        help="all node ids that may stream (default: --conf)",
    )
    serve.add_argument(
        "--bundle-dir", default=None,
        help="write the violation bundle under this directory",
    )
    serve.add_argument("--verbose", action="store_true")
    serve.set_defaults(func=_cmd_serve)

    check = sub.add_parser("check", help="replay and audit a bundle")
    check.add_argument("bundle", help="path to a monitor bundle directory")
    check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
