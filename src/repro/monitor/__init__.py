"""Always-on runtime verification for the live TCP cluster.

The model checker proves the Appendix-B invariants over every
reachable state of the *spec*; the nemesis checks them post-hoc over
*simulated* runs.  This package closes the remaining gap -- the real
:mod:`repro.net` cluster -- in the style of Derecho's specification
and runtime checking (arXiv 2305.12040): each node streams its
:mod:`repro.obs` trace events to a monitor process over the existing
wire framing, and the monitor folds every ``log_advance`` into the
shared :class:`repro.core.safety.IncrementalTreeChecker` -- the same
engine the model checker and the simulator's ``check_safety`` consume.
A violation is therefore flagged seconds after the offending append or
commit, naming the event that caused it, and a replayable bundle is
written so the verdict can be re-derived offline.

Ordering: the monitor never compares ``t_ms`` across nodes (each is a
private monotonic clock); events are folded in arrival order, with
per-node Lamport stamps preserving each node's local order.  The
invariants it maintains are prefix-closed properties of the observed
logs, so any interleaving of per-node-ordered streams reaches the same
verdict.
"""

from .bundle import (
    MONITOR_BUNDLE_KIND,
    load_monitor_bundle,
    replay_bundle,
    verdict_matches,
    write_monitor_bundle,
)
from .service import Monitor, MonitorConfig, monitor_status, run_monitor

__all__ = [
    "MONITOR_BUNDLE_KIND",
    "Monitor",
    "MonitorConfig",
    "load_monitor_bundle",
    "monitor_status",
    "replay_bundle",
    "run_monitor",
    "verdict_matches",
    "write_monitor_bundle",
]
