"""The historical Raft single-node membership bug, at the network level.

This module drives the network-based specification through the exact
interleaving of Fig. 4 with the R3 guard disabled (the algorithm as
published in Ongaro's thesis [24], before the 2015 fix [25]) and shows
the committed logs diverging; running the same schedule with R3 on
shows the very first reconfiguration being denied.

The step-by-step narrative (four servers, conf₀ = {1, 2, 3, 4}):

1. S1 is elected at term 1 (votes from S2, S3).
2. S1 proposes removing S4 ({1,2,3}) -- entering its log immediately --
   but none of its replication messages arrive.
3. S2 is elected at term 2 (votes from S3, S4; S2's log lacks S1's
   config entry, and elections do not transfer logs).
4. S2 proposes removing S3 ({1,2,4}); the entry reaches S4, and
   {S2, S4} is a majority of {1,2,4}: committed.
5. S1 campaigns again.  Its first attempt (term 2) is rejected -- S3
   already voted at term 2 -- which only bumps terms; the retry at term
   3 wins votes from S1 and S3, a "majority" of S1's own stale
   configuration {1,2,3}.
6. Both leaders now commit independently with disjoint quorums
   ({2,4} vs {1,3}); the committed prefixes disagree at slot 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.cache import NodeId
from ..schemes.single_node import RaftSingleNodeScheme
from .messages import CommitAck, CommitReq, ElectAck, ElectReq
from .spec import RaftSystem

CONF0 = frozenset({1, 2, 3, 4})


class NoR3Mixin:
    """Force ``enforce_r3=False`` on every reconfiguration.

    Mixed in front of any :class:`~repro.raft.server.Server` subclass
    (``class Buggy(NoR3Mixin, CompactServer)``) this turns it into the
    pre-fix algorithm of Ongaro's thesis: a leader may propose a
    membership change before it has committed anything at its own term.
    ``repro.net`` uses it (``--spec buggy``) to seed a *live* Fig. 4
    violation for the runtime monitor to catch; it carries no state of
    its own, so the dataclass-generated ``__init__`` is untouched.
    """

    def reconfig(self, new_conf, scheme, enforce_r2=True, enforce_r3=True,
                 request_id=None):
        return super().reconfig(
            new_conf, scheme, enforce_r2=enforce_r2, enforce_r3=False,
            request_id=request_id,
        )


@dataclass
class BugOutcome:
    """The result of one run of the Fig. 4 schedule."""

    system: RaftSystem
    reconfig_results: List[str]
    safety_violations: List[str]

    @property
    def violated(self) -> bool:
        return bool(self.safety_violations)


def _deliver_between(system: RaftSystem, frm: NodeId, to: NodeId, kinds) -> int:
    """Deliver all in-flight messages of the given kinds from/to pairs."""
    count = 0
    progress = True
    while progress:
        progress = False
        for msg in list(system.network.in_flight()):
            if isinstance(msg, kinds) and msg.frm == frm and msg.to == to:
                system.deliver(msg)
                count += 1
                progress = True
    return count


def run_fig4_schedule(enforce_r3: bool) -> BugOutcome:
    """Drive the network spec through the Fig. 4 interleaving."""
    system = RaftSystem(CONF0, RaftSingleNodeScheme(), enforce_r3=enforce_r3)
    reconfig_results: List[str] = []

    # (1) S1 elected at term 1 with votes from S2 and S3.
    system.elect(1)
    for voter in (2, 3):
        _deliver_between(system, 1, voter, ElectReq)
        _deliver_between(system, voter, 1, ElectAck)
    assert system.servers[1].role == "leader", system.describe()

    # (2) S1 proposes {1,2,3}; replication messages are lost (never
    # delivered), so the entry stays only in S1's log.
    ok, reason = system.reconfig(1, frozenset({1, 2, 3}))
    reconfig_results.append(f"S1 removes S4: {reason}")
    if not ok:
        return BugOutcome(system, reconfig_results, system.check_log_safety())
    system.commit(1)  # requests enter the network but are never delivered

    # (3) S2 elected at term 2 with votes from S3 and S4.
    system.elect(2)
    for voter in (3, 4):
        _deliver_between(system, 2, voter, ElectReq)
        _deliver_between(system, voter, 2, ElectAck)
    assert system.servers[2].role == "leader", system.describe()

    # (4) S2 proposes {1,2,4}; only S4 receives it; {2,4} commits.
    ok, reason = system.reconfig(2, frozenset({1, 2, 4}))
    reconfig_results.append(f"S2 removes S3: {reason}")
    assert ok, reason
    system.commit(2)
    _deliver_between(system, 2, 4, CommitReq)
    _deliver_between(system, 4, 2, CommitAck)
    assert system.servers[2].commit_len == 1, system.describe()
    # A second round propagates the advanced commit index to S4.
    system.commit(2)
    _deliver_between(system, 2, 4, CommitReq)
    _deliver_between(system, 4, 2, CommitAck)

    # (5) S1 campaigns again: term 2 is rejected by S3 (already voted),
    # the retry at term 3 wins with S1's own stale config {1,2,3}.
    system.elect(1)  # term 2: S3 rejects
    _deliver_between(system, 1, 3, ElectReq)
    _deliver_between(system, 3, 1, ElectAck)
    system.elect(1)  # term 3
    _deliver_between(system, 1, 3, ElectReq)
    _deliver_between(system, 3, 1, ElectAck)
    assert system.servers[1].role == "leader", system.describe()

    # (6) S1 commits a regular command with {1,3}.
    system.invoke(1, "put(a,1)")
    system.commit(1)
    _deliver_between(system, 1, 3, CommitReq)
    _deliver_between(system, 3, 1, CommitAck)
    system.commit(1)
    _deliver_between(system, 1, 3, CommitReq)
    _deliver_between(system, 3, 1, CommitAck)

    return BugOutcome(system, reconfig_results, system.check_log_safety())


def run_buggy() -> BugOutcome:
    """The pre-fix algorithm (no R3): safety is violated."""
    return run_fig4_schedule(enforce_r3=False)


def run_fixed() -> BugOutcome:
    """The fixed algorithm (R3 on): the schedule is blocked at step 2."""
    return run_fig4_schedule(enforce_r3=True)
