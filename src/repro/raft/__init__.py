"""The network-based Raft-like specification (Section 5, Fig. 13).

* :mod:`repro.raft.spec` -- the asynchronous specification
  (:class:`RaftSystem`): servers, a two-bag network, and the five
  operations ``elect``/``invoke``/``reconfig``/``commit``/``deliver``.
* :mod:`repro.raft.sraft` -- SRaft (:class:`SRaftSystem`): the same
  state under the synchronized scheduler (valid, ordered, atomic
  deliveries).
* :mod:`repro.raft.buggy` -- the historical single-node membership bug
  driven at the network level (Fig. 4), with and without the R3 fix.
"""

from .buggy import BugOutcome, run_buggy, run_fig4_schedule, run_fixed
from .messages import (
    CommitAck,
    CommitReq,
    ElectAck,
    ElectReq,
    Log,
    LogEntry,
    Msg,
    log_order_key,
    msg_time,
    msg_vrsn,
)
from .network import Network
from .server import CANDIDATE, FOLLOWER, LEADER, Server, config_of
from .spec import (
    Commit,
    Deliver,
    Elect,
    Invoke,
    RaftEvent,
    RaftSystem,
    Reconfig,
)
from .sraft import CommitRound, ElectRound, SRaftSystem

__all__ = [
    "BugOutcome",
    "CANDIDATE",
    "Commit",
    "CommitAck",
    "CommitReq",
    "CommitRound",
    "Deliver",
    "Elect",
    "ElectAck",
    "ElectReq",
    "ElectRound",
    "FOLLOWER",
    "Invoke",
    "LEADER",
    "Log",
    "LogEntry",
    "Msg",
    "Network",
    "RaftEvent",
    "RaftSystem",
    "Reconfig",
    "Server",
    "SRaftSystem",
    "config_of",
    "log_order_key",
    "msg_time",
    "msg_vrsn",
    "run_buggy",
    "run_fig4_schedule",
    "run_fixed",
]
