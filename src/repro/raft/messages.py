"""Message types of the network-based Raft-like specification (Fig. 13).

Four kinds, exactly as in the paper: election requests and
acknowledgements, commit requests and acknowledgements.  Messages are
immutable values so traces of ``deliver`` events can be compared,
filtered, and reordered by the refinement machinery (Appendix C).

Being a *specification*, messages carry full logs rather than deltas --
the paper's Coq spec does the same; the executable runtime layers
nothing more on top, it just schedules these messages over a simulated
network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..core.cache import Config, Method, NodeId, Time, Vrsn


@dataclass(frozen=True)
class LogEntry:
    """One slot of a replica's local log.

    ``time``/``vrsn`` mirror the Adore cache coordinates (term and
    per-term sequence number).  ``is_config`` marks reconfiguration
    entries, whose ``payload`` is the new configuration; these take
    effect the moment they enter a log (hot reconfiguration).

    ``request_id`` is an optional client-assigned ``(client, seq)``
    identity used for at-most-once retry deduplication: a client that
    times out and retries can recognize its own earlier append in the
    new leader's log instead of appending the command again.  The
    protocol itself never reads it.
    """

    time: Time
    vrsn: Vrsn
    payload: Union[Method, Config]
    is_config: bool = False
    request_id: Optional[Tuple[str, int]] = None

    def describe(self) -> str:
        tag = "cfg" if self.is_config else "m"
        return f"{tag}:{self.payload!r}@t{self.time}v{self.vrsn}"


Log = Tuple[LogEntry, ...]


def log_order_key(log: Log) -> Tuple[Time, int]:
    """Raft's log up-to-dateness: last entry's term, then length."""
    if not log:
        return (0, 0)
    return (log[-1].time, len(log))


@dataclass(frozen=True)
class ElectReq:
    """A candidate's vote request, carrying its log for comparison."""

    frm: NodeId
    to: NodeId
    time: Time
    log: Log


@dataclass(frozen=True)
class ElectAck:
    """A voter's reply; ``granted`` is False for explicit rejections."""

    frm: NodeId
    to: NodeId
    time: Time
    granted: bool


@dataclass(frozen=True)
class CommitReq:
    """A leader's replication request: its full log plus commit length."""

    frm: NodeId
    to: NodeId
    time: Time
    log: Log
    commit_len: int


@dataclass(frozen=True)
class CommitAck:
    """A follower's acknowledgement that its log now matches up to
    ``acked_len``."""

    frm: NodeId
    to: NodeId
    time: Time
    acked_len: int


Msg = Union[ElectReq, ElectAck, CommitReq, CommitAck]


def msg_time(msg: Msg) -> Time:
    """The logical timestamp of any message."""
    return msg.time


def msg_vrsn(msg: Msg) -> int:
    """A secondary ordering component: the log length a request carries
    (0 for acks), used by the global-ordering lemma (Definition C.4)."""
    if isinstance(msg, (ElectReq, CommitReq)):
        return len(msg.log)
    if isinstance(msg, CommitAck):
        return msg.acked_len
    return 0
