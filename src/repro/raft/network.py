"""The abstract network of the Raft specification (Fig. 13).

``Network ≜ Set(Msg) × Set(Msg)``: a bag of sent-but-undelivered
messages and a bag of delivered ones.  Any sent message may be
delivered at any later point (asynchrony); messages that are never
delivered model loss.  Delivery moves one occurrence from the first bag
to the second -- the specification does not duplicate messages (the
paper's simplifying assumptions ultimately discard duplicates anyway,
see Lemma C.3).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, List

from .messages import Msg


class Network:
    """A mutable two-bag network."""

    def __init__(self) -> None:
        self._sent: Counter = Counter()
        self._delivered: List[Msg] = []

    def send(self, msg: Msg) -> None:
        """Place ``msg`` in the sent bag."""
        self._sent[msg] += 1

    def send_all(self, msgs) -> None:
        for msg in msgs:
            self.send(msg)

    def can_deliver(self, msg: Msg) -> bool:
        """Whether at least one occurrence of ``msg`` is in flight."""
        return self._sent[msg] > 0

    def mark_delivered(self, msg: Msg) -> None:
        """Move one occurrence from sent to delivered."""
        if self._sent[msg] <= 0:
            raise ValueError(f"message not in flight: {msg!r}")
        self._sent[msg] -= 1
        if self._sent[msg] == 0:
            del self._sent[msg]
        self._delivered.append(msg)

    def in_flight(self) -> Iterator[Msg]:
        """All undelivered messages (with multiplicity)."""
        for msg, count in sorted(
            self._sent.items(), key=lambda kv: (kv[0].time, repr(kv[0]))
        ):
            for _ in range(count):
                yield msg

    def delivered(self) -> List[Msg]:
        """Delivery history, in delivery order."""
        return list(self._delivered)

    def pending_count(self) -> int:
        return sum(self._sent.values())

    def __repr__(self) -> str:
        return (
            f"Network({self.pending_count()} in flight, "
            f"{len(self._delivered)} delivered)"
        )
