"""Per-replica state and message handlers of the Raft-like spec.

``Server ≜ N_time × N_vrsn × List(N_time × Method × Config) × ...``
(Fig. 13): a current timestamp, a local log, and bookkeeping (role,
votes received, replication progress).  Handlers are written spec-style:
each consumes one event and returns the messages it emits.

Reconfiguration entries take effect the moment they enter the log (hot
reconfiguration): a server's *current configuration* is the newest
config entry anywhere in its log, committed or not.  The R2/R3 guards
on proposing a new configuration are enforced here, with ablation
switches used by :mod:`repro.raft.buggy` to reproduce the historical
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.cache import Config, Method, NodeId, Time
from ..core.config import ReconfigScheme
from .messages import (
    CommitAck,
    CommitReq,
    ElectAck,
    ElectReq,
    Log,
    LogEntry,
    Msg,
    log_order_key,
)

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


def config_of(log: Log, conf0: Config) -> Config:
    """The latest configuration in ``log`` (hot semantics), or conf₀."""
    for entry in reversed(log):
        if entry.is_config:
            return entry.payload
    return conf0


@dataclass
class Server:
    """One replica of the network-based specification."""

    nid: NodeId
    conf0: Config
    time: Time = 0
    log: Log = ()
    commit_len: int = 0
    role: str = FOLLOWER
    #: Votes granted to this server's current candidacy (includes self).
    votes: FrozenSet[NodeId] = frozenset()
    #: The largest timestamp at which this server granted a vote.
    voted_at: Time = 0
    #: Leader bookkeeping: follower → highest log length acknowledged
    #: at the current term.
    acked: Dict[NodeId, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    def config(self) -> Config:
        """The server's current (hot) configuration."""
        return config_of(self.log, self.conf0)

    def committed_log(self) -> Log:
        """The committed prefix of the local log."""
        return self.log[: self.commit_len]

    def next_vrsn(self) -> int:
        """The version number for the next entry appended at this term."""
        if self.log and self.log[-1].time == self.time:
            return self.log[-1].vrsn + 1
        return 1

    def has_committed_config_change_pending(self) -> bool:
        """R2 at the log level: any config entry beyond the commit point?"""
        return any(entry.is_config for entry in self.log[self.commit_len :])

    def has_commit_at_current_time(self) -> bool:
        """R3 at the log level: a committed entry of the current term."""
        return any(
            entry.time == self.time for entry in self.log[: self.commit_len]
        )

    # ------------------------------------------------------------------
    # Operations (Fig. 13's elect / invoke / reconfig / commit)
    # ------------------------------------------------------------------

    def start_election(self, scheme: ReconfigScheme) -> List[Msg]:
        """Become a candidate at ``time + 1`` and request votes.

        The electorate is the server's current hot configuration;
        requests go to every other member.  (A single-member
        configuration wins immediately.)
        """
        self.time += 1
        self.role = CANDIDATE
        self.votes = frozenset({self.nid})
        self.voted_at = self.time
        self.acked = {}
        self._maybe_win(scheme)
        return [
            ElectReq(frm=self.nid, to=peer, time=self.time, log=self.log)
            for peer in sorted(scheme.members(self.config()))
            if peer != self.nid
        ]

    def invoke(self, method: Method, request_id=None) -> bool:
        """Append a regular command (leaders only); local operation."""
        if self.role != LEADER:
            return False
        entry = LogEntry(
            time=self.time,
            vrsn=self.next_vrsn(),
            payload=method,
            request_id=request_id,
        )
        self.log = self.log + (entry,)
        self.acked[self.nid] = len(self.log)
        return True

    def reconfig(
        self,
        new_conf: Config,
        scheme: ReconfigScheme,
        enforce_r2: bool = True,
        enforce_r3: bool = True,
        request_id=None,
    ) -> Tuple[bool, str]:
        """Append a configuration entry, subject to R1⁺/R2/R3.

        Returns ``(ok, reason)``; the ablation switches reproduce the
        pre-fix algorithm (R3 off) and worse (R2 off).
        """
        if self.role != LEADER:
            return False, "not-leader"
        if not scheme.r1_plus(self.config(), new_conf):
            return False, "r1-denied"
        if enforce_r2 and self.has_committed_config_change_pending():
            return False, "r2-denied"
        if enforce_r3 and not self.has_commit_at_current_time():
            return False, "r3-denied"
        entry = LogEntry(
            time=self.time,
            vrsn=self.next_vrsn(),
            payload=new_conf,
            is_config=True,
            request_id=request_id,
        )
        self.log = self.log + (entry,)
        self.acked[self.nid] = len(self.log)
        return True, "ok"

    def broadcast_commit(self, scheme: ReconfigScheme) -> List[Msg]:
        """Replicate the log to the current configuration (leaders only).

        Also re-evaluates the commit rule first: under schemes where the
        leader alone is a quorum (primary-backup), its own ack suffices.
        """
        if self.role != LEADER:
            return []
        self._advance_commit(scheme)
        members = scheme.members(self.config())
        return [
            CommitReq(
                frm=self.nid,
                to=peer,
                time=self.time,
                log=self.log,
                commit_len=self.commit_len,
            )
            for peer in sorted(members)
            if peer != self.nid
        ]

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def would_accept(self, msg: Msg) -> bool:
        """Definition C.2: would this message be acted upon (valid)?

        Invalid messages -- stale timestamps, acks for ended rounds --
        are ignored by the handlers; SRaft's scheduler never delivers
        them in the first place (Lemma C.3).
        """
        if isinstance(msg, ElectReq):
            return msg.time > self.time
        if isinstance(msg, ElectAck):
            return (
                self.role == CANDIDATE and msg.time == self.time and msg.granted
            )
        if isinstance(msg, CommitReq):
            return msg.time >= self.time and log_order_key(msg.log) >= (
                log_order_key(self.log)
            )
        if isinstance(msg, CommitAck):
            return self.role == LEADER and msg.time == self.time
        raise TypeError(f"unknown message {msg!r}")

    def handle(self, msg: Msg, scheme: ReconfigScheme) -> List[Msg]:
        """Deliver ``msg``; returns the responses this server emits."""
        if not self.would_accept(msg):
            return []
        if isinstance(msg, ElectReq):
            return self._on_elect_req(msg)
        if isinstance(msg, ElectAck):
            return self._on_elect_ack(msg, scheme)
        if isinstance(msg, CommitReq):
            return self._on_commit_req(msg)
        if isinstance(msg, CommitAck):
            return self._on_commit_ack(msg, scheme)
        raise TypeError(f"unknown message {msg!r}")

    def _on_elect_req(self, msg: ElectReq) -> List[Msg]:
        # A higher-term request always advances our clock (and dethrones
        # us); the vote itself additionally requires the candidate's log
        # to be at least as up-to-date as ours.
        self.time = msg.time
        self.role = FOLLOWER
        granted = log_order_key(msg.log) >= log_order_key(self.log)
        if granted:
            self.voted_at = msg.time
        return [
            ElectAck(frm=self.nid, to=msg.frm, time=msg.time, granted=granted)
        ]

    def _on_elect_ack(self, msg: ElectAck, scheme: ReconfigScheme) -> List[Msg]:
        self.votes = self.votes | {msg.frm}
        self._maybe_win(scheme)
        return []

    def _maybe_win(self, scheme: Optional[ReconfigScheme]) -> None:
        if scheme is None or self.role != CANDIDATE:
            return
        # Votes are counted against the candidate's own (hot) config --
        # the exact place the Fig. 4 bug exploits.
        if scheme.is_quorum(self.votes, self.config()):
            self.role = LEADER
            self.acked = {self.nid: len(self.log)}

    def _on_commit_req(self, msg: CommitReq) -> List[Msg]:
        self.time = msg.time
        if self.nid != msg.frm:
            self.role = FOLLOWER
        self.log = msg.log
        self.commit_len = max(self.commit_len, min(msg.commit_len, len(self.log)))
        return [
            CommitAck(
                frm=self.nid,
                to=msg.frm,
                time=msg.time,
                acked_len=len(self.log),
            )
        ]

    def _on_commit_ack(self, msg: CommitAck, scheme: ReconfigScheme) -> List[Msg]:
        previous = self.acked.get(msg.frm, 0)
        self.acked[msg.frm] = max(previous, msg.acked_len)
        self._advance_commit(scheme)
        return []

    def _advance_commit(self, scheme: ReconfigScheme) -> None:
        """Raft's commit rule: the longest prefix acked by a quorum whose
        last entry is of the current term."""
        for length in range(len(self.log), self.commit_len, -1):
            if self.log[length - 1].time != self.time:
                # Only entries of the leader's own term commit by
                # counting (earlier entries commit transitively).
                continue
            ackers = frozenset(
                nid for nid, acked in self.acked.items() if acked >= length
            )
            if scheme.is_quorum(ackers, self.config()):
                self.commit_len = length
                return

    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple:
        """The (log, time) pair compared by ℝ_net (Fig. 18)."""
        return (self.log, self.time)

    def describe(self) -> str:
        entries = ", ".join(e.describe() for e in self.log)
        return (
            f"S{self.nid}[{self.role} t{self.time} commit={self.commit_len}] "
            f"log=[{entries}]"
        )
