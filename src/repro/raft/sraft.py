"""SRaft: the simplified, synchronized Raft specification (Section 5).

SRaft shares Raft's state but restricts the scheduler with three
assumptions, each discharged by a trace-transformation lemma in
Appendix C:

* only *valid* messages are delivered (Lemma C.3 -- invalid ones are
  ignored anyway, so dropping them preserves every local state);
* deliveries happen in logical-time order (Lemma C.7 -- deliveries to
  different recipients commute);
* a request and its acknowledgements are delivered *atomically*
  (Lemma C.9 -- intervening messages come from other leaders and other
  recipients, so they commute out).

Under these assumptions each election/commit round becomes one
composite, atomic operation -- exactly the granularity of Adore's
``pull``/``push`` -- which is what makes the final refinement step
(Lemma C.1) a direct transcription.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

from ..core.cache import NodeId, Time
from ..core.errors import InvalidOperation
from .server import LEADER
from .spec import RaftSystem


@dataclass(frozen=True)
class ElectRound:
    """The observable outcome of one atomic SRaft election."""

    nid: NodeId
    time: Time
    receivers: FrozenSet[NodeId]
    granted: FrozenSet[NodeId]
    won: bool


@dataclass(frozen=True)
class CommitRound:
    """The observable outcome of one atomic SRaft commit."""

    nid: NodeId
    time: Time
    receivers: FrozenSet[NodeId]
    acked: FrozenSet[NodeId]
    commit_len: int


class SRaftSystem(RaftSystem):
    """Raft under SRaft's scheduling assumptions.

    Elections and commits are composite operations that send, deliver,
    and acknowledge atomically.  The class asserts the global-ordering
    discipline: the logical time of successive rounds never decreases.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rounds: List[object] = []
        self._last_round_time: Time = 0

    def _enter_round(self, time: Time) -> None:
        if time < self._last_round_time:
            raise InvalidOperation(
                f"SRaft rounds must be globally ordered: {time} after "
                f"{self._last_round_time}"
            )
        self._last_round_time = time

    # ------------------------------------------------------------------

    def elect_atomic(
        self, nid: NodeId, receivers: Iterable[NodeId]
    ) -> ElectRound:
        """One atomic election round.

        The candidate broadcasts; the named ``receivers`` receive the
        request simultaneously (invalid deliveries -- stale receivers --
        are skipped, per Lemma C.3) and their acknowledgements return
        immediately.  Messages to non-receivers stay lost in flight.
        """
        candidate = self.servers[nid]
        # Validate the ordering discipline *before* mutating any state:
        # the candidacy will run at time + 1.
        self._enter_round(candidate.time + 1)
        requests = candidate.start_election(self.scheme)
        self.network.send_all(requests)

        wanted = frozenset(receivers) - {nid}
        delivered = set()
        granted = set()
        for msg in requests:
            if msg.to not in wanted:
                continue
            if not self.servers[msg.to].would_accept(msg):
                continue
            self.network.mark_delivered(msg)
            (ack,) = self.servers[msg.to].handle(msg, self.scheme)
            delivered.add(msg.to)
            self.network.send(ack)
            if candidate.would_accept(ack):
                self.network.mark_delivered(ack)
                candidate.handle(ack, self.scheme)
                granted.add(msg.to)
        round_ = ElectRound(
            nid=nid,
            time=candidate.time,
            receivers=frozenset(delivered),
            granted=frozenset(granted) | {nid},
            won=candidate.role == LEADER,
        )
        self.rounds.append(round_)
        return round_

    def commit_atomic(
        self, nid: NodeId, receivers: Iterable[NodeId]
    ) -> CommitRound:
        """One atomic commit round (broadcast + deliveries + acks)."""
        leader = self.servers[nid]
        self._enter_round(leader.time)
        requests = leader.broadcast_commit(self.scheme)
        self.network.send_all(requests)

        wanted = frozenset(receivers) - {nid}
        delivered = set()
        acked = set()
        for msg in requests:
            if msg.to not in wanted:
                continue
            if not self.servers[msg.to].would_accept(msg):
                continue
            self.network.mark_delivered(msg)
            (ack,) = self.servers[msg.to].handle(msg, self.scheme)
            delivered.add(msg.to)
            self.network.send(ack)
            if leader.would_accept(ack):
                self.network.mark_delivered(ack)
                leader.handle(ack, self.scheme)
                acked.add(msg.to)
        round_ = CommitRound(
            nid=nid,
            time=leader.time,
            receivers=frozenset(delivered),
            acked=frozenset(acked) | {nid},
            commit_len=leader.commit_len,
        )
        self.rounds.append(round_)
        return round_
