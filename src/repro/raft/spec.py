"""The asynchronous network-based Raft specification (Fig. 13).

``Σ_net ≜ (N_nid → Server) × Network`` with five operations: ``elect``,
``commit``, ``invoke``, ``reconfig``, ``deliver``.  The first four are
initiated by a replica; ``deliver`` hands any in-flight message to its
recipient.  Runs are recorded as event traces so the refinement
machinery (Appendix C) can filter, commute, and merge them.

The specification is parameterized by the same ``isQuorum``/``R1⁺``
scheme as Adore, so the refinement holds for the whole family of
reconfigurable protocols at once (Section 7, "Refinement").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.cache import Config, Method, NodeId
from ..core.config import ReconfigScheme
from ..core.errors import InvalidOperation
from .messages import Log, Msg
from .network import Network
from .server import LEADER, Server


@dataclass(frozen=True)
class Elect:
    """Event: ``nid`` starts an election."""

    nid: NodeId


@dataclass(frozen=True)
class Invoke:
    """Event: leader ``nid`` appends a command locally."""

    nid: NodeId
    method: Method


@dataclass(frozen=True)
class Reconfig:
    """Event: leader ``nid`` appends a configuration entry locally."""

    nid: NodeId
    new_conf: Config


@dataclass(frozen=True)
class Commit:
    """Event: leader ``nid`` broadcasts replication requests."""

    nid: NodeId


@dataclass(frozen=True)
class Deliver:
    """Event: one in-flight message is delivered to its recipient."""

    msg: Msg


RaftEvent = Union[Elect, Invoke, Reconfig, Commit, Deliver]


class RaftSystem:
    """A running instance of the network-based specification.

    Subclasses may swap the per-replica handler implementation via
    :attr:`SERVER_CLS` (the multi-Paxos variant in :mod:`repro.paxos`
    does); everything above the handlers -- the network, the five
    operations, traces, replay, and the safety check -- is shared.
    """

    #: The per-replica handler class; must expose the Server interface.
    SERVER_CLS = Server

    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        enforce_r2: bool = True,
        enforce_r3: bool = True,
        extra_nodes: Iterable[NodeId] = (),
    ) -> None:
        self.conf0 = conf0
        self.scheme = scheme
        self.enforce_r2 = enforce_r2
        self.enforce_r3 = enforce_r3
        nodes = set(scheme.members(conf0)) | set(extra_nodes)
        self.servers: Dict[NodeId, Server] = {
            nid: self.SERVER_CLS(nid=nid, conf0=conf0) for nid in sorted(nodes)
        }
        self.network = Network()
        self.trace: List[RaftEvent] = []

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def elect(self, nid: NodeId) -> None:
        """``elect`` (Fig. 13): ``nid`` becomes a candidate."""
        msgs = self.servers[nid].start_election(self.scheme)
        self.network.send_all(msgs)
        self.trace.append(Elect(nid))

    def invoke(self, nid: NodeId, method: Method) -> bool:
        """``invoke``: local log append at leader ``nid``."""
        ok = self.servers[nid].invoke(method)
        if ok:
            self.trace.append(Invoke(nid, method))
        return ok

    def reconfig(self, nid: NodeId, new_conf: Config) -> Tuple[bool, str]:
        """``reconfig``: local config append at leader ``nid``."""
        ok, reason = self.servers[nid].reconfig(
            new_conf,
            self.scheme,
            enforce_r2=self.enforce_r2,
            enforce_r3=self.enforce_r3,
        )
        if ok:
            self.trace.append(Reconfig(nid, new_conf))
        return ok, reason

    def commit(self, nid: NodeId) -> None:
        """``commit``: leader ``nid`` broadcasts its log."""
        msgs = self.servers[nid].broadcast_commit(self.scheme)
        self.network.send_all(msgs)
        if msgs:
            self.trace.append(Commit(nid))

    def deliver(self, msg: Msg) -> None:
        """``deliver``: hand one in-flight message to its recipient."""
        self.network.mark_delivered(msg)
        responses = self.servers[msg.to].handle(msg, self.scheme)
        self.network.send_all(responses)
        self.trace.append(Deliver(msg))

    def deliver_all(self, predicate=None, max_rounds: int = 100) -> int:
        """Deliver every in-flight message (matching ``predicate``),
        including responses triggered along the way.  Returns the number
        of deliveries."""
        count = 0
        for _ in range(max_rounds):
            pending = [
                m
                for m in self.network.in_flight()
                if predicate is None or predicate(m)
            ]
            if not pending:
                break
            for msg in pending:
                self.deliver(msg)
                count += 1
        return count

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def leader_at(self, time: int) -> Optional[NodeId]:
        """The leader whose current term is ``time``, if any."""
        for nid, server in self.servers.items():
            if server.role == LEADER and server.time == time:
                return nid
        return None

    def leaders(self) -> List[NodeId]:
        """All servers currently in the leader role."""
        return [n for n, s in self.servers.items() if s.role == LEADER]

    def committed_prefixes(self) -> Dict[NodeId, Log]:
        """Each server's committed log prefix."""
        return {nid: s.committed_log() for nid, s in self.servers.items()}

    def check_log_safety(self) -> List[str]:
        """Replicated state safety at the network level.

        Any two servers' committed prefixes must agree slot-by-slot up
        to the shorter one (the network analogue of Definition 4.1).
        """
        problems: List[str] = []
        items = sorted(self.committed_prefixes().items())
        for i, (nid_a, log_a) in enumerate(items):
            for nid_b, log_b in items[i + 1 :]:
                upto = min(len(log_a), len(log_b))
                if log_a[:upto] != log_b[:upto]:
                    problems.append(
                        f"S{nid_a} and S{nid_b} disagree on committed "
                        f"prefixes: {[e.describe() for e in log_a[:upto]]} "
                        f"vs {[e.describe() for e in log_b[:upto]]}"
                    )
        return problems

    def describe(self) -> str:
        lines = [s.describe() for _, s in sorted(self.servers.items())]
        lines.append(repr(self.network))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Replay (used by the refinement trace transformations)
    # ------------------------------------------------------------------

    @classmethod
    def replay(
        cls,
        conf0: Config,
        scheme: ReconfigScheme,
        events: Iterable[RaftEvent],
        enforce_r2: bool = True,
        enforce_r3: bool = True,
        strict: bool = False,
        extra_nodes: Iterable[NodeId] = (),
    ) -> "RaftSystem":
        """Re-run an event trace from the initial state.

        With ``strict`` a ``Deliver`` of a message that is not in flight
        raises; otherwise it is skipped (reorderings may drop messages
        whose trigger was filtered out).
        """
        system = cls(
            conf0,
            scheme,
            enforce_r2=enforce_r2,
            enforce_r3=enforce_r3,
            extra_nodes=extra_nodes,
        )
        for event in events:
            if isinstance(event, Elect):
                system.elect(event.nid)
            elif isinstance(event, Invoke):
                system.invoke(event.nid, event.method)
            elif isinstance(event, Reconfig):
                system.reconfig(event.nid, event.new_conf)
            elif isinstance(event, Commit):
                system.commit(event.nid)
            elif isinstance(event, Deliver):
                if system.network.can_deliver(event.msg):
                    system.deliver(event.msg)
                elif strict:
                    raise InvalidOperation(
                        f"replay: message not in flight: {event.msg!r}"
                    )
            else:
                raise TypeError(f"unknown event {event!r}")
        return system
