"""CADO: the configuration-aware ADO model *without* reconfiguration.

Section 3 marks everything reconfiguration-related in blue boxes;
removing those parts leaves CADO, which the paper uses both as a
stepping stone (its safety proof took ~1.3k lines of Coq and two weeks,
versus three more weeks to add reconfiguration) and as a useful model
for statically-configured protocols.

Here CADO is realized as a restriction of the full semantics: a
:class:`CadoMachine` shares all of :class:`repro.core.AdoreMachine`
except that ``reconfig`` is structurally unavailable, and the
:func:`cado_explorer` factory builds a model-checker instance whose
transition relation contains no reconfiguration moves.
"""

from .model import CadoMachine, cado_explorer

__all__ = ["CadoMachine", "cado_explorer"]
