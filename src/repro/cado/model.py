"""The CADO machine: Adore with the reconfiguration fragment removed."""

from __future__ import annotations

from typing import Optional

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme, StaticScheme
from ..core.errors import InvalidOperation
from ..core.oracle import Oracle
from ..core.semantics import AdoreMachine, OpResult
from ..mc.explorer import Explorer, OpBudget


class CadoMachine(AdoreMachine):
    """An Adore machine whose ``reconfig`` operation does not exist.

    The underlying scheme defaults to :class:`StaticScheme` (majority
    quorums, R1⁺ reflexive only), matching the paper's presentation of
    CADO as the non-boxed fragment of Fig. 6-11.
    """

    @classmethod
    def create(
        cls,
        conf0: Config,
        scheme: Optional[ReconfigScheme] = None,
        oracle: Oracle = None,
        strict: bool = False,
        **_ignored,
    ) -> "CadoMachine":
        base = AdoreMachine.create(
            conf0, scheme or StaticScheme(), oracle, strict=strict
        )
        return cls(
            scheme=base.scheme,
            oracle=base.oracle,
            state=base.state,
            strict=base.strict,
        )

    def reconfig(self, nid: NodeId, new_conf: Config) -> OpResult:
        raise InvalidOperation(
            "CADO has no reconfiguration operation; use AdoreMachine for "
            "the full model"
        )


def cado_explorer(
    conf0: Config,
    budget: Optional[OpBudget] = None,
    **explorer_kwargs,
) -> Explorer:
    """A model-checker over the CADO transition relation.

    Reconfiguration moves are removed by giving the explorer an empty
    candidate generator (the StaticScheme's R1⁺ would reject them
    anyway; the empty generator also keeps them out of the transition
    count).
    """
    return Explorer(
        StaticScheme(),
        conf0,
        budget=budget or OpBudget(pulls=2, invokes=2, reconfigs=0, pushes=2),
        reconfig_candidates=lambda state, nid, conf: (),
        **explorer_kwargs,
    )
