"""Raft snapshotting for the real-network runtime.

The specification keeps the whole log forever -- being a spec, its
messages carry full logs and its handlers index into them freely.
Neither survives the ROADMAP's "millions of requests": memory grows
without bound, and a rejoining node replays every entry it missed.
This module is the production answer, layered so the *spec semantics
stay intact* while the *representation* becomes compact:

* :class:`Snapshot` -- the committed prefix of a log, folded down to
  what the rest of the system can still ask about it: the materialized
  key-value state, the latest configuration (plus the positions of
  every folded config entry, for courtesy replication to removed
  peers), the ``(client_id, seq)`` dedup sessions, and the final
  folded :class:`~repro.raft.messages.LogEntry` verbatim (so Raft's
  up-to-dateness comparison still sees the true last coordinates).

* :class:`CompactLog` -- a log value whose first ``base_len`` entries
  are elided behind a :class:`Snapshot`.  It answers exactly the
  queries the unmodified spec handlers perform on logs -- absolute
  ``len``, last-entry access, suffix slicing and indexing at or beyond
  the snapshot point, append -- and **raises loudly**
  (:class:`SnapshotElided`) on any access to the folded prefix, so a
  code path that silently needed the full history fails a test instead
  of corrupting state.

* :class:`CompactServer` -- a :class:`~repro.raft.server.Server`
  subclass overriding only the handful of derived-state queries that
  would otherwise iterate the elided prefix (current configuration,
  the R3 commit-at-current-term check, ``describe``).  Every message
  handler, the commit rule, and the election logic are inherited
  unchanged: the compaction is invisible to the protocol.

Compaction is leader-driven: once the committed prefix has grown
``snapshot_threshold`` entries past the current base, the leader folds
it (:meth:`CompactServer.compact`).  Followers never compact on their
own -- they adopt the leader's compact representation wholesale through
the spec's own ``CommitReq`` log replacement, which is exactly how
*InstallSnapshot* works here: the wire layer
(:mod:`repro.net.wire`) ships the snapshot once per connection as
chunked frames, and every subsequent delta frame references it by id.
A late-joining follower therefore catches up by receiving the folded
state plus the live tail instead of replaying the full history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..raft.messages import Log, LogEntry
from ..raft.server import Server, config_of
from ..runtime.kvstore import apply_command


class SnapshotElided(RuntimeError):
    """An access reached into a log prefix that has been folded into a
    snapshot.  This is a programming error, not a protocol condition:
    every spec query the runtime performs is answerable from the
    snapshot digest, so raising (rather than silently answering from
    the tail only) is what keeps compaction honest."""


def _fold_command(store: Dict[str, Any], payload) -> None:
    """Apply one non-config payload to the folding store, tolerating
    vocabulary the kvstore does not know (e.g. bare no-op markers the
    simulator uses): unknown commands fold as no-ops rather than
    poisoning compaction."""
    if isinstance(payload, tuple) and payload:
        try:
            apply_command(store, payload)
        except (ValueError, TypeError):
            pass


@dataclass(frozen=True)
class Snapshot:
    """The folded committed prefix of a log.

    ``last_entry`` is the final folded entry kept verbatim: Raft's
    up-to-dateness key needs its ``(time, vrsn)``, and times are
    nondecreasing along a log, so it also answers "does the prefix
    contain an entry of term t" for every t >= its own time -- the only
    terms the R3 check ever asks about.
    """

    #: Number of log entries folded in (an absolute prefix length > 0).
    base_len: int
    #: The final folded entry, verbatim.
    last_entry: LogEntry
    #: The newest configuration in the folded prefix (conf0 if none).
    config: frozenset
    #: Materialized key-value state of the folded prefix.
    store: Dict[str, Any] = field(default_factory=dict)
    #: At-most-once dedup: client_id -> highest folded seq.
    sessions: Dict[str, int] = field(default_factory=dict)
    #: Every folded config entry as (absolute index, members) -- kept
    #: so courtesy replication can still locate a removed peer's
    #: removal entry after it has been compacted away.
    config_history: Tuple[Tuple[int, frozenset], ...] = ()

    @property
    def sid(self) -> str:
        """Stable identity: a snapshot is determined by its log
        position (log matching), so ``(base_len, last time, last
        vrsn)`` identifies the content across the cluster."""
        return f"{self.base_len}.{self.last_entry.time}.{self.last_entry.vrsn}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return self.sid == other.sid

    def __hash__(self) -> int:
        return hash(self.sid)


class CompactLog:
    """A log whose committed prefix is elided behind a snapshot.

    Duck-types the subset of tuple behaviour the spec handlers use on
    logs, with **absolute** indexing: ``len`` counts elided entries,
    ``log[i]`` works for any ``i`` at or beyond the snapshot point (and
    for ``-1``, the up-to-dateness probe), suffix slices return plain
    tuples, and prefix slices down to the snapshot point return another
    :class:`CompactLog`.  Anything that would need a folded entry
    raises :class:`SnapshotElided`.
    """

    __slots__ = ("snap", "tail")

    def __init__(self, snap: Snapshot, tail: Log = ()) -> None:
        self.snap = snap
        self.tail = tuple(tail)

    # -- size / truthiness -------------------------------------------------

    def __len__(self) -> int:
        return self.snap.base_len + len(self.tail)

    def __bool__(self) -> bool:
        return True  # base_len > 0 by construction

    # -- element access ----------------------------------------------------

    def __getitem__(self, index):
        base = self.snap.base_len
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise SnapshotElided("CompactLog slices must be contiguous")
            start = 0 if index.start is None else index.start
            stop = len(self) if index.stop is None else min(index.stop, len(self))
            if stop <= start:
                return ()
            if start >= base:
                return self.tail[start - base : stop - base]
            if start == 0:
                if stop >= base:
                    return CompactLog(self.snap, self.tail[: stop - base])
                raise SnapshotElided(
                    f"log[:{stop}] reaches into the {base}-entry snapshot"
                )
            raise SnapshotElided(
                f"log[{start}:{stop}] starts inside the {base}-entry snapshot"
            )
        if index < 0:
            index += len(self)
        if index >= base:
            return self.tail[index - base]
        if index == base - 1:
            return self.snap.last_entry
        raise SnapshotElided(
            f"log[{index}] was folded into the {base}-entry snapshot"
        )

    def __iter__(self):
        raise SnapshotElided(
            "cannot iterate a CompactLog from the start; iterate .tail "
            "or answer the query from the snapshot digest"
        )

    # -- append (the spec's only log mutation shape) -----------------------

    def __add__(self, other):
        if isinstance(other, tuple):
            return CompactLog(self.snap, self.tail + other)
        return NotImplemented

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, CompactLog):
            return self.snap == other.snap and self.tail == other.tail
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.snap.sid, self.tail))

    def __repr__(self) -> str:
        return (
            f"CompactLog(<{self.snap.base_len} folded, sid={self.snap.sid}>"
            f" + {len(self.tail)} tail)"
        )


def base_len(log) -> int:
    """The number of elided entries of any log representation."""
    return log.snap.base_len if isinstance(log, CompactLog) else 0


def config_positions(server: Server) -> List[Tuple[int, frozenset]]:
    """Every configuration entry of ``server``'s log as ``(absolute
    index, members)``, including those folded into a snapshot."""
    log = server.log
    if isinstance(log, CompactLog):
        positions = list(log.snap.config_history)
        base = log.snap.base_len
        positions.extend(
            (base + i, entry.payload)
            for i, entry in enumerate(log.tail)
            if entry.is_config
        )
        return positions
    return [
        (i, entry.payload) for i, entry in enumerate(log) if entry.is_config
    ]


def slice_prefix(log, target: int):
    """``log[:target]`` for replication purposes: when ``target`` falls
    inside the elided prefix, the snapshot itself (which covers
    ``target`` and more) is the shortest shippable prefix."""
    if isinstance(log, CompactLog) and target < log.snap.base_len:
        return CompactLog(log.snap, ())
    return log[:target]


def materialize_prefix(log, upto: int) -> Dict[str, Any]:
    """Fold ``log[:upto]`` into key-value state, starting from the
    snapshot's store when the prefix is compacted."""
    if isinstance(log, CompactLog):
        base = log.snap.base_len
        if upto < base:
            raise SnapshotElided(
                f"cannot materialize log[:{upto}] below the snapshot "
                f"point {base}"
            )
        store = dict(log.snap.store)
        entries = log.tail[: upto - base]
    else:
        store = {}
        entries = log[:upto]
    for entry in entries:
        if not entry.is_config:
            _fold_command(store, entry.payload)
    return store


def find_request_compact(server: Server, request_id) -> Optional[int]:
    """Snapshot-aware at-most-once lookup.

    Returns the absolute 1-based prefix length that must commit for
    ``request_id``'s entry to be durable -- or, when the request was
    folded into the snapshot (necessarily committed), the snapshot's
    own base length, which the commit length always covers, so the
    caller answers immediately.
    """
    if request_id is None:
        return None
    log = server.log
    if isinstance(log, CompactLog):
        client_id, seq = request_id
        if log.snap.sessions.get(client_id, -1) >= seq:
            return log.snap.base_len
        base = log.snap.base_len
        for i, entry in enumerate(log.tail):
            if entry.request_id == request_id:
                return base + i + 1
        return None
    for i, entry in enumerate(log):
        if entry.request_id == request_id:
            return i + 1
    return None


class CompactServer(Server):
    """A spec replica whose log may carry an elided, snapshotted prefix.

    Only derived-state *queries* are overridden; every handler,
    election step, and the commit rule run the inherited spec code
    against the compact representation (absolute lengths and suffix
    access keep them correct by construction).
    """

    # -- derived state over the elided prefix ------------------------------

    def config(self):
        log = self.log
        if isinstance(log, CompactLog):
            for entry in reversed(log.tail):
                if entry.is_config:
                    return entry.payload
            return log.snap.config
        return config_of(log, self.conf0)

    def has_commit_at_current_time(self) -> bool:
        log = self.log
        if isinstance(log, CompactLog):
            snap = log.snap
            # The snapshot covers only committed entries, and times are
            # nondecreasing, so its last entry decides for its terms.
            if snap.last_entry.time == self.time:
                return True
            committed_tail = self.commit_len - snap.base_len
            return any(
                entry.time == self.time
                for entry in log.tail[:max(committed_tail, 0)]
            )
        return super().has_commit_at_current_time()

    def has_entry_at_current_time(self) -> bool:
        """Whether any entry (committed or not) carries the current
        term -- the no-op-barrier trigger.  Times are nondecreasing, so
        the last entry answers for the whole log."""
        log = self.log
        return bool(log) and log[-1].time == self.time

    def describe(self) -> str:
        log = self.log
        if isinstance(log, CompactLog):
            entries = ", ".join(e.describe() for e in log.tail)
            return (
                f"S{self.nid}[{self.role} t{self.time} "
                f"commit={self.commit_len}] "
                f"log=[<snap:{log.snap.sid}>, {entries}]"
            )
        return super().describe()

    # -- compaction --------------------------------------------------------

    def snapshot_base(self) -> int:
        return base_len(self.log)

    def compact(self) -> bool:
        """Fold the committed prefix into a (new) snapshot.

        Leader-only by convention (the node gates on role); always
        safe: only committed entries fold, and every query the runtime
        performs on the prefix is preserved in the digest.  Returns
        whether anything was folded.
        """
        log = self.log
        base = base_len(log)
        upto = self.commit_len
        if upto <= base:
            return False
        if isinstance(log, CompactLog):
            snap = log.snap
            store = dict(snap.store)
            sessions = dict(snap.sessions)
            history = list(snap.config_history)
            config = snap.config
            folding = log.tail[: upto - base]
            tail = log.tail[upto - base :]
        else:
            store = {}
            sessions = {}
            history = []
            config = self.conf0
            folding = log[:upto]
            tail = log[upto:]
        for i, entry in enumerate(folding):
            if entry.is_config:
                config = entry.payload
                history.append((base + i, entry.payload))
            else:
                _fold_command(store, entry.payload)
            if entry.request_id is not None:
                client_id, seq = entry.request_id
                if sessions.get(client_id, -1) < seq:
                    sessions[client_id] = seq
        snap = Snapshot(
            base_len=upto,
            last_entry=folding[-1],
            config=config,
            store=store,
            sessions=sessions,
            config_history=tuple(history),
        )
        self.log = CompactLog(snap, tail)
        return True
