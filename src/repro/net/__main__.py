"""``python -m repro.net`` -- run the spec on a real network.

Subcommands:

* ``node``   -- run one replica process (what :class:`LocalCluster`
  spawns; also usable by hand across terminals or machines).
* ``client`` -- one-shot operations against a running cluster
  (``put``/``get``/``add``/``delete``/``status``/``reconfig``).
* ``demo``   -- spawn a localhost cluster, drive a workload through it
  (optionally killing the leader mid-run), then verify the recorded
  history with the Wing-Gong checker and the committed logs with the
  cross-node prefix-agreement check.  Exits non-zero on any violation,
  so CI can gate on it.
"""

from __future__ import annotations

import argparse
import logging
import random
import sys
import time
import uuid
from typing import Dict, List, Tuple

from .client import ClientError, ClientTimeout, NetClient
from .node import NodeConfig, run_node
from .procs import LocalCluster
from ..runtime.driver import TimingConfig
from ..runtime.linearize import check_history


def _parse_peers(spec: str) -> Dict[int, Tuple[str, int]]:
    """``"1=127.0.0.1:7001,2=127.0.0.1:7002"`` -> address map."""
    peers: Dict[int, Tuple[str, int]] = {}
    for part in spec.split(","):
        nid, _, addr = part.strip().partition("=")
        host, _, port = addr.rpartition(":")
        peers[int(nid)] = (host, int(port))
    return peers


def _parse_conf(spec: str) -> frozenset:
    return frozenset(int(part) for part in spec.split(",") if part.strip())


def _parse_addr(spec: str) -> Tuple[str, int]:
    host, _, port = spec.rpartition(":")
    return host, int(port)


# ----------------------------------------------------------------------
# node
# ----------------------------------------------------------------------


def _cmd_node(args: argparse.Namespace) -> int:
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stdout,
    )
    config = NodeConfig(
        nid=args.nid,
        host=args.host,
        port=args.port,
        peers=_parse_peers(args.peers),
        conf0=_parse_conf(args.conf),
        timing=TimingConfig(
            heartbeat_ms=args.heartbeat_ms,
            election_timeout_min_ms=args.election_min_ms,
            election_timeout_max_ms=args.election_max_ms,
        ),
        seed=args.seed,
        snapshot_threshold=args.snapshot_threshold,
        batching=not args.no_batch,
        read_index=not args.no_read_index,
        monitor=_parse_addr(args.monitor) if args.monitor else None,
        spec=args.spec,
    )
    run_node(config)
    return 0


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------


def _cmd_client(args: argparse.Namespace) -> int:
    addresses = _parse_peers(args.peers)
    # Each one-shot invocation is a distinct client: a fixed default id
    # would restart the sequence counter at the same value every time,
    # and the at-most-once dedup would answer later invocations with
    # the first one's result.
    client_id = args.client_id or f"cli-{uuid.uuid4().hex[:12]}"
    with NetClient(
        addresses,
        client_id=client_id,
        total_timeout_s=args.timeout_s,
        max_attempts=args.max_attempts or None,
    ) as client:
        try:
            if args.op == "status":
                for nid in sorted(addresses):
                    reply = client.status(nid)
                    if reply is None:
                        print(f"S{nid}: unreachable")
                    else:
                        extras = ""
                        if reply.base_len:
                            extras += f" snap={reply.base_len}"
                        if reply.snapshots_installed:
                            extras += f" installed={reply.snapshots_installed}"
                        if reply.reads_fast:
                            extras += f" fast_reads={reply.reads_fast}"
                        print(
                            f"S{nid}: {reply.role} term={reply.term} "
                            f"commit={reply.commit_len}/{reply.log_len} "
                            f"members={sorted(reply.members)}" + extras
                        )
                return 0
            if args.op == "put":
                result = client.put(args.key, args.value)
            elif args.op == "get":
                result = client.get(args.key)
            elif args.op == "add":
                result = client.add(args.key, int(args.value or 1))
            elif args.op == "delete":
                result = client.delete(args.key)
            elif args.op == "reconfig":
                result = client.reconfigure(_parse_conf(args.key))
            else:  # pragma: no cover - argparse restricts choices
                raise SystemExit(f"unknown op {args.op}")
        except (ClientError, ClientTimeout) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(result)
    return 0


# ----------------------------------------------------------------------
# demo
# ----------------------------------------------------------------------


def _run_workload(
    client: NetClient, rng: random.Random, ops: int, keys: List[str]
) -> Tuple[int, int]:
    """Drive ``ops`` random kvstore operations; returns (ok, unknown)."""
    ok = unknown = 0
    for _ in range(ops):
        key = rng.choice(keys)
        roll = rng.random()
        try:
            if roll < 0.4:
                client.put(key, rng.randrange(1000))
            elif roll < 0.6:
                client.add(key, rng.randrange(1, 5))
            elif roll < 0.7:
                client.delete(key)
            else:
                client.get(key)
            ok += 1
        except ClientTimeout:
            unknown += 1  # outcome unknown: the op stays pending
    return ok, unknown


def _committed_prefix_agreement(cluster: LocalCluster) -> Tuple[bool, str]:
    """Every pair of reachable nodes must agree on the shared prefix of
    their committed logs (the paper's log agreement, checked live)."""
    with cluster.client(client_id="safety-check") as probe:
        logs = {
            nid: tail
            for nid in cluster.nids
            if cluster.handles[nid].alive
            and (tail := probe.committed_tail(nid)) is not None
        }
    nids = sorted(logs)
    for i, a in enumerate(nids):
        for b in nids[i + 1:]:
            # Entries ship from each node's snapshot point on: compare
            # the overlap of the two visible (absolute) index ranges.
            entries_a, base_a = logs[a]
            entries_b, base_b = logs[b]
            lo = max(base_a, base_b)
            hi = min(base_a + len(entries_a), base_b + len(entries_b))
            if lo >= hi:
                continue  # no visible overlap (snapshots cover it)
            if (entries_a[lo - base_a : hi - base_a]
                    != entries_b[lo - base_b : hi - base_b]):
                return False, (
                    f"S{a} and S{b} disagree within their committed "
                    f"prefixes (absolute entries {lo}..{hi})"
                )
    return True, f"{len(nids)} nodes agree on committed prefixes"


def _run_fig4(cluster: LocalCluster, args: argparse.Namespace,
              failures: List[str]) -> None:
    """The staged divergent-reconfig schedule, asserted per spec."""
    from .fig4 import run_fig4_live

    print("demo: staging the Fig. 4 divergent-reconfig schedule ...")
    result = run_fig4_live(cluster, expect_violation=args.spec == "buggy")
    print(result.describe())
    if args.spec == "buggy":
        if not result.detected:
            failures.append(
                "the monitor missed the seeded fig4 violation"
            )
        elif result.bundle:
            from ..monitor.bundle import replay_bundle, verdict_matches

            _, verdict = replay_bundle(result.bundle)
            if verdict is None or not verdict_matches(result.bundle):
                failures.append(
                    f"bundle {result.bundle} does not replay to the "
                    f"recorded verdict"
                )
            else:
                print(f"demo: bundle replays and matches "
                      f"({result.bundle})")
        return
    # Clean spec under the same schedule: the reconfig must complete
    # legally, nothing may be flagged, and the survivors stay live.
    if result.detected:
        failures.append(
            f"monitor flagged the clean spec: {result.violations}"
        )
    if result.reconfig_outcome != "committed":
        failures.append(
            f"legal reconfig did not complete: {result.reconfig_outcome}"
        )
    with cluster.client(
        client_id="post-fig4", total_timeout_s=args.op_timeout_s
    ) as survivor:
        survivor.find_leader()
        try:
            for i in range(5):
                survivor.put(f"post-fig4-{i}", i)
            print("demo: survivors are live after the reconfiguration")
        except (ClientError, ClientTimeout) as exc:
            failures.append(f"survivors not live after reconfig: {exc}")


def _cmd_demo(args: argparse.Namespace) -> int:
    if args.spec == "buggy" and not args.monitor:
        print("--spec buggy requires --monitor (nothing else would "
              "observe the violation)", file=sys.stderr)
        return 2
    fig4 = args.fig4 or args.spec == "buggy"
    if fig4 and args.kill_leader:
        print("--kill-leader cannot be combined with the fig4 schedule",
              file=sys.stderr)
        return 2
    if fig4 and args.nodes < 3:
        print("the fig4 schedule needs at least 3 nodes", file=sys.stderr)
        return 2
    nids = tuple(range(1, args.nodes + 1))
    rng = random.Random(args.seed)
    keys = [f"k{i}" for i in range(5)]
    print(f"demo: spawning {args.nodes}-node cluster"
          + (" + monitor" if args.monitor else "")
          + (f" [spec={args.spec}]" if args.spec != "raft" else "")
          + " ...")
    with LocalCluster(
        nids=nids, seed=args.seed, log_dir=args.log_dir,
        snapshot_threshold=args.snapshot_threshold,
        spec=args.spec, monitor=args.monitor,
    ) as cluster:
        leader = cluster.wait_for_leader()
        print(f"demo: S{leader} is leader; driving {args.ops} ops ...")
        with cluster.client(
            client_id="demo", total_timeout_s=args.op_timeout_s
        ) as client:
            ok, unknown = _run_workload(client, rng, args.ops // 2, keys)
            if args.kill_leader:
                victim = cluster.wait_for_leader()
                print(f"demo: killing leader S{victim} (SIGKILL) ...")
                cluster.kill(victim)
                leader = cluster.wait_for_leader(exclude=(victim,))
                print(f"demo: S{leader} took over")
            ok2, unknown2 = _run_workload(
                client, rng, args.ops - args.ops // 2, keys
            )
            ok, unknown = ok + ok2, unknown + unknown2
            history = client.history
            print(
                f"demo: {ok} ops completed, {unknown} unknown, "
                f"{client.retries} retries"
            )

            failures = []
            verdict = check_history(history)
            print(f"demo: history {verdict.describe()}")
            if not verdict.ok:
                failures.append("history is not linearizable")
            agrees, detail = _committed_prefix_agreement(cluster)
            print(f"demo: {detail}")
            if not agrees:
                failures.append(detail)
            if ok == 0:
                failures.append("no operation completed")

        if fig4:
            _run_fig4(cluster, args, failures)
        if args.monitor:
            status = cluster.monitor_status()
            if status is None:
                failures.append("safety monitor unreachable at the end")
            elif args.spec == "buggy":
                if status.ok:
                    failures.append(
                        "monitor reports ok on the buggy spec"
                    )
            elif not status.ok:
                failures.append(
                    f"monitor flagged violations: {list(status.violations)}"
                )
            else:
                print(
                    f"demo: monitor clean after {status.events} events "
                    f"({status.entries} entries, {status.commits} commits, "
                    f"{status.gaps} gaps) from nodes "
                    f"{list(status.nodes)}"
                )

        codes = cluster.shutdown()
        clean = all(
            code is None or code <= 0  # -9 for the killed leader is fine
            for code in codes.values()
        )
        if not clean:
            failures.append(f"unclean shutdown: {codes}")
        if failures:
            for nid, text in cluster.logs().items():
                print(f"--- node {nid} log ---\n{text[-4000:]}")
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    print("demo: OK")
    return 0


# ----------------------------------------------------------------------


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.net")
    sub = parser.add_subparsers(dest="command", required=True)

    node = sub.add_parser("node", help="run one replica process")
    node.add_argument("--nid", type=int, required=True)
    node.add_argument("--host", default="127.0.0.1")
    node.add_argument("--port", type=int, required=True)
    node.add_argument("--peers", required=True,
                      help="e.g. 1=127.0.0.1:7001,2=127.0.0.1:7002")
    node.add_argument("--conf", required=True, help="e.g. 1,2,3")
    node.add_argument("--heartbeat-ms", type=float, default=25.0)
    node.add_argument("--election-min-ms", type=float, default=100.0)
    node.add_argument("--election-max-ms", type=float, default=200.0)
    node.add_argument("--seed", type=int, default=None)
    node.add_argument(
        "--snapshot-threshold", type=int, default=1024,
        help="compact the committed prefix after this many entries "
             "past the snapshot point (0 disables)",
    )
    node.add_argument(
        "--no-batch", action="store_true",
        help="broadcast per request instead of per event-loop tick",
    )
    node.add_argument(
        "--no-read-index", action="store_true",
        help="serialize reads through the log instead of ReadIndex",
    )
    node.add_argument(
        "--monitor", default=None, metavar="HOST:PORT",
        help="stream trace events to the safety monitor at this address",
    )
    node.add_argument(
        "--spec", choices=["raft", "buggy"], default="raft",
        help="server semantics: the spec, or the pre-fix algorithm "
             "with the R3 reconfiguration guard disabled",
    )
    node.add_argument("--verbose", action="store_true")
    node.set_defaults(func=_cmd_node)

    client = sub.add_parser("client", help="one-shot client operation")
    client.add_argument("--peers", required=True)
    client.add_argument(
        "--client-id", default=None,
        help="stable identity for retry dedup (default: unique per run)",
    )
    client.add_argument(
        "--max-attempts", type=int, default=20,
        help="give up (exit 1) after this many attempts with no "
             "definitive response (0 means deadline-bound only)",
    )
    client.add_argument(
        "--timeout-s", type=float, default=20.0,
        help="overall per-operation deadline in seconds",
    )
    client.add_argument(
        "op",
        choices=["put", "get", "add", "delete", "status", "reconfig"],
    )
    client.add_argument("key", nargs="?", default=None)
    client.add_argument("value", nargs="?", default=None)
    client.set_defaults(func=_cmd_client)

    demo = sub.add_parser("demo", help="self-checking localhost demo")
    demo.add_argument("--nodes", type=int, default=3)
    demo.add_argument("--ops", type=int, default=200)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--kill-leader", action="store_true")
    demo.add_argument("--op-timeout-s", type=float, default=20.0)
    demo.add_argument(
        "--snapshot-threshold", type=int, default=1024,
        help="per-node compaction threshold (low values force "
             "InstallSnapshot traffic mid-demo; 0 disables)",
    )
    demo.add_argument(
        "--log-dir", default=None,
        help="keep node logs here instead of a temporary directory",
    )
    demo.add_argument(
        "--monitor", action="store_true",
        help="attach the streaming safety monitor and require a clean "
             "verdict (with --spec buggy: require a violation verdict)",
    )
    demo.add_argument(
        "--spec", choices=["raft", "buggy"], default="raft",
        help="node semantics; 'buggy' disables the R3 reconfiguration "
             "guard and implies the fig4 schedule",
    )
    demo.add_argument(
        "--fig4", action="store_true",
        help="stage the Fig. 4 divergent-reconfig schedule after the "
             "workload (always on under --spec buggy)",
    )
    demo.set_defaults(func=_cmd_demo)

    args = parser.parse_args(argv)
    start = time.monotonic()
    code = args.func(args)
    if args.command == "demo":
        print(f"demo: finished in {time.monotonic() - start:.1f}s")
    return code


if __name__ == "__main__":
    sys.exit(main())
