"""The framed wire protocol of the real-network runtime.

Frames are length-prefixed and versioned::

    +----------------+---------+----------------------+
    | length (4B BE) | version | JSON body (UTF-8)    |
    +----------------+---------+----------------------+

``length`` counts everything after the prefix (version byte + body).
The body is JSON with a small *tagged value* extension so the spec's
payload vocabulary -- tuples, frozensets, the ``(client, seq)``
request ids -- round-trips exactly: ``decode_message(encode_message(m))
== m`` for every message type (property-tested with Hypothesis in
``tests/net/test_wire.py``).

Malformed input **never** crashes a node: every decoding failure is a
subclass of :class:`ProtocolError` (truncated, oversized, garbage
bytes, unknown kinds, version skew), which connection handlers catch
and turn into a dropped connection.  Anything else escaping the
decoder is a bug.

**Log-delta layer.**  The specification ships *full logs* in every
``ElectReq``/``CommitReq`` (being a spec, messages carry values, not
deltas), which over a real transport would make steady-state frames
grow with history.  :class:`DeltaEncoder`/:class:`DeltaDecoder` are a
per-connection compression layer: the sender transmits only the suffix
beyond the longest common prefix with the last log it sent on that
connection, and the receiver reconstructs the full log before the
handlers see it -- the spec stays unmodified, the wire stays O(delta).
A freshly (re-)joined node has no shared prefix, so it receives the
whole log in one large frame: exactly the catch-up cost that makes
*growing* the cluster the expensive direction in Fig. 16.  The layer
is stateful per TCP connection (both ends reset on reconnect); TCP's
ordered delivery is what makes the shared state sound.

**InstallSnapshot layer.**  Once a log has been compacted
(:mod:`repro.net.snapshot`), its elided prefix travels as a
*snapshot*: the sender ships the serialized snapshot once per
connection as chunked, length-capped :class:`SnapshotChunk` frames
(identified by the snapshot's ``sid``), and every subsequent delta
frame references it by id (``"b"``) with the shared-prefix length
``"p"`` counted in **absolute** entries.  The receiver reassembles the
chunks, recomputes the sid from the assembled content (an integrity
check -- a mismatch is a :class:`MalformedFrame`), and reconstructs
:class:`~repro.net.snapshot.CompactLog` values transparently.  A
late-joining follower therefore receives ``O(state)`` bytes, not
``O(history)``: that is InstallSnapshot, expressed as a wire-level
representation change the spec handlers never observe.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..raft.messages import (
    CommitAck,
    CommitReq,
    ElectAck,
    ElectReq,
    Log,
    LogEntry,
)
from .snapshot import CompactLog, Snapshot

#: Bumped on any incompatible frame/body change.
PROTOCOL_VERSION = 1

#: Hard cap on a frame's declared length: a malicious or corrupt
#: 4-byte prefix must not make a node try to buffer gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Serialized-snapshot text per :class:`SnapshotChunk` (well under the
#: frame cap, so a chunk frame never trips :class:`FrameTooLarge`).
SNAPSHOT_CHUNK_CHARS = 1 << 20

#: Hard cap on chunks per snapshot: bounds what a connection can make
#: the receiver buffer during reassembly.
MAX_SNAPSHOT_CHUNKS = 64

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------


class ProtocolError(Exception):
    """Base class: any malformed, oversized, truncated, or otherwise
    undecodable input.  Handlers treat it as "drop this connection"."""


class TruncatedFrame(ProtocolError):
    """The buffer ends before the declared frame does."""


class FrameTooLarge(ProtocolError):
    """The length prefix exceeds :data:`MAX_FRAME_BYTES` (or is zero)."""


class VersionMismatch(ProtocolError):
    """The frame's version byte is not :data:`PROTOCOL_VERSION`."""


class MalformedFrame(ProtocolError):
    """The body is not valid UTF-8 JSON of the expected shape."""


class UnknownMessageType(ProtocolError):
    """The body's ``kind`` names no known message."""


class UnencodableValue(ProtocolError):
    """An outgoing value falls outside the wire vocabulary."""


# ----------------------------------------------------------------------
# Client/admin RPC message types (the spec types live in repro.raft)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PeerHello:
    """First frame on a peer connection: who is dialing in."""

    nid: int


@dataclass(frozen=True)
class ClientRequest:
    """One client command; ``command`` uses the kvstore vocabulary
    (``("put", k, v)`` / ``("add", k, d)`` / ``("delete", k)`` /
    ``("get", k)`` / ``("noop",)``) or ``("reconfig", members)``.

    ``table_version`` stamps the routing-table version the sender
    routed by (``None`` for unsharded clients).  A node holding shard
    ownership refuses keyed commands it does not own -- or that carry a
    stamp newer than its own ownership -- with ``"wrong-shard"``, so a
    stale route can never silently land on the wrong group."""

    client_id: str
    seq: int
    command: Tuple
    table_version: Optional[int] = None


@dataclass(frozen=True)
class ClientResponse:
    """The reply to a :class:`ClientRequest`.

    ``ok=False`` carries an ``error`` tag; ``"not-leader"`` additionally
    carries the responder's best ``leader_hint`` (or ``None``);
    ``"wrong-shard"`` additionally carries the refusing node's
    ``table_version`` so the client knows how stale its table is.

    ``admitted`` distinguishes the two ways a request can be refused:
    ``False`` means the refusal happened at admission -- the command
    never entered this node's log; ``True`` means the command *had*
    already been appended when the refusal was sent (a leader bounced
    its pending requests on dethrone), so the entry survives in the log
    and may still commit.  Clients must treat an ``admitted`` refusal
    as an ambiguous outcome, exactly like a timeout."""

    client_id: str
    seq: int
    ok: bool
    result: Any = None
    error: Optional[str] = None
    leader_hint: Optional[int] = None
    table_version: Optional[int] = None
    admitted: bool = False


@dataclass(frozen=True)
class StatusRequest:
    """Health/introspection probe (also the client's discovery RPC)."""


@dataclass(frozen=True)
class StatusResponse:
    nid: int
    role: str
    term: int
    commit_len: int
    log_len: int
    members: Tuple[int, ...]
    leader_hint: Optional[int] = None
    #: Entries elided behind this node's snapshot (0 = uncompacted).
    base_len: int = 0
    #: Total replication bytes this node has written to peers.
    bytes_sent: int = 0
    #: Snapshots this node has installed from peers (InstallSnapshot).
    snapshots_installed: int = 0
    #: Linearizable reads served via ReadIndex (no log append).
    reads_fast: int = 0


@dataclass(frozen=True)
class LogRequest:
    """Ask a node for its committed log (cross-node safety checks)."""


@dataclass(frozen=True)
class LogResponse:
    """The committed *tail*: entries from absolute index ``base_len``
    on (``base_len`` is 0 when the node's log is uncompacted)."""

    entries: Log
    base_len: int = 0


@dataclass(frozen=True)
class SnapshotChunk:
    """One piece of a serialized snapshot (InstallSnapshot transport).

    ``sid`` identifies the snapshot; ``seq``/``n`` place this chunk in
    the reassembly; ``data`` is a slice of the serialized text.  The
    receiver recomputes the sid from the assembled snapshot -- a
    mismatch with the declared ``sid`` is an integrity failure."""

    sid: str
    seq: int
    n: int
    data: str


@dataclass(frozen=True)
class ReadProbe:
    """A leader's ReadIndex heartbeat: "are you still following me at
    term ``time``?" -- ``probe`` identifies the read batch."""

    frm: int
    to: int
    probe: int
    time: int


@dataclass(frozen=True)
class ReadProbeAck:
    """A follower's reply, carrying *its own* current term.  An ack
    whose term equals the leader's proves no higher-term leader existed
    when the ack was sent -- the quorum barrier that makes ReadIndex
    reads linearizable without a log append."""

    frm: int
    to: int
    probe: int
    time: int


@dataclass(frozen=True)
class MonitorHello:
    """A node introducing itself to the safety monitor before its first
    :class:`TraceBatch`."""

    nid: int


@dataclass(frozen=True)
class TraceBatch:
    """A batch of :class:`repro.obs.trace.TraceEvent` dicts streamed
    from node ``nid`` to the monitor.

    Events travel as their ``to_dict()`` JSON form (log entries inside
    ``log_advance`` events are already ``_pack_entry``-encoded by the
    node), so the batch body is plain JSON with no re-tagging.  The
    monitor orders events by arrival and per-node ``lamport`` only --
    ``t_ms`` is each node's *private* monotonic clock and is never
    compared across nodes.
    """

    nid: int
    events: Tuple[Mapping, ...]


@dataclass(frozen=True)
class MonitorStatusRequest:
    """Ask the monitor for its verdict so far."""


@dataclass(frozen=True)
class MonitorStatusResponse:
    """The monitor's verdict: engine counters plus the (possibly empty)
    violation descriptions and the bundle directory if one was written."""

    ok: bool
    events: int
    entries: int
    caches: int
    commits: int
    gaps: int
    nodes: Tuple[int, ...]
    violations: Tuple[str, ...]
    bundle: Optional[str] = None


@dataclass(frozen=True)
class PartitionRequest:
    """Admin fault injection: replace the node's blocked-peer set.

    The node drops raft/probe traffic from and to every nid in
    ``blocked`` until the next request (empty tuple heals).  Client
    connections are never affected.
    """

    blocked: Tuple[int, ...]


@dataclass(frozen=True)
class PartitionResponse:
    """Ack echoing the node id and its now-active blocked set."""

    nid: int
    blocked: Tuple[int, ...]


@dataclass(frozen=True)
class ShardOwnershipRequest:
    """Admin (shard manager): replace this node's owned key ranges.

    ``ranges`` are half-open ``[lo, hi)`` intervals over the 64-bit key
    hash space (:mod:`repro.shard.ring`); ``version`` is the routing
    table version the ownership belongs to.  A node only moves forward:
    a request older than its current ownership version is ignored (the
    ack carries the version actually in force).  Every node of a group
    gets the same push, so whichever of them is (or becomes) leader
    enforces the same ownership.
    """

    version: int
    ranges: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class ShardOwnershipResponse:
    """Ack echoing the node id and its now-active ownership version."""

    nid: int
    version: int


@dataclass(frozen=True)
class ShardDumpRequest:
    """Ask a leader for its *committed* key-value state within one hash
    range (the drain half of a shard migration): every key ``k`` with
    ``lo <= hash_key(k) < hi``, folded up to the commit index -- the
    same fold the snapshot machinery performs, restricted to the range
    being shipped to the new owner."""

    lo: int
    hi: int


@dataclass(frozen=True)
class ShardDumpResponse:
    """The folded range, plus the coordinates the manager's drain
    barrier keys off: ``role``/``term`` identify *who* answered (two
    dumps from the same node at the same leader term bracket a window
    of continuous leadership -- a leader never regains a term it
    stepped down from), ``log_len``/``commit_len`` place the log, and
    ``commit_in_term`` says whether an entry of the responder's current
    term is already committed (Raft's current-term commit barrier)."""

    nid: int
    role: str
    commit_len: int
    log_len: int
    items: Tuple[Tuple[str, Any], ...]
    version: Optional[int] = None
    term: int = 0
    commit_in_term: bool = False


WireMessage = Any  # one of the raft Msg types or the RPC types above


# ----------------------------------------------------------------------
# Tagged JSON values
# ----------------------------------------------------------------------

_SCALARS = (str, bool, int, float, type(None))


def _pack(value) -> Any:
    """Encode one payload value into tagged JSON."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise UnencodableValue(f"non-finite float {value!r}")
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, tuple):
        return {"__tuple": [_pack(v) for v in value]}
    if isinstance(value, frozenset):
        # Sort for a canonical encoding (members are sortable in every
        # scheme this repo ships; mixed-type sets fall back to repr).
        try:
            items = sorted(value)
        except TypeError:
            items = sorted(value, key=repr)
        return {"__frozenset": [_pack(v) for v in items]}
    if isinstance(value, list):
        return {"__list": [_pack(v) for v in value]}
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise UnencodableValue("dict payloads must have str keys")
        return {"__dict": {k: _pack(v) for k, v in value.items()}}
    raise UnencodableValue(f"cannot encode {type(value).__name__}: {value!r}")


def _unpack(value) -> Any:
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        if len(value) == 1:
            (tag, inner), = value.items()
            if tag == "__tuple":
                return tuple(_unpack(v) for v in inner)
            if tag == "__frozenset":
                return frozenset(_unpack(v) for v in inner)
            if tag == "__list":
                return [_unpack(v) for v in inner]
            if tag == "__dict":
                return {k: _unpack(v) for k, v in inner.items()}
        raise MalformedFrame(f"untagged object in payload: {value!r}")
    raise MalformedFrame(f"unexpected JSON value {value!r}")


# ----------------------------------------------------------------------
# Log entries
# ----------------------------------------------------------------------


def _pack_entry(entry: LogEntry) -> List:
    return [
        entry.time,
        entry.vrsn,
        _pack(entry.payload),
        entry.is_config,
        _pack(entry.request_id),
    ]


def _unpack_entry(raw) -> LogEntry:
    try:
        time, vrsn, payload, is_config, request_id = raw
    except (TypeError, ValueError) as exc:
        raise MalformedFrame(f"bad log entry {raw!r}") from exc
    if not isinstance(time, int) or not isinstance(vrsn, int):
        raise MalformedFrame(f"bad entry coordinates {raw!r}")
    if not isinstance(is_config, bool):
        raise MalformedFrame(f"bad is_config flag {raw!r}")
    return LogEntry(
        time=time,
        vrsn=vrsn,
        payload=_unpack(payload),
        is_config=is_config,
        request_id=_unpack(request_id),
    )


def _pack_log(log: Log) -> List:
    return [_pack_entry(e) for e in log]


def _unpack_log(raw) -> Log:
    if not isinstance(raw, list):
        raise MalformedFrame(f"log must be a list, got {raw!r}")
    return tuple(_unpack_entry(e) for e in raw)


# ----------------------------------------------------------------------
# Message bodies
# ----------------------------------------------------------------------

def _body_elect_req(m: ElectReq) -> Dict:
    return {"frm": m.frm, "to": m.to, "time": m.time, "log": _pack_log(m.log)}


def _body_commit_req(m: CommitReq) -> Dict:
    return {
        "frm": m.frm, "to": m.to, "time": m.time,
        "log": _pack_log(m.log), "commit_len": m.commit_len,
    }


_ENCODERS = {
    ElectReq: ("elect_req", _body_elect_req),
    ElectAck: ("elect_ack", lambda m: {
        "frm": m.frm, "to": m.to, "time": m.time, "granted": m.granted,
    }),
    CommitReq: ("commit_req", _body_commit_req),
    CommitAck: ("commit_ack", lambda m: {
        "frm": m.frm, "to": m.to, "time": m.time, "acked_len": m.acked_len,
    }),
    PeerHello: ("peer_hello", lambda m: {"nid": m.nid}),
    ClientRequest: ("client_request", lambda m: {
        "client_id": m.client_id, "seq": m.seq, "command": _pack(m.command),
        "table_version": m.table_version,
    }),
    ClientResponse: ("client_response", lambda m: {
        "client_id": m.client_id, "seq": m.seq, "ok": m.ok,
        "result": _pack(m.result), "error": m.error,
        "leader_hint": m.leader_hint, "table_version": m.table_version,
        "admitted": m.admitted,
    }),
    StatusRequest: ("status_request", lambda m: {}),
    StatusResponse: ("status_response", lambda m: {
        "nid": m.nid, "role": m.role, "term": m.term,
        "commit_len": m.commit_len, "log_len": m.log_len,
        "members": list(m.members), "leader_hint": m.leader_hint,
        "base_len": m.base_len, "bytes_sent": m.bytes_sent,
        "snapshots_installed": m.snapshots_installed,
        "reads_fast": m.reads_fast,
    }),
    LogRequest: ("log_request", lambda m: {}),
    LogResponse: ("log_response", lambda m: {
        "entries": _pack_log(m.entries), "base_len": m.base_len,
    }),
    SnapshotChunk: ("snap_chunk", lambda m: {
        "sid": m.sid, "seq": m.seq, "n": m.n, "data": m.data,
    }),
    ReadProbe: ("read_probe", lambda m: {
        "frm": m.frm, "to": m.to, "probe": m.probe, "time": m.time,
    }),
    ReadProbeAck: ("read_probe_ack", lambda m: {
        "frm": m.frm, "to": m.to, "probe": m.probe, "time": m.time,
    }),
    MonitorHello: ("monitor_hello", lambda m: {"nid": m.nid}),
    TraceBatch: ("trace_batch", lambda m: {
        "nid": m.nid, "events": [dict(e) for e in m.events],
    }),
    MonitorStatusRequest: ("monitor_status_request", lambda m: {}),
    MonitorStatusResponse: ("monitor_status_response", lambda m: {
        "ok": m.ok, "events": m.events, "entries": m.entries,
        "caches": m.caches, "commits": m.commits, "gaps": m.gaps,
        "nodes": list(m.nodes), "violations": list(m.violations),
        "bundle": m.bundle,
    }),
    PartitionRequest: ("partition_request", lambda m: {
        "blocked": list(m.blocked),
    }),
    PartitionResponse: ("partition_response", lambda m: {
        "nid": m.nid, "blocked": list(m.blocked),
    }),
    ShardOwnershipRequest: ("shard_ownership_request", lambda m: {
        "version": m.version,
        "ranges": [[lo, hi] for lo, hi in m.ranges],
    }),
    ShardOwnershipResponse: ("shard_ownership_response", lambda m: {
        "nid": m.nid, "version": m.version,
    }),
    ShardDumpRequest: ("shard_dump_request", lambda m: {
        "lo": m.lo, "hi": m.hi,
    }),
    ShardDumpResponse: ("shard_dump_response", lambda m: {
        "nid": m.nid, "role": m.role, "commit_len": m.commit_len,
        "log_len": m.log_len,
        "items": [[k, _pack(v)] for k, v in m.items],
        "version": m.version, "term": m.term,
        "commit_in_term": m.commit_in_term,
    }),
}


def _require(body: Dict, key: str, types) -> Any:
    try:
        value = body[key]
    except (KeyError, TypeError) as exc:
        raise MalformedFrame(f"missing field {key!r}") from exc
    if types is not None and not isinstance(value, types):
        raise MalformedFrame(f"field {key!r} has wrong type: {value!r}")
    return value


def _opt_int(body: Dict, key: str) -> Optional[int]:
    value = body.get(key)
    if value is not None and not isinstance(value, int):
        raise MalformedFrame(f"field {key!r} must be int or null")
    return value


def _int_or_zero(body: Dict, key: str) -> int:
    """A backward-compatible int field: absent means 0 (frames from a
    peer predating the field still decode)."""
    value = body.get(key, 0)
    if not isinstance(value, int) or isinstance(value, bool):
        raise MalformedFrame(f"field {key!r} must be an int")
    return value


def _bool_or_false(body: Dict, key: str) -> bool:
    """A backward-compatible bool field: absent means ``False``."""
    value = body.get(key, False)
    if not isinstance(value, bool):
        raise MalformedFrame(f"field {key!r} must be a bool")
    return value


def _decode_snapshot_chunk(body: Dict) -> SnapshotChunk:
    chunk = SnapshotChunk(
        sid=_require(body, "sid", str),
        seq=_require(body, "seq", int),
        n=_require(body, "n", int),
        data=_require(body, "data", str),
    )
    if not 1 <= chunk.n <= MAX_SNAPSHOT_CHUNKS:
        raise MalformedFrame(f"snapshot chunk count {chunk.n} out of range")
    if not 0 <= chunk.seq < chunk.n:
        raise MalformedFrame(f"snapshot chunk seq {chunk.seq}/{chunk.n}")
    return chunk


def _decode_elect_req(body: Dict) -> ElectReq:
    return ElectReq(
        frm=_require(body, "frm", int),
        to=_require(body, "to", int),
        time=_require(body, "time", int),
        log=_unpack_log(_require(body, "log", list)),
    )


def _decode_commit_req(body: Dict) -> CommitReq:
    return CommitReq(
        frm=_require(body, "frm", int),
        to=_require(body, "to", int),
        time=_require(body, "time", int),
        log=_unpack_log(_require(body, "log", list)),
        commit_len=_require(body, "commit_len", int),
    )


def _decode_nid_tuple(body: Dict, key: str) -> Tuple[int, ...]:
    raw = body.get(key, [])
    if not isinstance(raw, list) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in raw
    ):
        raise MalformedFrame(f"field {key!r} must be a list of ints")
    return tuple(raw)


def _decode_str_tuple(body: Dict, key: str) -> Tuple[str, ...]:
    raw = body.get(key, [])
    if not isinstance(raw, list) or not all(isinstance(v, str) for v in raw):
        raise MalformedFrame(f"field {key!r} must be a list of strings")
    return tuple(raw)


def _decode_trace_batch(body: Dict) -> TraceBatch:
    events = _require(body, "events", list)
    if not all(isinstance(e, dict) for e in events):
        raise MalformedFrame("trace batch events must be objects")
    return TraceBatch(
        nid=_require(body, "nid", int),
        events=tuple(events),
    )


def _decode_client_request(body: Dict) -> ClientRequest:
    command = _unpack(_require(body, "command", None))
    if not isinstance(command, tuple):
        raise MalformedFrame(f"command must be a tuple, got {command!r}")
    return ClientRequest(
        client_id=_require(body, "client_id", str),
        seq=_require(body, "seq", int),
        command=command,
        table_version=_opt_int(body, "table_version"),
    )


def _decode_shard_ownership(body: Dict) -> ShardOwnershipRequest:
    raw = _require(body, "ranges", list)
    ranges = []
    for item in raw:
        if not (
            isinstance(item, list) and len(item) == 2
            and all(isinstance(v, int) and not isinstance(v, bool)
                    for v in item)
            and 0 <= item[0] < item[1]
        ):
            raise MalformedFrame(f"bad ownership range {item!r}")
        ranges.append((item[0], item[1]))
    version = _require(body, "version", int)
    if version < 0:
        raise MalformedFrame(f"ownership version {version} must be >= 0")
    return ShardOwnershipRequest(version=version, ranges=tuple(ranges))


def _decode_shard_dump_request(body: Dict) -> ShardDumpRequest:
    lo = _require(body, "lo", int)
    hi = _require(body, "hi", int)
    if not 0 <= lo < hi:
        raise MalformedFrame(f"bad dump range [{lo}, {hi})")
    return ShardDumpRequest(lo=lo, hi=hi)


def _decode_shard_dump_response(body: Dict) -> ShardDumpResponse:
    raw = _require(body, "items", list)
    items = []
    for item in raw:
        if not (isinstance(item, list) and len(item) == 2
                and isinstance(item[0], str)):
            raise MalformedFrame(f"bad dump item {item!r}")
        items.append((item[0], _unpack(item[1])))
    return ShardDumpResponse(
        nid=_require(body, "nid", int),
        role=_require(body, "role", str),
        commit_len=_require(body, "commit_len", int),
        log_len=_require(body, "log_len", int),
        items=tuple(items),
        version=_opt_int(body, "version"),
        term=_int_or_zero(body, "term"),
        commit_in_term=_bool_or_false(body, "commit_in_term"),
    )


_DECODERS = {
    "elect_req": _decode_elect_req,
    "elect_ack": lambda b: ElectAck(
        frm=_require(b, "frm", int), to=_require(b, "to", int),
        time=_require(b, "time", int), granted=_require(b, "granted", bool),
    ),
    "commit_req": _decode_commit_req,
    "commit_ack": lambda b: CommitAck(
        frm=_require(b, "frm", int), to=_require(b, "to", int),
        time=_require(b, "time", int), acked_len=_require(b, "acked_len", int),
    ),
    "peer_hello": lambda b: PeerHello(nid=_require(b, "nid", int)),
    "client_request": _decode_client_request,
    "client_response": lambda b: ClientResponse(
        client_id=_require(b, "client_id", str),
        seq=_require(b, "seq", int),
        ok=_require(b, "ok", bool),
        result=_unpack(b.get("result")),
        error=_require(b, "error", (str, type(None))),
        leader_hint=_opt_int(b, "leader_hint"),
        table_version=_opt_int(b, "table_version"),
        admitted=_bool_or_false(b, "admitted"),
    ),
    "status_request": lambda b: StatusRequest(),
    "status_response": lambda b: StatusResponse(
        nid=_require(b, "nid", int),
        role=_require(b, "role", str),
        term=_require(b, "term", int),
        commit_len=_require(b, "commit_len", int),
        log_len=_require(b, "log_len", int),
        members=tuple(_require(b, "members", list)),
        leader_hint=_opt_int(b, "leader_hint"),
        base_len=_int_or_zero(b, "base_len"),
        bytes_sent=_int_or_zero(b, "bytes_sent"),
        snapshots_installed=_int_or_zero(b, "snapshots_installed"),
        reads_fast=_int_or_zero(b, "reads_fast"),
    ),
    "log_request": lambda b: LogRequest(),
    "log_response": lambda b: LogResponse(
        entries=_unpack_log(_require(b, "entries", list)),
        base_len=_int_or_zero(b, "base_len"),
    ),
    "snap_chunk": _decode_snapshot_chunk,
    "read_probe": lambda b: ReadProbe(
        frm=_require(b, "frm", int), to=_require(b, "to", int),
        probe=_require(b, "probe", int), time=_require(b, "time", int),
    ),
    "read_probe_ack": lambda b: ReadProbeAck(
        frm=_require(b, "frm", int), to=_require(b, "to", int),
        probe=_require(b, "probe", int), time=_require(b, "time", int),
    ),
    "monitor_hello": lambda b: MonitorHello(nid=_require(b, "nid", int)),
    "trace_batch": _decode_trace_batch,
    "monitor_status_request": lambda b: MonitorStatusRequest(),
    "monitor_status_response": lambda b: MonitorStatusResponse(
        ok=_require(b, "ok", bool),
        events=_int_or_zero(b, "events"),
        entries=_int_or_zero(b, "entries"),
        caches=_int_or_zero(b, "caches"),
        commits=_int_or_zero(b, "commits"),
        gaps=_int_or_zero(b, "gaps"),
        nodes=_decode_nid_tuple(b, "nodes"),
        violations=_decode_str_tuple(b, "violations"),
        bundle=_require(b, "bundle", (str, type(None))),
    ),
    "partition_request": lambda b: PartitionRequest(
        blocked=_decode_nid_tuple(b, "blocked"),
    ),
    "partition_response": lambda b: PartitionResponse(
        nid=_require(b, "nid", int),
        blocked=_decode_nid_tuple(b, "blocked"),
    ),
    "shard_ownership_request": _decode_shard_ownership,
    "shard_ownership_response": lambda b: ShardOwnershipResponse(
        nid=_require(b, "nid", int),
        version=_require(b, "version", int),
    ),
    "shard_dump_request": _decode_shard_dump_request,
    "shard_dump_response": _decode_shard_dump_response,
}


# ----------------------------------------------------------------------
# Stateless encode/decode
# ----------------------------------------------------------------------


def encode_message(msg: WireMessage) -> bytes:
    """Serialize one message to a frame *body* (version byte + JSON)."""
    try:
        kind, encoder = _ENCODERS[type(msg)]
    except KeyError:
        raise UnencodableValue(f"not a wire message: {msg!r}") from None
    body = encoder(msg)
    body["kind"] = kind
    try:
        text = json.dumps(body, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        raise UnencodableValue(str(exc)) from exc
    return bytes([PROTOCOL_VERSION]) + text.encode("utf-8")


def decode_message(payload: bytes) -> WireMessage:
    """Inverse of :func:`encode_message`; raises :class:`ProtocolError`."""
    if not payload:
        raise TruncatedFrame("empty frame body")
    if payload[0] != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"version {payload[0]}, expected {PROTOCOL_VERSION}"
        )
    try:
        body = json.loads(payload[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedFrame(f"undecodable body: {exc}") from exc
    if not isinstance(body, dict):
        raise MalformedFrame(f"body must be an object, got {body!r}")
    kind = body.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise UnknownMessageType(f"unknown kind {kind!r}")
    try:
        return decoder(body)
    except ProtocolError:
        raise
    except Exception as exc:  # belt and braces: never leak a bare error
        raise MalformedFrame(f"bad {kind} body: {exc}") from exc


def encode_frame(msg: WireMessage) -> bytes:
    """A complete frame: length prefix + versioned body."""
    payload = encode_message(msg)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"{len(payload)} bytes > {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(data: bytes, offset: int = 0) -> Tuple[WireMessage, int]:
    """Decode one frame starting at ``offset``; returns ``(message,
    next_offset)``.  Raises :class:`TruncatedFrame` when ``data`` ends
    mid-frame (the caller should read more and retry)."""
    header_end = offset + _LENGTH.size
    if len(data) < header_end:
        raise TruncatedFrame("incomplete length prefix")
    (length,) = _LENGTH.unpack_from(data, offset)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"declared length {length}")
    if len(data) < header_end + length:
        raise TruncatedFrame(
            f"frame declares {length} bytes, {len(data) - header_end} present"
        )
    payload = data[header_end : header_end + length]
    return decode_message(payload), header_end + length


# ----------------------------------------------------------------------
# Snapshot serialization (InstallSnapshot payload)
# ----------------------------------------------------------------------


def pack_snapshot(snap: Snapshot) -> str:
    """Serialize a snapshot to the JSON text shipped in chunks."""
    obj = {
        "base_len": snap.base_len,
        "last_entry": _pack_entry(snap.last_entry),
        "config": _pack(snap.config),
        "store": _pack(dict(snap.store)),
        "sessions": dict(snap.sessions),
        "config_history": [
            [index, _pack(config)] for index, config in snap.config_history
        ],
    }
    try:
        return json.dumps(obj, separators=(",", ":"), allow_nan=False)
    except (ValueError, TypeError) as exc:
        raise UnencodableValue(f"unencodable snapshot: {exc}") from exc


def unpack_snapshot(text: str) -> Snapshot:
    """Inverse of :func:`pack_snapshot`, with full shape validation."""
    try:
        obj = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise MalformedFrame(f"undecodable snapshot: {exc}") from exc
    if not isinstance(obj, dict):
        raise MalformedFrame(f"snapshot must be an object, got {obj!r}")
    base_len = _require(obj, "base_len", int)
    if base_len < 1:
        raise MalformedFrame(f"snapshot base_len {base_len} must be >= 1")
    config = _unpack(_require(obj, "config", None))
    if not isinstance(config, frozenset):
        raise MalformedFrame("snapshot config must be a frozenset")
    store = _unpack(_require(obj, "store", None))
    if not isinstance(store, dict):
        raise MalformedFrame("snapshot store must be a dict")
    sessions = _require(obj, "sessions", dict)
    if not all(
        isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
        for k, v in sessions.items()
    ):
        raise MalformedFrame("snapshot sessions must map str -> int")
    raw_history = _require(obj, "config_history", list)
    history = []
    for item in raw_history:
        if not (isinstance(item, list) and len(item) == 2
                and isinstance(item[0], int)):
            raise MalformedFrame(f"bad config_history item {item!r}")
        members = _unpack(item[1])
        if not isinstance(members, frozenset):
            raise MalformedFrame(f"bad config_history members {item!r}")
        history.append((item[0], members))
    return Snapshot(
        base_len=base_len,
        last_entry=_unpack_entry(_require(obj, "last_entry", list)),
        config=config,
        store=store,
        sessions=dict(sessions),
        config_history=tuple(history),
    )


def snapshot_chunks(snap: Snapshot) -> List[SnapshotChunk]:
    """Split a snapshot into its wire chunks."""
    text = pack_snapshot(snap)
    parts = [
        text[i : i + SNAPSHOT_CHUNK_CHARS]
        for i in range(0, len(text), SNAPSHOT_CHUNK_CHARS)
    ] or [""]
    if len(parts) > MAX_SNAPSHOT_CHUNKS:
        raise FrameTooLarge(
            f"snapshot needs {len(parts)} chunks > {MAX_SNAPSHOT_CHUNKS}"
        )
    sid = snap.sid
    return [
        SnapshotChunk(sid=sid, seq=i, n=len(parts), data=part)
        for i, part in enumerate(parts)
    ]


# ----------------------------------------------------------------------
# Per-connection log-delta layer
# ----------------------------------------------------------------------


def _common_prefix_len(a: Log, b: Log) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


class DeltaEncoder:
    """Sender half of the per-connection log compression.

    For log-carrying messages, substitutes the full log with
    ``{"p": shared_prefix_len, "s": suffix}`` relative to the last log
    sent on this connection.  Everything else passes through
    :func:`encode_message` untouched.

    Compact logs additionally reference their snapshot by id
    (``"b"``); the first frame carrying a given snapshot is preceded by
    its :class:`SnapshotChunk` frames (so ``encode`` may return several
    concatenated frames -- callers write the bytes to the stream as
    one unit).  ``"p"`` stays an *absolute* entry count; for a compact
    log it is at least the snapshot's ``base_len``.
    """

    def __init__(self) -> None:
        self._last: Log = ()
        #: Snapshot ids already shipped on this connection.
        self._shipped: set = set()

    def encode(self, msg: WireMessage) -> bytes:
        if not isinstance(msg, (ElectReq, CommitReq)):
            frame = encode_frame(msg)
            return frame
        log = msg.log
        preamble = b""
        body = {
            "kind": "delta_" + ("elect_req" if isinstance(msg, ElectReq)
                                 else "commit_req"),
            "frm": msg.frm,
            "to": msg.to,
            "time": msg.time,
        }
        if isinstance(log, CompactLog):
            snap = log.snap
            if snap.sid not in self._shipped:
                preamble = b"".join(
                    encode_frame(chunk) for chunk in snapshot_chunks(snap)
                )
                self._shipped.add(snap.sid)
            if (isinstance(self._last, CompactLog)
                    and self._last.snap.sid == snap.sid):
                prefix = snap.base_len + _common_prefix_len(
                    self._last.tail, log.tail
                )
            else:
                # New snapshot on this connection (or the peer last saw
                # a plain log): nothing beyond the snapshot is shared.
                prefix = snap.base_len
            body["b"] = snap.sid
        elif isinstance(self._last, CompactLog):
            # Compact -> plain transition (e.g. a partitioned node that
            # never compacted won an election): full reship.
            prefix = 0
        else:
            prefix = _common_prefix_len(self._last, log)
        self._last = log
        body["p"] = prefix
        body["s"] = _pack_log(log[prefix:])
        if isinstance(msg, CommitReq):
            body["commit_len"] = msg.commit_len
        try:
            text = json.dumps(body, separators=(",", ":"), allow_nan=False)
        except ValueError as exc:
            raise UnencodableValue(str(exc)) from exc
        payload = bytes([PROTOCOL_VERSION]) + text.encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise FrameTooLarge(f"{len(payload)} bytes > {MAX_FRAME_BYTES}")
        return preamble + _LENGTH.pack(len(payload)) + payload


class DeltaDecoder:
    """Receiver half: reconstructs full logs from delta frames.

    A delta frame whose shared prefix exceeds what this connection has
    seen is a :class:`MalformedFrame` (it can only happen if sender and
    receiver state diverged, which the connection-scoped lifetime and
    TCP ordering rule out short of a bug or corruption).

    :class:`SnapshotChunk` frames are absorbed into per-connection
    reassembly state and yield ``None`` (no message for the handlers);
    a delta frame referencing snapshot ``"b"`` reconstructs a
    :class:`~repro.net.snapshot.CompactLog` over the assembled
    snapshot.  The assembled snapshot's recomputed sid must match the
    declared one -- corruption is caught at the wire, not in the
    handlers.
    """

    #: Reassembly buffers / installed snapshots kept per connection.
    _MAX_PENDING = 2
    _MAX_INSTALLED = 4

    def __init__(self) -> None:
        self._last: Log = ()
        self._pending: Dict[str, Dict] = {}
        self._snapshots: Dict[str, Snapshot] = {}
        #: Fully assembled snapshots on this connection (observability).
        self.snapshots_installed = 0

    def _absorb_chunk(self, chunk: SnapshotChunk) -> None:
        state = self._pending.get(chunk.sid)
        if state is None:
            while len(self._pending) >= self._MAX_PENDING:
                self._pending.pop(next(iter(self._pending)))
            state = self._pending[chunk.sid] = {"n": chunk.n, "parts": {}}
        if chunk.n != state["n"]:
            self._pending.pop(chunk.sid, None)
            raise MalformedFrame(
                f"inconsistent chunk count for snapshot {chunk.sid}"
            )
        state["parts"][chunk.seq] = chunk.data
        if len(state["parts"]) < state["n"]:
            return
        text = "".join(state["parts"][i] for i in range(state["n"]))
        self._pending.pop(chunk.sid)
        snap = unpack_snapshot(text)
        if snap.sid != chunk.sid:
            raise MalformedFrame(
                f"snapshot integrity failure: assembled {snap.sid}, "
                f"declared {chunk.sid}"
            )
        while len(self._snapshots) >= self._MAX_INSTALLED:
            self._snapshots.pop(next(iter(self._snapshots)))
        self._snapshots[chunk.sid] = snap
        self.snapshots_installed += 1

    def decode(self, payload: bytes) -> Optional[WireMessage]:
        if not payload:
            raise TruncatedFrame("empty frame body")
        if payload[0] != PROTOCOL_VERSION:
            raise VersionMismatch(
                f"version {payload[0]}, expected {PROTOCOL_VERSION}"
            )
        try:
            body = json.loads(payload[1:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MalformedFrame(f"undecodable body: {exc}") from exc
        if not isinstance(body, dict):
            raise MalformedFrame(f"body must be an object, got {body!r}")
        kind = body.get("kind")
        if kind == "snap_chunk":
            self._absorb_chunk(decode_message(payload))
            return None
        if kind not in ("delta_elect_req", "delta_commit_req"):
            return decode_message(payload)
        prefix = _require(body, "p", int)
        suffix = _unpack_log(_require(body, "s", list))
        sid = body.get("b")
        if sid is not None:
            if not isinstance(sid, str):
                raise MalformedFrame(f"snapshot reference {sid!r} not a str")
            snap = self._snapshots.get(sid)
            if snap is None:
                raise MalformedFrame(
                    f"delta references uninstalled snapshot {sid}"
                )
            if (isinstance(self._last, CompactLog)
                    and self._last.snap.sid == sid):
                reusable = self._last.tail
            else:
                reusable = ()
            if not snap.base_len <= prefix <= snap.base_len + len(reusable):
                raise MalformedFrame(
                    f"delta prefix {prefix} incompatible with snapshot "
                    f"{sid} (+{len(reusable)} shared tail entries)"
                )
            log = CompactLog(snap, reusable[: prefix - snap.base_len] + suffix)
        else:
            if prefix < 0 or prefix > len(self._last):
                raise MalformedFrame(
                    f"delta prefix {prefix} exceeds connection state "
                    f"({len(self._last)} entries)"
                )
            if isinstance(self._last, CompactLog):
                if prefix != 0:
                    raise MalformedFrame(
                        f"plain delta prefix {prefix} over snapshotted "
                        f"connection state"
                    )
                log = suffix
            else:
                log = self._last[:prefix] + suffix
        self._last = log
        if kind == "delta_elect_req":
            return ElectReq(
                frm=_require(body, "frm", int),
                to=_require(body, "to", int),
                time=_require(body, "time", int),
                log=log,
            )
        return CommitReq(
            frm=_require(body, "frm", int),
            to=_require(body, "to", int),
            time=_require(body, "time", int),
            log=log,
            commit_len=_require(body, "commit_len", int),
        )
