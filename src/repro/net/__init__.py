"""repro.net -- the real-network runtime (the paper's extraction analog).

The paper's evaluation does not run inside a simulator: the verified
Raft specification is extracted to OCaml and serves real client
traffic on an EC2 cluster while the membership reconfigures (Section
7, Fig. 16).  This package is the reproduction's analog of that step:
the *same unmodified* specification handlers
(:class:`repro.raft.server.Server`) run as live OS processes speaking
a framed wire protocol over asyncio TCP, driven by the *same*
election/heartbeat policy (:class:`repro.runtime.driver.ElectionDriver`)
the simulator uses.

* :mod:`repro.net.wire` -- length-prefixed, versioned codec for every
  spec message plus client RPCs, with a :class:`ProtocolError`
  taxonomy (malformed frames never crash a node), a per-connection
  log-delta layer (the transport ships log suffixes, handlers still
  see full logs), and chunked InstallSnapshot frames for compacted
  logs;
* :mod:`repro.net.snapshot` -- Raft log compaction: the committed
  prefix folds into a :class:`~repro.net.snapshot.Snapshot` behind a
  :class:`~repro.net.snapshot.CompactLog`, which the unmodified spec
  handlers keep operating on (absolute indices, loud failure on any
  elided access);
* :mod:`repro.net.node` -- one asyncio event loop per process hosting
  one ``Server``: per-peer outbound connections with reconnect,
  capped exponential backoff and bounded outboxes, plus the shared
  election driver on wall-clock timers;
* :mod:`repro.net.client` -- blocking-socket client with leader
  discovery, NotLeader redirects, ``(client_id, seq)`` at-most-once
  request ids, and :class:`repro.runtime.history.History` recording;
* :mod:`repro.net.procs` -- spawn/health-check/tear down a localhost
  cluster of node subprocesses (ephemeral ports, reaped children);
* ``python -m repro.net`` -- node / client / demo subcommands.
"""

from .client import ClientError, NetClient
from .node import NodeConfig, NetNode, run_node
from .procs import LocalCluster, NodeHandle, allocate_ports
from .snapshot import CompactLog, CompactServer, Snapshot, SnapshotElided
from .wire import (
    ClientRequest,
    ClientResponse,
    FrameTooLarge,
    LogRequest,
    LogResponse,
    MalformedFrame,
    PeerHello,
    ProtocolError,
    ReadProbe,
    ReadProbeAck,
    SnapshotChunk,
    StatusRequest,
    StatusResponse,
    TruncatedFrame,
    UnencodableValue,
    UnknownMessageType,
    VersionMismatch,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    pack_snapshot,
    unpack_snapshot,
)

__all__ = [
    "ClientError",
    "ClientRequest",
    "ClientResponse",
    "CompactLog",
    "CompactServer",
    "FrameTooLarge",
    "LocalCluster",
    "LogRequest",
    "LogResponse",
    "MalformedFrame",
    "NetClient",
    "NetNode",
    "NodeConfig",
    "NodeHandle",
    "PeerHello",
    "ProtocolError",
    "ReadProbe",
    "ReadProbeAck",
    "Snapshot",
    "SnapshotChunk",
    "SnapshotElided",
    "StatusRequest",
    "StatusResponse",
    "TruncatedFrame",
    "UnencodableValue",
    "UnknownMessageType",
    "VersionMismatch",
    "allocate_ports",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
    "pack_snapshot",
    "run_node",
    "unpack_snapshot",
]
