"""A synchronous TCP client for the real-network runtime.

The operational loop mirrors the PR-2 failover driver, but over
sockets: every command is stamped with a ``(client_id, seq)`` request
id before the first attempt, so however many times it is retried --
across timeouts, dead leaders, and ``not-leader`` redirects -- the
cluster applies it **at most once** (the leader recognizes the id in
its log and waits for the existing entry instead of re-appending).

Leader discovery is hint-driven: any node answers a
:class:`~repro.net.wire.StatusRequest` with its best ``leader_hint``,
and a ``not-leader`` refusal carries one too; the client follows hints
and falls back to round-robin probing when they go stale.

Every kvstore operation is recorded into a
:class:`repro.runtime.history.History` with wall-clock timestamps:
``invoke`` before the first attempt, ``complete`` only on a definitive
response.  An operation that exhausts its deadline stays *pending* --
its outcome is unknown (it may commit later), which is exactly the
Jepsen-style semantics the Wing-Gong checker
(:mod:`repro.runtime.linearize`) expects.
"""

from __future__ import annotations

import dataclasses
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..runtime.history import History, Operation
from .wire import (
    ClientRequest,
    ClientResponse,
    LogRequest,
    LogResponse,
    MAX_FRAME_BYTES,
    PartitionRequest,
    PartitionResponse,
    ProtocolError,
    ShardDumpRequest,
    ShardDumpResponse,
    ShardOwnershipRequest,
    ShardOwnershipResponse,
    StatusRequest,
    StatusResponse,
    decode_message,
    encode_frame,
)


def now_ms() -> float:
    return time.monotonic() * 1000.0


class ClientError(Exception):
    """A definitive, non-retryable failure (e.g. a denied reconfig)."""


class ClientTimeout(ClientError):
    """The operation's outcome is unknown: every attempt timed out."""


class WrongShard(ClientError):
    """The group refused the key: it does not own it (any more).

    Definitive and *safe to retry elsewhere*: the refusal happens at
    admission, before anything enters the log, so the command was not
    applied.  ``table_version`` is the refusing node's ownership
    version -- a routing-aware caller (:class:`repro.shard.client.
    ShardClient`) refetches at least that table version and re-routes.

    :meth:`NetClient.request` only raises this when **every** attempt
    of the request ended in a definitive pre-admission refusal.  If any
    attempt was ambiguous -- it timed out or errored after the request
    may have reached a node, or a dethroned leader bounced it *after*
    appending it (``admitted`` refusals) -- the command may sit in some
    log and commit later, so a wrong-shard reply from one node proves
    nothing group-wide: the request keeps retrying in-group (the dedup
    path can still surface the committed result) and exhaustion raises
    :class:`ClientTimeout`, never this.  Re-routing an ambiguous
    command to another group would let it apply twice.
    """

    def __init__(self, message: str, table_version: Optional[int] = None):
        super().__init__(message)
        self.table_version = table_version


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket):
    header = _recv_exact(sock, 4)
    length = int.from_bytes(header, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length}")
    return decode_message(_recv_exact(sock, length))


class NetClient:
    """A blocking client of a :mod:`repro.net` cluster."""

    def __init__(
        self,
        addresses: Dict[int, Tuple[str, int]],
        client_id: str = "client-0",
        history: Optional[History] = None,
        request_timeout_s: float = 1.0,
        total_timeout_s: float = 20.0,
        retry_delay_s: float = 0.02,
        max_attempts: Optional[int] = None,
    ) -> None:
        if not addresses:
            raise ValueError("need at least one node address")
        self.addresses = dict(addresses)
        self.client_id = client_id
        self.history = history if history is not None else History()
        self.request_timeout_s = request_timeout_s
        self.total_timeout_s = total_timeout_s
        self.retry_delay_s = retry_delay_s
        #: Per-operation attempt cap (None: deadline-bound only).  A
        #: one-shot CLI invocation against a fully-down cluster fails
        #: after this many tries instead of spinning out the deadline.
        self.max_attempts = max_attempts
        self._seq = 0
        self._leader_guess: Optional[int] = None
        self._conns: Dict[int, socket.socket] = {}
        #: Per-op retry counts, for reporting.
        self.retries = 0

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _connect(
        self, nid: int, timeout_s: Optional[float] = None
    ) -> socket.socket:
        sock = self._conns.get(nid)
        if sock is not None:
            return sock
        host, port = self.addresses[nid]
        # ``is None``, not truthiness: an explicit ``timeout_s=0.0`` (or
        # a sub-ms clamped remainder rounding to 0.0) must stay 0.0 --
        # ``or`` would silently replace it with the full default and
        # defeat the total-deadline clamp in :meth:`request`.
        sock = socket.create_connection(
            (host, port),
            timeout=(
                timeout_s if timeout_s is not None else self.request_timeout_s
            ),
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._conns[nid] = sock
        return sock

    def _drop(self, nid: int) -> None:
        sock = self._conns.pop(nid, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass

    def close(self) -> None:
        for nid in list(self._conns):
            self._drop(nid)

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Raw RPCs
    # ------------------------------------------------------------------

    def _rpc(self, nid: int, message, timeout_s: Optional[float] = None):
        """One request/response exchange; connection errors propagate
        (after dropping the cached socket)."""
        try:
            sock = self._connect(nid, timeout_s)
            sock.settimeout(
                timeout_s if timeout_s is not None else self.request_timeout_s
            )
            sock.sendall(encode_frame(message))
            return _recv_frame(sock)
        except (OSError, ProtocolError, ConnectionError):
            self._drop(nid)
            raise

    def status(self, nid: int) -> Optional[StatusResponse]:
        """Probe one node; ``None`` when it is unreachable."""
        try:
            reply = self._rpc(nid, StatusRequest())
        except (OSError, ProtocolError, ConnectionError):
            return None
        return reply if isinstance(reply, StatusResponse) else None

    def committed_log(self, nid: int):
        """A node's committed log entries (for cross-node safety
        checks); ``None`` when unreachable.  After compaction only the
        tail past the snapshot is available -- use
        :meth:`committed_tail` when offsets matter."""
        tail = self.committed_tail(nid)
        return tail[0] if tail is not None else None

    def committed_tail(self, nid: int):
        """``(entries, base_len)``: a node's committed entries from
        absolute index ``base_len`` on; ``None`` when unreachable."""
        try:
            reply = self._rpc(nid, LogRequest(), timeout_s=5.0)
        except (OSError, ProtocolError, ConnectionError):
            return None
        if not isinstance(reply, LogResponse):
            return None
        return reply.entries, reply.base_len

    def find_leader(self) -> Optional[int]:
        """Probe every node and return the highest-term live leader."""
        best: Optional[Tuple[int, int]] = None
        hints: List[int] = []
        for nid in sorted(self.addresses):
            reply = self.status(nid)
            if reply is None:
                continue
            if reply.role == "leader":
                if best is None or reply.term > best[0]:
                    best = (reply.term, nid)
            elif reply.leader_hint is not None:
                hints.append(reply.leader_hint)
        if best is not None:
            self._leader_guess = best[1]
            return best[1]
        for hint in hints:
            if hint in self.addresses:
                self._leader_guess = hint
                return hint
        return None

    # ------------------------------------------------------------------
    # The at-most-once request loop
    # ------------------------------------------------------------------

    def request(
        self,
        command: Tuple,
        operation: Optional[Operation] = None,
        table_version: Optional[int] = None,
    ):
        """Submit one command until a definitive response or deadline.

        Returns the result value on success.  Raises
        :class:`ClientTimeout` when the outcome is unknown,
        :class:`WrongShard` when the group refuses the key at admission
        (safe to re-route), and :class:`ClientError` on any other
        definitive refusal.  ``operation`` (an open history record) is
        completed only on success.  ``table_version`` stamps the
        request with the routing-table version the caller routed by.

        Targeting: the current leader guess first; a refusal or failure
        updates or clears the guess, falling back to round-robin
        probing of every node.
        """
        seq = self._seq
        self._seq += 1
        request = ClientRequest(
            client_id=self.client_id, seq=seq, command=command,
            table_version=table_version,
        )
        deadline = time.monotonic() + self.total_timeout_s
        ordered = sorted(self.addresses)
        first = True
        probe = 0
        attempts = 0
        # Whether any attempt of *this* request ended ambiguously: the
        # request may have reached a node (sent but no definitive
        # reply), or a dethroned leader bounced it after appending it.
        # Once set, the command may sit in a log and commit later, so
        # "wrong-shard" from one node stops proving group-wide
        # non-admission and must surface as ClientTimeout, never as a
        # re-routable WrongShard (a cross-group retry could apply the
        # command twice).
        maybe_admitted = False
        while time.monotonic() < deadline:
            if self.max_attempts is not None and attempts >= self.max_attempts:
                raise ClientTimeout(
                    f"{command!r}: no definitive response after "
                    f"{attempts} attempts"
                )
            attempts += 1
            if self._leader_guess in self.addresses:
                nid = self._leader_guess
            else:
                nid = ordered[probe % len(ordered)]
                probe += 1
            if not first:
                self.retries += 1
                time.sleep(
                    min(self.retry_delay_s, max(0.0, deadline - time.monotonic()))
                )
            first = False
            # Clamp the attempt to the remaining total budget: an
            # unclamped per-attempt timeout lets the last attempt
            # overshoot ``total_timeout_s`` by up to a full
            # ``request_timeout_s`` (connect + recv).
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            budget = min(self.request_timeout_s, remaining)
            # Connect separately from send/recv: a connection that
            # never came up is a *definitive* non-delivery, while any
            # failure after it (timeout, reset, garbage) leaves the
            # attempt's fate unknown.
            try:
                self._connect(nid, timeout_s=budget)
            except (OSError, ConnectionError):
                if self._leader_guess == nid:
                    self._leader_guess = None
                continue
            try:
                reply = self._rpc(nid, request, timeout_s=budget)
            except (OSError, ProtocolError, ConnectionError):
                # The request may have reached the node before the
                # failure: ambiguous.  Forget a guess that failed us
                # and move on to the next candidate.
                maybe_admitted = True
                if self._leader_guess == nid:
                    self._leader_guess = None
                continue
            if not isinstance(reply, ClientResponse) or reply.seq != seq:
                # Stale frame from an abandoned attempt; this attempt's
                # own request went out and its reply is lost: ambiguous.
                maybe_admitted = True
                self._drop(nid)
                continue
            if reply.admitted:
                # The command entered a log before this refusal (a
                # dethroned leader's bounce): it may still commit.
                maybe_admitted = True
            if reply.ok:
                if operation is not None:
                    self.history.complete(operation, now_ms(), reply.result)
                self._leader_guess = nid
                return reply.result
            if reply.error == "not-leader":
                self._leader_guess = (
                    reply.leader_hint
                    if reply.leader_hint in self.addresses
                    and reply.leader_hint != nid
                    else None
                )
                continue
            if reply.error == "retry":
                self._leader_guess = nid
                continue
            if reply.error == "wrong-shard":
                if maybe_admitted:
                    # This node refused at admission, but an earlier
                    # attempt may have landed the command in another
                    # node's log pre-freeze.  Keep retrying in-group:
                    # at-most-once beats ownership, so a node holding
                    # the entry serves its outcome; if none does, the
                    # deadline surfaces ClientTimeout (never re-routed).
                    self._leader_guess = None
                    continue
                raise WrongShard(
                    f"{command!r} refused: group does not own the key "
                    f"(node table version {reply.table_version})",
                    table_version=reply.table_version,
                )
            raise ClientError(f"{command!r} refused: {reply.error}")
        raise ClientTimeout(f"{command!r}: outcome unknown after deadline")

    # ------------------------------------------------------------------
    # The kvstore surface (history-recorded)
    # ------------------------------------------------------------------

    def _op(self, op: str, key: str, value: Any, command: Tuple):
        operation = self.history.invoke(
            self.client_id, op, key, value, now_ms()
        )
        return self.request(command, operation=operation)

    def put(self, key: str, value: Any):
        return self._op("put", key, value, ("put", key, value))

    def add(self, key: str, delta: int = 1):
        return self._op("add", key, delta, ("add", key, delta))

    def delete(self, key: str):
        return self._op("delete", key, None, ("delete", key))

    def get(self, key: str):
        return self._op("get", key, None, ("get", key))

    def reconfigure(self, members: Iterable[int]):
        """Change the membership (not a kvstore op: no history record)."""
        return self.request(("reconfig", frozenset(members)))

    # ------------------------------------------------------------------
    # Directed operations (fault-injection drivers)
    # ------------------------------------------------------------------

    def request_direct(
        self, nid: int, command: Tuple, timeout_s: Optional[float] = None
    ) -> ClientResponse:
        """One attempt against one *specific* node: no redirects, no
        retries, no history record.  Partition-schedule drivers need to
        ask a particular replica to act (e.g. a reconfig at an isolated
        leader) and to see its verbatim refusal; socket errors and
        timeouts propagate."""
        seq = self._seq
        self._seq += 1
        reply = self._rpc(
            nid,
            ClientRequest(
                client_id=self.client_id, seq=seq, command=command
            ),
            timeout_s=timeout_s,
        )
        if not isinstance(reply, ClientResponse):
            raise ProtocolError(f"unexpected reply {type(reply).__name__}")
        return reply

    def partition(self, nid: int, blocked: Iterable[int]):
        """Replace node ``nid``'s blocked-peer set (admin fault
        injection; an empty set heals).  Returns the ack or raises."""
        reply = self._rpc(
            nid, PartitionRequest(blocked=tuple(sorted(blocked))),
            timeout_s=5.0,
        )
        if not isinstance(reply, PartitionResponse):
            raise ProtocolError(f"unexpected reply {type(reply).__name__}")
        return reply

    def shard_ownership(
        self, nid: int, version: int, ranges: Iterable[Tuple[int, int]]
    ) -> ShardOwnershipResponse:
        """Push an ownership fact to node ``nid``: at routing-table
        ``version`` this group owns exactly ``ranges`` (hash-space
        ``[lo, hi)`` pairs).  The node refuses keyed commands outside
        them with ``"wrong-shard"``.  Returns the ack or raises."""
        reply = self._rpc(
            nid,
            ShardOwnershipRequest(
                version=version,
                ranges=tuple((lo, hi) for lo, hi in ranges),
            ),
            timeout_s=5.0,
        )
        if not isinstance(reply, ShardOwnershipResponse):
            raise ProtocolError(f"unexpected reply {type(reply).__name__}")
        return reply

    def shard_dump(
        self, nid: int, lo: int, hi: int, timeout_s: float = 10.0
    ) -> ShardDumpResponse:
        """Ask node ``nid`` for its *applied committed* kvstore entries
        whose keys hash into ``[lo, hi)`` (migration drain).  The reply
        carries the node's role and log/commit lengths so the caller
        can insist on a quiesced leader.  Returns the dump or raises."""
        reply = self._rpc(
            nid, ShardDumpRequest(lo=lo, hi=hi), timeout_s=timeout_s
        )
        if not isinstance(reply, ShardDumpResponse):
            raise ProtocolError(f"unexpected reply {type(reply).__name__}")
        return reply


def merge_histories(histories: Iterable[History]) -> History:
    """Merge per-client histories into one checkable record.

    Monotonic timestamps from one process are comparable across
    threads, so concatenation plus re-numbering preserves real-time
    order; op_ids are re-assigned to stay unique.  The sources are left
    untouched: renumbering happens on *copies*, so a history can be
    merged (e.g. per-group first, then across groups) any number of
    times without corrupting the originals' op_ids.
    """
    merged = History()
    operations = [
        op for history in histories for op in history.operations
    ]
    operations.sort(key=lambda op: op.invoked_ms)
    for op_id, op in enumerate(operations):
        merged.operations.append(dataclasses.replace(op, op_id=op_id))
    return merged
