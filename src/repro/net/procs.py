"""Spawn, health-check, and tear down a localhost cluster.

Each node is a real OS process (``python -m repro.net node ...``), so
a "leader kill" here is ``SIGKILL`` delivered to a live process, not a
simulator flag.  Two flakiness sources ISSUE 4 calls out are handled
centrally:

* **No hardcoded ports**: :func:`allocate_ports` binds the requested
  number of sockets to port 0 *simultaneously* (so the OS hands out
  distinct ports) and releases them just before spawning.  A node that
  still loses the race fails to bind, which health-checking surfaces
  within the startup deadline instead of as a hang.
* **No orphaned children**: :class:`LocalCluster` is a context manager
  whose exit path terminates every live child, waits with a deadline,
  and escalates to ``SIGKILL`` -- including when the owning test is
  failing, so no node processes leak across tests.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .client import NetClient


def allocate_ports(n: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``n`` distinct ephemeral ports.

    All sockets are held open while the OS assigns, so no two calls
    inside one allocation can collide; the small close-to-bind window
    before the node process binds is the standard localhost trade-off,
    and bind failures surface via the health-check deadline.
    """
    socks = []
    try:
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            socks.append(sock)
        return [sock.getsockname()[1] for sock in socks]
    finally:
        for sock in socks:
            sock.close()


def _repro_pythonpath() -> str:
    """A PYTHONPATH that lets child processes import ``repro``,
    regardless of how the parent found it."""
    import repro

    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = os.environ.get("PYTHONPATH", "")
    if existing:
        return os.pathsep.join([package_dir, existing])
    return package_dir


@dataclass
class NodeHandle:
    """One spawned node process."""

    nid: int
    host: str
    port: int
    log_path: str
    process: Optional[subprocess.Popen] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def log_text(self) -> str:
        try:
            with open(self.log_path) as handle:
                return handle.read()
        except OSError:
            return ""


@dataclass
class LocalCluster:
    """A cluster of localhost node subprocesses.

    ``conf0`` defaults to all of ``nids``; pass a smaller initial
    configuration to spawn standby processes that join later via
    reconfiguration (the Fig. 16 trajectory needs live-but-unconfigured
    nodes).
    """

    nids: Tuple[int, ...] = (1, 2, 3)
    conf0: Optional[frozenset] = None
    host: str = "127.0.0.1"
    heartbeat_ms: float = 25.0
    election_timeout_min_ms: float = 100.0
    election_timeout_max_ms: float = 200.0
    seed: int = 0
    log_dir: Optional[str] = None
    startup_timeout_s: float = 10.0
    #: Per-node compaction threshold (0 disables snapshotting).
    snapshot_threshold: int = 1024
    #: Per-tick append batching (False: PR 4 broadcast-per-request).
    batching: bool = True
    #: ReadIndex reads (False: PR 4 reads-through-the-log).
    read_index: bool = True
    #: Server semantics the nodes host ("raft" or "buggy" -- the
    #: pre-fix algorithm with the R3 guard off).
    spec: str = "raft"
    #: Spawn a ``repro.monitor`` process and point every node at it.
    monitor: bool = False
    #: Where the monitor writes its violation bundle (defaults to the
    #: cluster's log dir).
    bundle_dir: Optional[str] = None
    handles: Dict[int, NodeHandle] = field(default_factory=dict)
    monitor_handle: Optional[NodeHandle] = field(default=None, repr=False)
    _tempdir: Optional[tempfile.TemporaryDirectory] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        self.nids = tuple(sorted(self.nids))
        if self.conf0 is None:
            self.conf0 = frozenset(self.nids)
        self.conf0 = frozenset(self.conf0)
        if not self.conf0 <= set(self.nids):
            raise ValueError("conf0 must be a subset of the spawned nodes")
        if self.log_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-net-")
            self.log_dir = self._tempdir.name
        else:
            os.makedirs(self.log_dir, exist_ok=True)
        ports = allocate_ports(len(self.nids) + (1 if self.monitor else 0),
                               self.host)
        for nid, port in zip(self.nids, ports):
            self.handles[nid] = NodeHandle(
                nid=nid,
                host=self.host,
                port=port,
                log_path=os.path.join(self.log_dir, f"node-{nid}.log"),
            )
        if self.monitor:
            if self.bundle_dir is None:
                self.bundle_dir = self.log_dir
            self.monitor_handle = NodeHandle(
                nid=0,
                host=self.host,
                port=ports[-1],
                log_path=os.path.join(self.log_dir, "monitor.log"),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def addresses(self) -> Dict[int, Tuple[str, int]]:
        return {
            nid: (handle.host, handle.port)
            for nid, handle in self.handles.items()
        }

    def _peer_spec(self) -> str:
        return ",".join(
            f"{nid}={handle.host}:{handle.port}"
            for nid, handle in sorted(self.handles.items())
        )

    def spawn(self, nid: int) -> NodeHandle:
        handle = self.handles[nid]
        if handle.alive:
            return handle
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        log_file = open(handle.log_path, "ab")
        handle.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.net", "node",
                "--nid", str(nid),
                "--host", handle.host,
                "--port", str(handle.port),
                "--peers", self._peer_spec(),
                "--conf", ",".join(str(n) for n in sorted(self.conf0)),
                "--heartbeat-ms", str(self.heartbeat_ms),
                "--election-min-ms", str(self.election_timeout_min_ms),
                "--election-max-ms", str(self.election_timeout_max_ms),
                "--seed", str(self.seed * 1000 + nid),
                "--snapshot-threshold", str(self.snapshot_threshold),
            ]
            + ([] if self.batching else ["--no-batch"])
            + ([] if self.read_index else ["--no-read-index"])
            + ([] if self.spec == "raft" else ["--spec", self.spec])
            + (
                ["--monitor",
                 f"{self.monitor_handle.host}:{self.monitor_handle.port}"]
                if self.monitor_handle is not None else []
            ),
            stdout=log_file,
            stderr=subprocess.STDOUT,
            env=env,
            start_new_session=True,  # never die with the parent's tty
        )
        log_file.close()  # the child holds its own descriptor
        return handle

    def spawn_monitor(self) -> NodeHandle:
        handle = self.monitor_handle
        if handle is None or handle.alive:
            return handle
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        log_file = open(handle.log_path, "ab")
        handle.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.monitor", "serve",
                "--host", handle.host,
                "--port", str(handle.port),
                "--conf", ",".join(str(n) for n in sorted(self.conf0)),
                "--nodes", ",".join(str(n) for n in self.nids),
                "--bundle-dir", self.bundle_dir,
            ],
            stdout=log_file,
            stderr=subprocess.STDOUT,
            env=env,
            start_new_session=True,
        )
        log_file.close()
        return handle

    def start(self) -> "LocalCluster":
        if self.monitor:
            # The monitor comes up first so no node burns its startup
            # window in export-reconnect backoff.
            self.spawn_monitor()
        for nid in self.nids:
            self.spawn(nid)
        self.wait_healthy()
        return self

    def monitor_status(self, timeout_s: float = 5.0):
        """The monitor's live verdict (a
        :class:`~repro.net.wire.MonitorStatusResponse`), or ``None``
        when no monitor is attached or it is unreachable."""
        if self.monitor_handle is None:
            return None
        from ..monitor.service import monitor_status

        return monitor_status(
            self.monitor_handle.host, self.monitor_handle.port,
            timeout_s=timeout_s,
        )

    def wait_healthy(self, timeout_s: Optional[float] = None) -> None:
        """Block until every spawned node answers a status probe."""
        deadline = time.monotonic() + (timeout_s or self.startup_timeout_s)
        if self.monitor_handle is not None:
            while (time.monotonic() < deadline
                   and self.monitor_status(timeout_s=0.5) is None):
                time.sleep(0.05)
        pending = set(self.nids)
        with self.client(client_id="health-check") as probe:
            while pending and time.monotonic() < deadline:
                for nid in sorted(pending):
                    handle = self.handles[nid]
                    if handle.process is not None and not handle.alive:
                        raise RuntimeError(
                            f"node {nid} exited during startup "
                            f"(rc={handle.process.returncode}):\n"
                            f"{handle.log_text()[-2000:]}"
                        )
                    if probe.status(nid) is not None:
                        pending.discard(nid)
                if pending:
                    time.sleep(0.05)
        if pending:
            raise RuntimeError(
                f"nodes {sorted(pending)} not healthy within deadline"
            )

    def client(self, **kwargs) -> NetClient:
        return NetClient(self.addresses, **kwargs)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------

    def kill(self, nid: int) -> None:
        """SIGKILL: the real-world analog of the simulator's crash()."""
        handle = self.handles[nid]
        if handle.alive:
            handle.process.kill()
            handle.process.wait(timeout=5)

    def wait_for_leader(
        self, timeout_s: float = 10.0, exclude: Iterable[int] = ()
    ) -> int:
        """Poll until some live node reports itself leader."""
        excluded = set(exclude)
        deadline = time.monotonic() + timeout_s
        with self.client(client_id="leader-probe") as probe:
            while time.monotonic() < deadline:
                leader = probe.find_leader()
                if leader is not None and leader not in excluded:
                    return leader
                time.sleep(0.05)
        raise RuntimeError("no leader emerged within deadline")

    # ------------------------------------------------------------------
    # Teardown (reaps children even on test failure)
    # ------------------------------------------------------------------

    def shutdown(self, grace_s: float = 5.0) -> Dict[int, Optional[int]]:
        """Terminate every live child; escalate to SIGKILL after
        ``grace_s``.  Returns exit codes.  Idempotent."""
        for handle in self.handles.values():
            if handle.alive:
                try:
                    handle.process.terminate()
                except ProcessLookupError:  # pragma: no cover - exit race
                    pass
        deadline = time.monotonic() + grace_s
        for handle in self.handles.values():
            if handle.process is None:
                continue
            remaining = max(0.05, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                try:
                    os.killpg(
                        os.getpgid(handle.process.pid), signal.SIGKILL
                    )
                except (ProcessLookupError, PermissionError):
                    handle.process.kill()
                handle.process.wait(timeout=5)
        # The monitor goes last so every node's final batches land.
        monitor = self.monitor_handle
        if monitor is not None and monitor.process is not None:
            if monitor.alive:
                try:
                    monitor.process.terminate()
                except ProcessLookupError:  # pragma: no cover - exit race
                    pass
            try:
                monitor.process.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                monitor.process.kill()
                monitor.process.wait(timeout=5)
        return {
            nid: (handle.process.returncode if handle.process else None)
            for nid, handle in self.handles.items()
        }

    def logs(self) -> Dict[int, str]:
        out = {
            nid: handle.log_text() for nid, handle in self.handles.items()
        }
        if self.monitor_handle is not None:
            out[0] = self.monitor_handle.log_text()
        return out

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
        if self._tempdir is not None and exc[0] is None:
            self._tempdir.cleanup()
