"""One spec replica as a live asyncio TCP process.

A :class:`NetNode` hosts exactly one **unmodified**
:class:`repro.raft.server.Server` -- the same pure handlers the
simulator schedules -- and supplies everything the spec abstracts
away on a real network:

* **Timers**: the shared :class:`repro.runtime.driver.ElectionDriver`
  (identical policy to the simulator) armed against the asyncio clock
  (``loop.call_later``), so election timeouts and heartbeat chains run
  on wall-clock milliseconds.
* **Transport**: one listening socket; per-peer *outbound* connections
  with reconnect, capped exponential backoff, and a bounded outbox
  that sheds the oldest message under overload (the spec ships full
  logs, so the newest message always supersedes a shed one).
  Log-carrying messages travel through the per-connection delta layer
  (:mod:`repro.net.wire`), keeping steady-state frames O(new entries)
  while a rejoining node pays its real catch-up cost.
* **Clients**: requests carry ``(client_id, seq)`` ids; the leader
  deduplicates against its log (the PR-2 at-most-once semantics via
  :func:`repro.runtime.driver.find_request`), lays down a no-op
  barrier when commit rules require one, and answers when the entry's
  index commits.  Reads (``get``) are serialized through the log, so
  every response is linearizable by construction -- a deposed leader
  cannot serve a stale read.  Non-leaders answer ``not-leader`` with
  their best hint.

Malformed frames close the offending connection and never crash the
node (every decode failure is a :class:`repro.net.wire.ProtocolError`).
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..raft.messages import CommitAck, CommitReq, ElectAck, ElectReq, Msg
from ..raft.server import FOLLOWER, LEADER, Server
from ..runtime.driver import ElectionDriver, TimingConfig, find_request
from ..runtime.kvstore import materialize
from ..schemes.single_node import RaftSingleNodeScheme
from .wire import (
    ClientRequest,
    ClientResponse,
    DeltaDecoder,
    DeltaEncoder,
    LogRequest,
    LogResponse,
    MAX_FRAME_BYTES,
    PeerHello,
    ProtocolError,
    StatusRequest,
    StatusResponse,
    encode_frame,
)

log = logging.getLogger("repro.net.node")

_RAFT_TYPES = (ElectReq, ElectAck, CommitReq, CommitAck)


def now_ms() -> float:
    """Wall-clock milliseconds (monotonic within the process)."""
    return time.monotonic() * 1000.0


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one length-prefixed frame body; raises
    :class:`ProtocolError` on a bad prefix, ``IncompleteReadError`` /
    ``ConnectionError`` when the peer goes away."""
    header = await reader.readexactly(4)
    length = int.from_bytes(header, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length}")
    return await reader.readexactly(length)


@dataclass
class NodeConfig:
    """Everything one node process needs to join a cluster."""

    nid: int
    host: str
    port: int
    #: Peer listen addresses, keyed by node id (self is ignored).
    peers: Dict[int, Tuple[str, int]]
    #: The initial configuration (hot reconfiguration evolves it).
    conf0: frozenset
    #: Wall-clock timing; defaults suit localhost clusters.
    timing: TimingConfig = field(
        default_factory=lambda: TimingConfig(
            heartbeat_ms=25.0,
            election_timeout_min_ms=100.0,
            election_timeout_max_ms=200.0,
        )
    )
    #: Seed for this node's timeout RNG (None: derived from nid).
    seed: Optional[int] = None
    #: Bounded per-peer outbox: beyond this, the oldest message is shed.
    outbox_limit: int = 64
    #: Reconnect backoff: initial delay, doubled per failure, capped.
    reconnect_min_ms: float = 40.0
    reconnect_max_ms: float = 2_000.0


@dataclass
class _PendingRequest:
    """A client request waiting for its log index to commit."""

    request: ClientRequest
    target_len: int
    writer: asyncio.StreamWriter
    invoked_ms: float


class NetNode:
    """The asyncio runtime around one specification server."""

    def __init__(
        self,
        config: NodeConfig,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.scheme = RaftSingleNodeScheme()
        self.server = Server(nid=config.nid, conf0=frozenset(config.conf0))
        seed = config.seed if config.seed is not None else config.nid
        self.rng = random.Random(seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._obs = self.tracer.enabled or self.metrics.enabled
        self._m_sent = self.metrics.counter("net.messages_sent")
        self._m_received = self.metrics.counter("net.messages_received")
        self._m_shed = self.metrics.counter("net.outbox_shed")
        self._m_reconnects = self.metrics.counter("net.reconnects")
        self._m_protocol_errors = self.metrics.counter("net.protocol_errors")
        self._m_requests = self.metrics.counter("net.client_requests")
        self._h_commit = self.metrics.histogram("net.commit_latency_ms")
        self.driver: Optional[ElectionDriver] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._outboxes: Dict[int, asyncio.Queue] = {}
        self._peer_tasks: List[asyncio.Task] = []
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._pending: List[_PendingRequest] = []
        self._leader_hint: Optional[int] = None
        self._stopping = asyncio.Event()
        self._timer_handles: List[asyncio.TimerHandle] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.driver = ElectionDriver(
            server=self.server,
            scheme=self.scheme,
            timing=self.config.timing,
            rng=self.rng,
            schedule=self._schedule,
            send_all=self._send_all,
            is_active=lambda: not self._stopping.is_set(),
            on_leader=self._on_leader,
        )
        for nid in self.config.peers:
            if nid == self.config.nid:
                continue
            queue: asyncio.Queue = asyncio.Queue()
            self._outboxes[nid] = queue
            self._peer_tasks.append(
                asyncio.ensure_future(self._peer_loop(nid, queue))
            )
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.driver.arm()
        log.info(
            "S%d listening on %s:%d (conf0=%s)",
            self.config.nid, self.config.host, self.config.port,
            sorted(self.config.conf0),
        )

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopping.wait()
        await self.close()

    def stop(self) -> None:
        """Request a clean shutdown (signal-handler safe)."""
        self._stopping.set()

    async def close(self) -> None:
        self._stopping.set()
        for handle in self._timer_handles:
            handle.cancel()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for task in self._peer_tasks:
            task.cancel()
        await asyncio.gather(*self._peer_tasks, return_exceptions=True)
        log.info("S%d stopped cleanly", self.config.nid)

    # ------------------------------------------------------------------
    # Driver plumbing
    # ------------------------------------------------------------------

    def _schedule(self, delay_ms: float, fn) -> None:
        handle = self.loop.call_later(delay_ms / 1000.0, fn)
        # Keep handles so close() can cancel outstanding timers; prune
        # opportunistically to stay O(live timers).
        self._timer_handles.append(handle)
        if len(self._timer_handles) > 256:
            self._timer_handles = [
                h for h in self._timer_handles if not h.cancelled()
                and h.when() > self.loop.time()
            ]

    def _on_leader(self, term: int) -> None:
        self._leader_hint = self.config.nid
        log.info("S%d elected leader at term %d", self.config.nid, term)
        if self._obs:
            self.tracer.record(
                "leader_elected", now_ms(), self.config.nid, term=term
            )

    # ------------------------------------------------------------------
    # Outbound transport
    # ------------------------------------------------------------------

    def _send_all(self, msgs: List[Msg]) -> None:
        msgs = msgs + self._courtesy_heartbeats(msgs)
        for msg in msgs:
            queue = self._outboxes.get(msg.to)
            if queue is None:
                continue
            if queue.qsize() >= self.config.outbox_limit:
                # Overload shedding: the spec's messages carry full
                # state, so the newest always supersedes the oldest.
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - race-free
                    pass
                self._m_shed.inc()
            queue.put_nowait(msg)

    def _courtesy_heartbeats(self, msgs: List[Msg]) -> List[Msg]:
        """Replication for peers the configuration just dropped.

        ``broadcast_commit`` targets members only, so a removed node
        would never receive the config entry that removed it -- it
        would keep timing out and campaigning at ever-higher terms,
        dethroning the real leader (the classic removed-server
        disruption).  Whenever this leader broadcasts, it also sends
        the same ``CommitReq`` to each non-member peer that has not yet
        acknowledged up to *its own* removal entry -- the first config
        entry after the last configuration naming it.  Once the removed
        node holds that entry, the election driver sees it is not a
        member and goes quiescent, its log frozen at the removal point
        (so rejoining later still costs a real catch-up).  Targeting
        the peer's removal entry rather than the newest config entry
        matters: later reconfigurations must not wake long-removed
        peers back up and replicate to them logs they have no business
        holding.
        """
        server = self.server
        if server.role != LEADER or not any(
            isinstance(m, CommitReq) and m.frm == self.config.nid
            for m in msgs
        ):
            return []
        config_positions = [
            (i, self.scheme.members(entry.payload))
            for i, entry in enumerate(server.log)
            if entry.is_config
        ]
        if not config_positions:
            return []  # still on conf0: nobody has been removed

        def removal_target(peer: int) -> int:
            """Log length ``peer`` must ack to hold its removal entry."""
            last_in = (
                -1 if peer in self.scheme.members(server.conf0) else None
            )
            for i, group in config_positions:
                if peer in group:
                    last_in = i
            if last_in is None:
                return 0  # never a member: nothing to tell it
            for i, _ in config_positions:
                if i > last_in:
                    return i + 1
            return 0  # still a member of the newest configuration

        members = self.scheme.members(server.config())
        return [
            CommitReq(
                frm=self.config.nid,
                to=peer,
                time=server.time,
                log=server.log[:target],
                commit_len=min(server.commit_len, target),
            )
            for peer in sorted(self._outboxes)
            if peer not in members
            and server.acked.get(peer, 0) < (target := removal_target(peer))
        ]

    async def _peer_loop(self, nid: int, queue: asyncio.Queue) -> None:
        """Own the outbound connection to one peer: connect with capped
        exponential backoff, then drain the outbox through a fresh
        delta encoder per connection."""
        host, port = self.config.peers[nid]
        backoff_ms = self.config.reconnect_min_ms
        while not self._stopping.is_set():
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff_ms / 1000.0)
                backoff_ms = min(backoff_ms * 2, self.config.reconnect_max_ms)
                continue
            backoff_ms = self.config.reconnect_min_ms
            self._m_reconnects.inc()
            encoder = DeltaEncoder()
            try:
                writer.write(encode_frame(PeerHello(nid=self.config.nid)))
                while True:
                    msg = await queue.get()
                    frame = encoder.encode(msg)
                    writer.write(frame)
                    await writer.drain()
                    self._m_sent.inc()
                    if self._obs:
                        self.tracer.send(
                            now_ms(), self.config.nid, nid,
                            type(msg).__name__, bytes=len(frame),
                        )
            except (OSError, asyncio.IncompleteReadError):
                pass  # peer went away: reconnect with fresh delta state
            finally:
                writer.close()

    # ------------------------------------------------------------------
    # Inbound transport
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = DeltaDecoder()
        peer_nid: Optional[int] = None
        try:
            while True:
                payload = await read_frame(reader)
                try:
                    msg = decoder.decode(payload)
                except ProtocolError as exc:
                    # Malformed input never crashes the node: log,
                    # count, drop the connection (its delta state can
                    # no longer be trusted).
                    self._m_protocol_errors.inc()
                    log.warning(
                        "S%d dropping connection after protocol error: %s",
                        self.config.nid, exc,
                    )
                    return
                if isinstance(msg, PeerHello):
                    peer_nid = msg.nid
                elif isinstance(msg, _RAFT_TYPES):
                    self._deliver(msg)
                elif isinstance(msg, StatusRequest):
                    writer.write(encode_frame(self._status()))
                elif isinstance(msg, LogRequest):
                    writer.write(
                        encode_frame(
                            LogResponse(entries=self.server.committed_log())
                        )
                    )
                elif isinstance(msg, ClientRequest):
                    self._handle_client_request(msg, writer)
                else:  # a response type arriving where none belongs
                    self._m_protocol_errors.inc()
                    return
        except (
            asyncio.IncompleteReadError, ConnectionError, ProtocolError, OSError
        ):
            pass
        finally:
            if peer_nid is not None:
                log.debug(
                    "S%d lost inbound connection from S%s",
                    self.config.nid, peer_nid,
                )
            writer.close()

    # ------------------------------------------------------------------
    # Spec message path
    # ------------------------------------------------------------------

    def _deliver(self, msg: Msg) -> None:
        self._m_received.inc()
        if self._obs:
            self.tracer.receive(
                now_ms(), self.config.nid, msg.frm, type(msg).__name__, 0
            )
        responses, accepted = self.driver.on_message(msg)
        if accepted and isinstance(msg, CommitReq) and msg.frm != self.config.nid:
            self._leader_hint = msg.frm
        self._send_all(responses)
        self._after_progress()

    def _after_progress(self) -> None:
        """React to state changes a delivery may have caused: complete
        committed client requests, step down if the committed config
        dropped us, bounce the remaining pending ones on dethrone."""
        server = self.server
        if server.role == LEADER:
            still_waiting: List[_PendingRequest] = []
            for pending in self._pending:
                if server.commit_len >= pending.target_len:
                    self._respond(pending, self._committed_response(pending))
                else:
                    still_waiting.append(pending)
            self._pending = still_waiting
            self._maybe_step_down()
        if server.role != LEADER and self._pending:
            for pending in self._pending:
                self._respond(
                    pending,
                    ClientResponse(
                        client_id=pending.request.client_id,
                        seq=pending.request.seq,
                        ok=False,
                        error="not-leader",
                        leader_hint=self._hint(),
                    ),
                )
            self._pending = []

    def _maybe_step_down(self) -> None:
        """Raft section 6: a leader that committed the configuration
        entry removing itself stops leading (the spec keeps it LEADER
        forever, which would leave the remaining members waiting for
        heartbeats from a non-member).  Demoting to follower is always
        safe; the members elect a successor once heartbeats stop."""
        server = self.server
        if server.role != LEADER:
            return
        if self.config.nid in self.scheme.members(server.config()):
            return
        for i in range(len(server.log) - 1, -1, -1):
            if server.log[i].is_config:
                if server.commit_len >= i + 1:
                    log.info(
                        "S%d removed by committed config %s: stepping down",
                        self.config.nid, sorted(server.log[i].payload),
                    )
                    server.role = FOLLOWER
                    self._leader_hint = None
                return

    def _committed_response(self, pending: _PendingRequest) -> ClientResponse:
        request = pending.request
        command = request.command
        result: object = True
        if command[0] == "get":
            # The read linearizes at its own log entry: materialize the
            # committed prefix up to (and including) that entry.
            store = materialize(self.server.log[: pending.target_len])
            result = store.get(command[1])
        self._h_commit.observe(now_ms() - pending.invoked_ms)
        return ClientResponse(
            client_id=request.client_id,
            seq=request.seq,
            ok=True,
            result=result,
        )

    def _respond(
        self, pending: _PendingRequest, response: ClientResponse
    ) -> None:
        try:
            pending.writer.write(encode_frame(response))
        except (OSError, RuntimeError):
            pass  # client gave up; its retry will dedup via request id

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def _hint(self) -> Optional[int]:
        if self.server.role == LEADER:
            return self.config.nid
        return self._leader_hint

    def _status(self) -> StatusResponse:
        server = self.server
        return StatusResponse(
            nid=self.config.nid,
            role=server.role,
            term=server.time,
            commit_len=server.commit_len,
            log_len=len(server.log),
            members=tuple(sorted(self.scheme.members(server.config()))),
            leader_hint=self._hint(),
        )

    def _handle_client_request(
        self, request: ClientRequest, writer: asyncio.StreamWriter
    ) -> None:
        self._m_requests.inc()
        if self._obs:
            self.tracer.record(
                "client_invoke", now_ms(), self.config.nid,
                client=request.client_id, seq=request.seq,
                payload=repr(request.command),
            )
        server = self.server
        refuse = None
        if server.role != LEADER:
            refuse = ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="not-leader", leader_hint=self._hint(),
            )
        elif not request.command:
            refuse = ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="empty-command",
            )
        if refuse is not None:
            writer.write(encode_frame(refuse))
            return

        request_id = (request.client_id, request.seq)
        existing = find_request(server, request_id)
        if existing is not None:
            # At-most-once: a previous attempt's entry survived (maybe
            # from a dead leader's replicated log).  Wait for it -- and
            # lay down a current-term no-op barrier so the commit rule
            # can reach it (a new leader only counts its own term).
            target_len = existing
            if all(e.time != server.time for e in server.log):
                server.invoke(("noop",))
        elif request.command[0] == "reconfig":
            outcome = self._start_reconfig(request, request_id)
            if isinstance(outcome, ClientResponse):
                writer.write(encode_frame(outcome))
                return
            target_len = outcome
        else:
            server.invoke(request.command, request_id=request_id)
            target_len = len(server.log)

        self._pending.append(
            _PendingRequest(
                request=request,
                target_len=target_len,
                writer=writer,
                invoked_ms=now_ms(),
            )
        )
        # Replicate immediately rather than waiting for the heartbeat.
        self._send_all(server.broadcast_commit(self.scheme))
        self._after_progress()  # single-member quorums commit inline

    def _start_reconfig(self, request: ClientRequest, request_id):
        """Append the config entry, or say why not.  Returns the target
        log length, or a :class:`ClientResponse` refusal."""
        server = self.server
        try:
            members = frozenset(request.command[1])
        except (IndexError, TypeError):
            return ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="bad-reconfig",
            )
        ok, reason = server.reconfig(members, self.scheme,
                                     request_id=request_id)
        if ok:
            if self._obs:
                self.tracer.record(
                    "reconfig", now_ms(), self.config.nid,
                    members=sorted(members), term=server.time,
                )
            return len(server.log)
        if reason == "r3-denied":
            # No committed entry of the current term yet: lay down a
            # no-op barrier (once) and ask the client to retry; the
            # retry passes R3 after the barrier commits.
            if all(e.time != server.time for e in server.log):
                server.invoke(("noop",))
                self._send_all(server.broadcast_commit(self.scheme))
        return ClientResponse(
            client_id=request.client_id, seq=request.seq, ok=False,
            error=reason if reason != "r3-denied" else "retry",
        )


# ----------------------------------------------------------------------
# Process entry point
# ----------------------------------------------------------------------


async def _run(node: NetNode) -> None:
    loop = asyncio.get_running_loop()
    import signal

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, node.stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await node.serve_forever()


def run_node(
    config: NodeConfig,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Run one node until SIGTERM/SIGINT; the ``python -m repro.net
    node`` subcommand lands here."""
    asyncio.run(_run(NetNode(config, tracer=tracer, metrics=metrics)))
