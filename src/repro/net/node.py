"""One spec replica as a live asyncio TCP process.

A :class:`NetNode` hosts exactly one **unmodified**
:class:`repro.raft.server.Server` -- the same pure handlers the
simulator schedules (via the :class:`repro.net.snapshot.CompactServer`
subclass, which only changes how derived state is *queried* once the
log is compacted) -- and supplies everything the spec abstracts away
on a real network:

* **Timers**: the shared :class:`repro.runtime.driver.ElectionDriver`
  (identical policy to the simulator) armed against the asyncio clock
  (``loop.call_later``), so election timeouts and heartbeat chains run
  on wall-clock milliseconds.
* **Transport**: one listening socket; per-peer *outbound* connections
  with reconnect, capped exponential backoff, and a bounded outbox.
  Replication ``CommitReq``\\ s are coalesced latest-wins (each carries
  the full state, so an unsent older one is strictly superseded), and
  the peer loop drains a bounded window of messages per socket write
  -- pipelined AppendEntries without waiting for acks.  Log-carrying
  messages travel through the per-connection delta layer
  (:mod:`repro.net.wire`); a reconnect resets that state, which *is*
  the rewind path when a peer's view diverges.
* **Snapshots**: once the committed prefix outgrows
  ``snapshot_threshold``, the leader folds it
  (:mod:`repro.net.snapshot`); followers adopt the compact log through
  the spec's own log-replacement, shipped as chunked InstallSnapshot
  frames plus the live tail -- a late joiner pays O(state), not
  O(history).
* **Clients**: requests carry ``(client_id, seq)`` ids; the leader
  deduplicates against its log *and* the snapshot's session table,
  lays down a no-op barrier when commit rules require one, batches all
  appends from one event-loop tick into a single broadcast, and
  answers when the entry's index commits.  Linearizable reads
  (``get``) skip the log entirely via ReadIndex: the leader records
  its commit index, confirms its leadership with a
  :class:`~repro.net.wire.ReadProbe` quorum round, and serves from the
  incrementally-applied committed state.  Non-leaders answer
  ``not-leader`` with their best hint.

Malformed frames close the offending connection and never crash the
node (every decode failure is a :class:`repro.net.wire.ProtocolError`).
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import random
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..raft.messages import CommitAck, CommitReq, ElectAck, ElectReq, Msg
from ..raft.server import FOLLOWER, LEADER
from ..runtime.driver import ElectionDriver, TimingConfig
from ..runtime.kvstore import apply_command, materialize
from ..schemes.single_node import RaftSingleNodeScheme
from .snapshot import (
    CompactLog,
    CompactServer,
    config_positions,
    find_request_compact,
    slice_prefix,
)
from .wire import (
    ClientRequest,
    ClientResponse,
    DeltaDecoder,
    DeltaEncoder,
    LogRequest,
    LogResponse,
    MAX_FRAME_BYTES,
    MonitorHello,
    PartitionRequest,
    PartitionResponse,
    PeerHello,
    ProtocolError,
    ReadProbe,
    ReadProbeAck,
    ShardDumpRequest,
    ShardDumpResponse,
    ShardOwnershipRequest,
    ShardOwnershipResponse,
    StatusRequest,
    StatusResponse,
    TraceBatch,
    _pack_entry,
    encode_frame,
)

log = logging.getLogger("repro.net.node")

_RAFT_TYPES = (ElectReq, ElectAck, CommitReq, CommitAck)

#: Commands a node will admit into the log (anything else is refused
#: at the door, so the apply path never sees unknown vocabulary).
_COMMAND_ARITY = {
    "put": 3, "add": 3, "delete": 2, "get": 2, "noop": 1, "reconfig": 2,
}

#: Commands whose second element is a kvstore key (the ones shard
#: ownership applies to; ``noop``/``reconfig`` are group-local).
_KEYED_COMMANDS = frozenset(("put", "add", "delete", "get"))


def _key_position(key: str) -> int:
    """The key's 64-bit hash-ring position.  Mirrors
    :func:`repro.shard.ring.hash_key` -- kept dependency-free here so
    the layering stays one-way (``repro.shard`` imports ``repro.net``,
    never the reverse); a unit test pins the two to agree."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _server_class(spec: str):
    """The server semantics a node hosts: the spec (R3 on) or the
    pre-fix algorithm (R3 forced off) for seeding live violations."""
    if spec == "raft":
        return CompactServer
    if spec == "buggy":
        from ..raft.buggy import NoR3Mixin

        class BuggyCompactServer(NoR3Mixin, CompactServer):
            pass

        return BuggyCompactServer
    raise ValueError(f"unknown server spec {spec!r}")


#: Trace kinds streamed to the monitor.  Per-message ``send``/``receive``
#: events stay local (the ring buffer keeps them for bundles); the
#: monitor needs protocol milestones, not transport chatter.
_EXPORT_SKIP = frozenset({"send", "receive"})


def now_ms() -> float:
    """Milliseconds on this process's monotonic clock.

    Monotonic *within one process only*: each node (and each client)
    starts its clock at an arbitrary origin, so these values must never
    be compared across processes.  They time intra-node intervals
    (commit latency, read staleness) and order events recorded *at this
    node*; cross-process ordering -- what the safety monitor consumes --
    uses per-node Lamport stamps and arrival order exclusively.
    """
    return time.monotonic() * 1000.0


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle: the traffic is small latency-sensitive frames
    (acks, probes, responses), exactly what delayed coalescing hurts."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP transports
            pass


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one length-prefixed frame body; raises
    :class:`ProtocolError` on a bad prefix, ``IncompleteReadError`` /
    ``ConnectionError`` when the peer goes away."""
    header = await reader.readexactly(4)
    length = int.from_bytes(header, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"declared frame length {length}")
    return await reader.readexactly(length)


@dataclass
class NodeConfig:
    """Everything one node process needs to join a cluster."""

    nid: int
    host: str
    port: int
    #: Peer listen addresses, keyed by node id (self is ignored).
    peers: Dict[int, Tuple[str, int]]
    #: The initial configuration (hot reconfiguration evolves it).
    conf0: frozenset
    #: Wall-clock timing; defaults suit localhost clusters.
    timing: TimingConfig = field(
        default_factory=lambda: TimingConfig(
            heartbeat_ms=25.0,
            election_timeout_min_ms=100.0,
            election_timeout_max_ms=200.0,
        )
    )
    #: Seed for this node's timeout RNG (None: derived from nid).
    seed: Optional[int] = None
    #: Bounded per-peer outbox: beyond this, the oldest message is shed.
    outbox_limit: int = 64
    #: Reconnect backoff: initial delay, doubled per failure, capped.
    reconnect_min_ms: float = 40.0
    reconnect_max_ms: float = 2_000.0
    #: Fold the committed prefix into a snapshot once it has grown this
    #: many entries past the current snapshot point (0 disables).
    snapshot_threshold: int = 1024
    #: Coalesce all appends from one event-loop tick into one broadcast
    #: (False restores the PR 4 broadcast-per-request write path).
    batching: bool = True
    #: Serve linearizable ``get``\\ s via a ReadIndex quorum round
    #: instead of a log append (False restores the PR 4 read path).
    read_index: bool = True
    #: Messages drained per socket write in the peer loop: the
    #: pipelining window (in-flight, un-acked frames per connection).
    pipeline_window: int = 32
    #: Safety-monitor address; when set, the node streams its trace
    #: (log/commit advances and protocol milestones) there as
    #: :class:`TraceBatch` frames.  None keeps the export entirely off
    #: -- one boolean test per progress step, nothing else.
    monitor: Optional[Tuple[str, int]] = None
    #: Which server semantics to host: ``"raft"`` (the spec, R3 on) or
    #: ``"buggy"`` (R3 off -- the pre-fix algorithm, for seeding live
    #: violations the monitor must catch).
    spec: str = "raft"
    #: Ring-buffer capacity of the auto-created tracer when a monitor
    #: address is configured.
    trace_capacity: int = 65_536


@dataclass
class _PendingRequest:
    """A client request waiting for its log index to commit."""

    request: ClientRequest
    target_len: int
    writer: asyncio.StreamWriter
    invoked_ms: float


@dataclass
class _ReadBatch:
    """One ReadIndex round: reads registered at ``index`` waiting for a
    quorum of same-term :class:`ReadProbeAck`\\ s at ``term``."""

    probe: int
    term: int
    index: int
    born_ms: float
    acked: set
    reads: List[Tuple[ClientRequest, asyncio.StreamWriter, float]]


class _Outbox:
    """Per-peer send queue.

    Control messages (votes, acks, probes) are FIFO with
    oldest-message shedding under overload.  Replication
    ``CommitReq``\\ s get a dedicated latest-wins slot: the spec's
    messages carry the entire log and commit index, so a newer one
    strictly supersedes an unsent older one -- under load the peer
    loop naturally sends one fresh AppendEntries per drain instead of
    a backlog of stale ones.
    """

    __slots__ = ("limit", "misc", "commit", "event", "m_shed", "m_coalesced",
                 "coalesce")

    def __init__(self, limit: int, m_shed, m_coalesced,
                 coalesce: bool = True) -> None:
        self.limit = limit
        self.misc: deque = deque()
        self.commit: Optional[CommitReq] = None
        self.event = asyncio.Event()
        self.m_shed = m_shed
        self.m_coalesced = m_coalesced
        #: ``batching=False`` restores the PR 4 transport: every
        #: CommitReq queues and ships individually, none superseded.
        self.coalesce = coalesce

    def put(self, msg: Msg) -> None:
        if self.coalesce and isinstance(msg, CommitReq):
            if self.commit is not None:
                self.m_coalesced.inc()
            self.commit = msg
        else:
            if len(self.misc) >= self.limit:
                self.misc.popleft()
                self.m_shed.inc()
            self.misc.append(msg)
        self.event.set()

    def pop_batch(self, window: int) -> List[Msg]:
        """Up to ``window`` messages for one pipelined socket write."""
        out: List[Msg] = []
        while self.misc and len(out) < window:
            out.append(self.misc.popleft())
        if self.commit is not None and len(out) < window:
            out.append(self.commit)
            self.commit = None
        if not self.misc and self.commit is None:
            self.event.clear()
        return out


class NetNode:
    """The asyncio runtime around one specification server."""

    def __init__(
        self,
        config: NodeConfig,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.scheme = RaftSingleNodeScheme()
        self.server = _server_class(config.spec)(
            nid=config.nid, conf0=frozenset(config.conf0)
        )
        seed = config.seed if config.seed is not None else config.nid
        self.rng = random.Random(seed)
        #: Trace export to the safety monitor.  ``_export_enabled`` is
        #: the single gate the hot path tests; everything else below it
        #: only exists (and only costs) when a monitor is configured.
        self._export_enabled = config.monitor is not None
        self._export_q: deque = deque(maxlen=4096)
        self._export_dropped = 0
        self._export_event: Optional[asyncio.Event] = None
        self._export_task: Optional[asyncio.Task] = None
        #: Absolute-indexed shadow of the entries already exported
        #: (None marks positions elided before export could see them).
        self._shadow: List[Any] = []
        self._exported_commit = 0
        if tracer is None and self._export_enabled:
            tracer = Tracer(
                capacity=config.trace_capacity, sink=self._export_sink,
                metrics=metrics,
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Fault injection: raft/probe traffic from or to these peers is
        #: dropped (admin :class:`PartitionRequest`; clients unaffected).
        self._blocked: frozenset = frozenset()
        self._obs = self.tracer.enabled or self.metrics.enabled
        self._m_sent = self.metrics.counter("net.messages_sent")
        self._m_received = self.metrics.counter("net.messages_received")
        self._m_shed = self.metrics.counter("net.outbox_shed")
        self._m_coalesced = self.metrics.counter("net.commit_coalesced")
        self._m_reconnects = self.metrics.counter("net.reconnects")
        self._m_protocol_errors = self.metrics.counter("net.protocol_errors")
        self._m_requests = self.metrics.counter("net.client_requests")
        self._m_compactions = self.metrics.counter("net.compactions")
        self._m_snapshots_in = self.metrics.counter("net.snapshots_installed")
        self._m_reads_fast = self.metrics.counter("net.reads_fast")
        self._m_partition_dropped = self.metrics.counter(
            "net.partition_dropped"
        )
        self._h_commit = self.metrics.histogram("net.commit_latency_ms")
        self.driver: Optional[ElectionDriver] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._outboxes: Dict[int, _Outbox] = {}
        self._peer_tasks: List[asyncio.Task] = []
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._pending: List[_PendingRequest] = []
        self._leader_hint: Optional[int] = None
        self._stopping = asyncio.Event()
        self._timer_handles: List[asyncio.TimerHandle] = []
        self._flush_scheduled = False
        #: ReadIndex state: outstanding quorum rounds, the id of the
        #: round still accepting reads this tick, and an id counter.
        self._read_batches: Dict[int, _ReadBatch] = {}
        self._open_probe: Optional[int] = None
        self._probe_counter = 0
        #: Incrementally-applied committed state: ``_app_store`` is the
        #: kvstore after folding ``log[:_app_len]`` (jumps to the
        #: snapshot's store on compaction/installation).
        self._app_store: Dict[str, Any] = {}
        self._app_len = 0
        #: Shard ownership, pushed by a sharding manager
        #: (:class:`repro.shard.manager.ShardedCluster`): at routing
        #: table version ``_shard_version`` this node's group owns
        #: exactly the half-open hash ranges ``_shard_ranges``.
        #: ``None`` = never told: unsharded deployments accept every
        #: key, while *stamped* requests are refused until the manager
        #: (re-)pushes ownership -- that makes a freshly respawned
        #: node, whose in-memory ownership died with its predecessor,
        #: safe by refusal instead of wrong by amnesia.
        self._shard_version: Optional[int] = None
        self._shard_ranges: Tuple[Tuple[int, int], ...] = ()
        #: Cumulative transport/observability counters.
        self._n_bytes_sent = 0
        self._n_snapshots_in = 0
        self._n_reads_fast = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.driver = ElectionDriver(
            server=self.server,
            scheme=self.scheme,
            timing=self.config.timing,
            rng=self.rng,
            schedule=self._schedule,
            send_all=self._send_all,
            is_active=lambda: not self._stopping.is_set(),
            on_leader=self._on_leader,
        )
        for nid in self.config.peers:
            if nid == self.config.nid:
                continue
            outbox = _Outbox(
                self.config.outbox_limit, self._m_shed, self._m_coalesced,
                coalesce=self.config.batching,
            )
            self._outboxes[nid] = outbox
            self._peer_tasks.append(
                asyncio.ensure_future(self._peer_loop(nid, outbox))
            )
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self._export_enabled:
            self._export_event = asyncio.Event()
            if self._export_q:
                self._export_event.set()
            self._export_task = asyncio.ensure_future(self._monitor_loop())
        self.driver.arm()
        log.info(
            "S%d listening on %s:%d (conf0=%s)",
            self.config.nid, self.config.host, self.config.port,
            sorted(self.config.conf0),
        )

    async def serve_forever(self) -> None:
        await self.start()
        await self._stopping.wait()
        await self.close()

    def stop(self) -> None:
        """Request a clean shutdown (signal-handler safe)."""
        self._stopping.set()

    async def close(self) -> None:
        self._stopping.set()
        for handle in self._timer_handles:
            handle.cancel()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for task in self._peer_tasks:
            task.cancel()
        await asyncio.gather(*self._peer_tasks, return_exceptions=True)
        if self._export_task is not None:
            self._export_task.cancel()
            await asyncio.gather(self._export_task, return_exceptions=True)
        log.info("S%d stopped cleanly", self.config.nid)

    # ------------------------------------------------------------------
    # Driver plumbing
    # ------------------------------------------------------------------

    def _schedule(self, delay_ms: float, fn) -> None:
        handle = self.loop.call_later(delay_ms / 1000.0, fn)
        # Keep handles so close() can cancel outstanding timers; prune
        # opportunistically to stay O(live timers).
        self._timer_handles.append(handle)
        if len(self._timer_handles) > 256:
            self._timer_handles = [
                h for h in self._timer_handles if not h.cancelled()
                and h.when() > self.loop.time()
            ]

    def _on_leader(self, term: int) -> None:
        self._leader_hint = self.config.nid
        log.info("S%d elected leader at term %d", self.config.nid, term)
        if self._obs:
            self.tracer.record(
                "leader_elected", now_ms(), self.config.nid, term=term
            )

    # ------------------------------------------------------------------
    # Outbound transport
    # ------------------------------------------------------------------

    def _send_all(self, msgs: List[Msg]) -> None:
        msgs = msgs + self._courtesy_heartbeats(msgs)
        # Piggyback outstanding ReadIndex probes on every replication
        # broadcast (the driver's heartbeat chain included): a follower
        # that was behind on the term when first probed re-acks on the
        # next round, so no read round can starve on one stale ack.
        server = self.server
        if (
            self._read_batches
            and server.role == LEADER
            and any(
                isinstance(m, CommitReq) and m.frm == self.config.nid
                for m in msgs
            )
        ):
            members = self.scheme.members(server.config())
            probes = [
                ReadProbe(
                    frm=self.config.nid, to=peer,
                    probe=batch.probe, time=server.time,
                )
                for batch in self._read_batches.values()
                if batch.term == server.time
                for peer in sorted(members)
                if peer != self.config.nid
            ]
            msgs = msgs + probes
        blocked = self._blocked
        for msg in msgs:
            if blocked and msg.to in blocked:
                self._m_partition_dropped.inc()
                continue
            outbox = self._outboxes.get(msg.to)
            if outbox is None:
                continue
            outbox.put(msg)

    def _courtesy_heartbeats(self, msgs: List[Msg]) -> List[Msg]:
        """Replication for peers the configuration just dropped.

        ``broadcast_commit`` targets members only, so a removed node
        would never receive the config entry that removed it -- it
        would keep timing out and campaigning at ever-higher terms,
        dethroning the real leader (the classic removed-server
        disruption).  Whenever this leader broadcasts, it also sends
        the same ``CommitReq`` to each non-member peer that has not yet
        acknowledged up to *its own* removal entry -- the first config
        entry after the last configuration naming it.  Once the removed
        node holds that entry, the election driver sees it is not a
        member and goes quiescent, its log frozen at the removal point
        (so rejoining later still costs a real catch-up).  Targeting
        the peer's removal entry rather than the newest config entry
        matters: later reconfigurations must not wake long-removed
        peers back up and replicate to them logs they have no business
        holding.  When the removal entry has been folded into a
        snapshot, the snapshot itself is the shortest shippable prefix
        covering it (the peer still goes quiescent; it just holds the
        folded state instead of the raw prefix).
        """
        server = self.server
        if server.role != LEADER or not any(
            isinstance(m, CommitReq) and m.frm == self.config.nid
            for m in msgs
        ):
            return []
        positions = [
            (i, self.scheme.members(payload))
            for i, payload in config_positions(server)
        ]
        if not positions:
            return []  # still on conf0: nobody has been removed

        def removal_target(peer: int) -> int:
            """Log length ``peer`` must ack to hold its removal entry."""
            last_in = (
                -1 if peer in self.scheme.members(server.conf0) else None
            )
            for i, group in positions:
                if peer in group:
                    last_in = i
            if last_in is None:
                return 0  # never a member: nothing to tell it
            for i, _ in positions:
                if i > last_in:
                    return i + 1
            return 0  # still a member of the newest configuration

        members = self.scheme.members(server.config())
        out = []
        for peer in sorted(self._outboxes):
            if peer in members:
                continue
            target = removal_target(peer)
            if server.acked.get(peer, 0) >= target:
                continue
            prefix = slice_prefix(server.log, target)
            out.append(
                CommitReq(
                    frm=self.config.nid,
                    to=peer,
                    time=server.time,
                    log=prefix,
                    commit_len=min(server.commit_len, len(prefix)),
                )
            )
        return out

    async def _peer_loop(self, nid: int, outbox: _Outbox) -> None:
        """Own the outbound connection to one peer: connect with capped
        exponential backoff, then drain the outbox through a fresh
        delta encoder per connection.  Each iteration pops a bounded
        *window* of ready messages and ships them in one pipelined
        write -- no per-message ack wait, no per-message drain.  A
        connection drop resets the delta/snapshot state (the encoder is
        per-connection), which is the rewind: the next frame re-ships
        from the last point the fresh connection state supports."""
        host, port = self.config.peers[nid]
        backoff_ms = self.config.reconnect_min_ms
        while not self._stopping.is_set():
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff_ms / 1000.0)
                backoff_ms = min(backoff_ms * 2, self.config.reconnect_max_ms)
                continue
            backoff_ms = self.config.reconnect_min_ms
            self._m_reconnects.inc()
            _set_nodelay(writer)
            encoder = DeltaEncoder()
            try:
                writer.write(encode_frame(PeerHello(nid=self.config.nid)))
                while True:
                    await outbox.event.wait()
                    # With batching off the transport is the PR 4 one:
                    # one message per socket write, drained before the
                    # next (no pipelined in-flight window).
                    window = (
                        self.config.pipeline_window
                        if self.config.batching else 1
                    )
                    msgs = outbox.pop_batch(window)
                    if not msgs:
                        continue
                    data = b"".join(encoder.encode(msg) for msg in msgs)
                    writer.write(data)
                    await writer.drain()
                    self._n_bytes_sent += len(data)
                    self._m_sent.inc(len(msgs))
                    if self._obs:
                        for msg in msgs:
                            self.tracer.send(
                                now_ms(), self.config.nid, nid,
                                type(msg).__name__,
                                bytes=len(data) // len(msgs),
                            )
            except (OSError, asyncio.IncompleteReadError):
                pass  # peer went away: reconnect with fresh delta state
            finally:
                writer.close()

    # ------------------------------------------------------------------
    # Inbound transport
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        _set_nodelay(writer)
        decoder = DeltaDecoder()
        peer_nid: Optional[int] = None
        snapshots_seen = 0
        try:
            while True:
                payload = await read_frame(reader)
                try:
                    msg = decoder.decode(payload)
                except ProtocolError as exc:
                    # Malformed input never crashes the node: log,
                    # count, drop the connection (its delta state can
                    # no longer be trusted).
                    self._m_protocol_errors.inc()
                    log.warning(
                        "S%d dropping connection after protocol error: %s",
                        self.config.nid, exc,
                    )
                    return
                if decoder.snapshots_installed > snapshots_seen:
                    delta = decoder.snapshots_installed - snapshots_seen
                    snapshots_seen = decoder.snapshots_installed
                    self._n_snapshots_in += delta
                    self._m_snapshots_in.inc(delta)
                if msg is None:
                    continue  # a snapshot chunk, absorbed by the decoder
                if isinstance(msg, PeerHello):
                    peer_nid = msg.nid
                elif isinstance(msg, _RAFT_TYPES):
                    self._deliver(msg)
                elif isinstance(msg, ReadProbe):
                    if self._blocked and msg.frm in self._blocked:
                        self._m_partition_dropped.inc()
                    else:
                        self._on_read_probe(msg)
                elif isinstance(msg, ReadProbeAck):
                    if self._blocked and msg.frm in self._blocked:
                        self._m_partition_dropped.inc()
                    else:
                        self._on_read_probe_ack(msg)
                elif isinstance(msg, PartitionRequest):
                    writer.write(encode_frame(self._set_partition(msg)))
                elif isinstance(msg, ShardOwnershipRequest):
                    writer.write(
                        encode_frame(self._set_shard_ownership(msg))
                    )
                elif isinstance(msg, ShardDumpRequest):
                    writer.write(encode_frame(self._shard_dump(msg)))
                elif isinstance(msg, StatusRequest):
                    writer.write(encode_frame(self._status()))
                elif isinstance(msg, LogRequest):
                    writer.write(encode_frame(self._committed_tail()))
                elif isinstance(msg, ClientRequest):
                    self._handle_client_request(msg, writer)
                else:  # a response type arriving where none belongs
                    self._m_protocol_errors.inc()
                    return
        except (
            asyncio.IncompleteReadError, ConnectionError, ProtocolError, OSError
        ):
            pass
        finally:
            if peer_nid is not None:
                log.debug(
                    "S%d lost inbound connection from S%s",
                    self.config.nid, peer_nid,
                )
            writer.close()

    def _committed_tail(self) -> LogResponse:
        """The committed log for cross-node safety checks: the entries
        past the snapshot point, tagged with their absolute offset."""
        server = self.server
        committed = server.committed_log()
        if isinstance(committed, CompactLog):
            return LogResponse(
                entries=committed.tail, base_len=committed.snap.base_len
            )
        return LogResponse(entries=committed, base_len=0)

    # ------------------------------------------------------------------
    # Fault injection (admin)
    # ------------------------------------------------------------------

    def _set_partition(self, msg: PartitionRequest) -> PartitionResponse:
        """Replace the blocked-peer set (an empty request heals)."""
        self._blocked = frozenset(msg.blocked) - {self.config.nid}
        if self._obs:
            self.tracer.record(
                "partition_start", now_ms(), self.config.nid,
                blocked=sorted(self._blocked),
            )
        log.info(
            "S%d partition set: blocking %s",
            self.config.nid, sorted(self._blocked) or "nothing",
        )
        return PartitionResponse(
            nid=self.config.nid, blocked=tuple(sorted(self._blocked))
        )

    # ------------------------------------------------------------------
    # Shard ownership (admin)
    # ------------------------------------------------------------------

    def _set_shard_ownership(
        self, msg: ShardOwnershipRequest
    ) -> ShardOwnershipResponse:
        """Adopt an ownership fact at version >= the current one.

        An older push (a delayed manager retry) is ignored but acked
        with the version actually held, so the caller can tell; an
        equal version is re-adopted idempotently (the respawn re-push
        path)."""
        if self._shard_version is None or msg.version >= self._shard_version:
            self._shard_version = msg.version
            self._shard_ranges = tuple(msg.ranges)
            if self._obs:
                self.tracer.record(
                    "shard_ownership", now_ms(), self.config.nid,
                    version=msg.version, ranges=len(msg.ranges),
                )
            log.info(
                "S%d shard ownership v%d: %d range(s)",
                self.config.nid, msg.version, len(msg.ranges),
            )
        return ShardOwnershipResponse(
            nid=self.config.nid, version=self._shard_version
        )

    def _shard_dump(self, msg: ShardDumpRequest) -> ShardDumpResponse:
        """The applied committed kvstore entries hashing into
        ``[lo, hi)`` (the drain half of a migration), plus the log and
        commit lengths the manager's quiesce loop keys off."""
        server = self.server
        self._apply_committed()
        items = tuple(sorted(
            (key, value)
            for key, value in self._app_store.items()
            if msg.lo <= _key_position(key) < msg.hi
        ))
        return ShardDumpResponse(
            nid=self.config.nid,
            role=server.role,
            commit_len=server.commit_len,
            log_len=len(server.log),
            items=items,
            version=self._shard_version,
            term=server.time,
            commit_in_term=server.has_commit_at_current_time(),
        )

    def _shard_refuses(self, request: ClientRequest) -> bool:
        """The wrong-shard admission check.

        Only *stamped* requests (``table_version`` set) participate --
        plain clients against an unsharded cluster are untouched.  A
        stamped keyed command is refused when this node cannot prove it
        owns the key:

        * it was never told its ownership (``_shard_version`` is
          ``None``: e.g. freshly respawned), or
        * the client routed by a *newer* table than the node has seen
          (the node's ownership may have shrunk since), or
        * the key's hash falls outside the owned ranges.

        Refusal happens before anything enters the log, so the client
        may safely re-route the command (fresh seq) to another group.
        The one exception is a retry of a command that *already*
        entered the log pre-freeze: at-most-once beats ownership, the
        existing entry is served so the client can learn the outcome
        that may well have committed.
        """
        stamp = request.table_version
        command = request.command
        if stamp is None or command[0] not in _KEYED_COMMANDS:
            return False
        if (
            self._shard_version is not None
            and stamp <= self._shard_version
            and any(
                lo <= _key_position(command[1]) < hi
                for lo, hi in self._shard_ranges
            )
        ):
            return False
        request_id = (request.client_id, request.seq)
        return find_request_compact(self.server, request_id) is None

    # ------------------------------------------------------------------
    # Trace export (the monitor's feed)
    # ------------------------------------------------------------------

    def _export_sink(self, event) -> None:
        """Tracer sink: queue every non-transport event for shipment.
        Bounded; sheds oldest under backpressure (the monitor counts
        arrivals, not acks, so shedding only loses detail events --
        ``log_advance`` events re-carry cumulative state, so the next
        one resynchronizes the engine's view)."""
        if event.kind in _EXPORT_SKIP:
            return
        q = self._export_q
        if len(q) == q.maxlen:
            self._export_dropped += 1
        q.append(event.to_dict())
        if self._export_event is not None:
            self._export_event.set()

    def _maybe_export_log(self) -> None:
        """Emit a ``log_advance`` trace event when the server's log or
        commit point moved past what was last exported.

        The event carries the *delta* against an absolute-indexed shadow
        of everything exported so far: ``base`` (the common-prefix
        length), the packed entries from there, and the absolute commit
        length.  Entries folded into a snapshot before this node ever
        exported them (a follower catching up via InstallSnapshot) show
        up as ``base`` jumping past the shadow; the event then carries
        the snapshot's verbatim ``last_entry`` as ``anchor`` so the
        monitor can re-anchor the suffix onto entries some other node
        already streamed."""
        server = self.server
        log_ = server.log
        if isinstance(log_, CompactLog):
            base, tail = log_.snap.base_len, log_.tail
        else:
            base, tail = 0, log_
        shadow = self._shadow
        gap = base > len(shadow)
        if gap:
            j = base
        else:
            hi = min(len(shadow), base + len(tail))
            if hi > base and shadow[hi - 1] == tail[hi - 1 - base]:
                # Log matching: an identical entry at an identical
                # position implies an identical prefix, so the
                # append-only common case costs one comparison.
                j = hi
            else:
                j = base
                while j < hi and shadow[j] == tail[j - base]:
                    j += 1
        entries = tail[j - base:]
        commit_len = server.commit_len
        if not entries and j == len(shadow) and commit_len == self._exported_commit:
            return
        data = {
            "base": j,
            "entries": [_pack_entry(e) for e in entries],
            "commit": commit_len,
            "term": server.time,
        }
        if gap:
            data["gap"] = True
            data["anchor"] = _pack_entry(log_.snap.last_entry)
        if j > len(shadow):
            shadow.extend([None] * (j - len(shadow)))
        del shadow[j:]
        shadow.extend(entries)
        self._exported_commit = commit_len
        self.tracer.record("log_advance", now_ms(), self.config.nid, **data)

    async def _monitor_loop(self) -> None:
        """Own the outbound connection to the monitor: connect with
        capped backoff, say hello, then ship queued trace events as
        :class:`TraceBatch` frames.  Fire-and-forget -- the monitor
        never replies on this connection, and a dead monitor costs the
        node nothing but this loop's backoff timer."""
        host, port = self.config.monitor
        backoff_ms = self.config.reconnect_min_ms
        while not self._stopping.is_set():
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff_ms / 1000.0)
                backoff_ms = min(backoff_ms * 2, self.config.reconnect_max_ms)
                continue
            backoff_ms = self.config.reconnect_min_ms
            _set_nodelay(writer)
            try:
                writer.write(encode_frame(MonitorHello(nid=self.config.nid)))
                while True:
                    await self._export_event.wait()
                    events = []
                    q = self._export_q
                    while q and len(events) < 256:
                        events.append(q.popleft())
                    if not q:
                        self._export_event.clear()
                    if not events:
                        continue
                    writer.write(encode_frame(TraceBatch(
                        nid=self.config.nid, events=tuple(events),
                    )))
                    await writer.drain()
            except (OSError, asyncio.IncompleteReadError):
                pass  # monitor went away: reconnect and resume the queue
            finally:
                writer.close()

    # ------------------------------------------------------------------
    # Spec message path
    # ------------------------------------------------------------------

    def _deliver(self, msg: Msg) -> None:
        if self._blocked and msg.frm in self._blocked:
            self._m_partition_dropped.inc()
            return
        self._m_received.inc()
        if self._obs:
            self.tracer.receive(
                now_ms(), self.config.nid, msg.frm, type(msg).__name__, 0
            )
        responses, accepted = self.driver.on_message(msg)
        if accepted and isinstance(msg, CommitReq) and msg.frm != self.config.nid:
            self._leader_hint = msg.frm
        self._send_all(responses)
        self._after_progress()

    def _after_progress(self) -> None:
        """React to state changes a delivery may have caused: complete
        committed client requests, step down if the committed config
        dropped us, compact once the committed prefix outgrows the
        threshold, bounce pending work on dethrone."""
        if self._export_enabled:
            self._maybe_export_log()
        server = self.server
        if server.role == LEADER:
            still_waiting: List[_PendingRequest] = []
            for pending in self._pending:
                if server.commit_len >= pending.target_len:
                    self._respond(pending, self._committed_response(pending))
                else:
                    still_waiting.append(pending)
            self._pending = still_waiting
            self._expire_stale_reads()
            self._maybe_compact()
            self._maybe_step_down()
        if server.role != LEADER:
            if self._pending:
                for pending in self._pending:
                    # Everything pending was *appended* before the
                    # dethrone: the entry survives in the log and may
                    # still commit under the next leader, so the bounce
                    # is flagged as an ambiguous (admitted) refusal --
                    # the client must not treat it as not-applied.
                    self._respond(
                        pending,
                        ClientResponse(
                            client_id=pending.request.client_id,
                            seq=pending.request.seq,
                            ok=False,
                            error="not-leader",
                            leader_hint=self._hint(),
                            admitted=True,
                        ),
                    )
                self._pending = []
            if self._read_batches:
                self._bounce_reads(error="not-leader")

    def _maybe_compact(self) -> None:
        """Leader-driven log compaction: fold the committed prefix once
        it has grown ``snapshot_threshold`` entries past the snapshot
        point.  Followers never compact on their own -- they adopt the
        leader's compact log through replication (InstallSnapshot)."""
        threshold = self.config.snapshot_threshold
        server = self.server
        if threshold <= 0 or server.role != LEADER:
            return
        if server.commit_len - server.snapshot_base() < threshold:
            return
        # Catch the applied store up first: after compaction it can
        # only jump forward from the new snapshot's store.
        self._apply_committed()
        if server.compact():
            self._m_compactions.inc()
            if self._obs:
                self.tracer.record(
                    "compaction", now_ms(), self.config.nid,
                    base_len=server.snapshot_base(), term=server.time,
                )
            log.info(
                "S%d compacted log to snapshot at %d entries",
                self.config.nid, server.snapshot_base(),
            )

    def _maybe_step_down(self) -> None:
        """Raft section 6: a leader that committed the configuration
        entry removing itself stops leading (the spec keeps it LEADER
        forever, which would leave the remaining members waiting for
        heartbeats from a non-member).  Demoting to follower is always
        safe; the members elect a successor once heartbeats stop."""
        server = self.server
        if server.role != LEADER:
            return
        if self.config.nid in self.scheme.members(server.config()):
            return
        positions = config_positions(server)
        if not positions:
            return
        # The newest config entry governs; a config folded into a
        # snapshot is committed by construction.
        index, payload = positions[-1]
        if server.commit_len >= index + 1:
            log.info(
                "S%d removed by committed config %s: stepping down",
                self.config.nid, sorted(payload),
            )
            server.role = FOLLOWER
            self._leader_hint = None

    # ------------------------------------------------------------------
    # Committed state (incremental apply)
    # ------------------------------------------------------------------

    def _apply_committed(self) -> None:
        """Advance the applied store to the current commit index.

        Entries below the commit index never change (Raft's state
        machine safety), so each is applied exactly once; a snapshot
        installation jumps the store to the snapshot's materialized
        state.  This turns every read from O(history) folding into
        O(new entries)."""
        server = self.server
        log_ = server.log
        if isinstance(log_, CompactLog):
            base = log_.snap.base_len
            if self._app_len < base:
                self._app_store = dict(log_.snap.store)
                self._app_len = base
        while self._app_len < server.commit_len:
            entry = log_[self._app_len]
            if not entry.is_config:
                try:
                    apply_command(self._app_store, entry.payload)
                except (ValueError, TypeError, IndexError):
                    pass  # unknown vocabulary folds as a no-op
            self._app_len += 1

    def _committed_response(self, pending: _PendingRequest) -> ClientResponse:
        request = pending.request
        command = request.command
        result: object = True
        if command[0] == "get":
            # The read linearizes at response time: every entry applied
            # here committed before this response is sent.
            server = self.server
            if (self.config.batching or self.config.read_index
                    or isinstance(server.log, CompactLog)):
                self._apply_committed()
                result = self._app_store.get(command[1])
            else:
                # Full-parity baseline (both optimizations off, log
                # never compacted): fold the whole committed prefix per
                # read, as the pre-optimization write path did.
                store = materialize(
                    server.log[i] for i in range(server.commit_len)
                )
                result = store.get(command[1])
        self._h_commit.observe(now_ms() - pending.invoked_ms)
        return ClientResponse(
            client_id=request.client_id,
            seq=request.seq,
            ok=True,
            result=result,
        )

    def _respond(
        self, pending: _PendingRequest, response: ClientResponse
    ) -> None:
        try:
            pending.writer.write(encode_frame(response))
        except (OSError, RuntimeError):
            pass  # client gave up; its retry will dedup via request id

    # ------------------------------------------------------------------
    # ReadIndex reads
    # ------------------------------------------------------------------

    def _register_read(
        self, request: ClientRequest, writer: asyncio.StreamWriter
    ) -> None:
        """Queue a linearizable read without appending to the log.

        The read joins the tick's open batch (one quorum round serves
        every read registered in the same tick); the probes go out at
        flush time alongside the batched broadcast."""
        server = self.server
        batch = (
            self._read_batches.get(self._open_probe)
            if self._open_probe is not None
            else None
        )
        if batch is None or batch.term != server.time:
            self._probe_counter += 1
            batch = _ReadBatch(
                probe=self._probe_counter,
                term=server.time,
                index=server.commit_len,
                born_ms=now_ms(),
                acked={self.config.nid},
                reads=[],
            )
            self._read_batches[batch.probe] = batch
            self._open_probe = batch.probe
        batch.reads.append((request, writer, now_ms()))
        self._schedule_flush()

    def _on_read_probe(self, msg: ReadProbe) -> None:
        """A follower answers with *its own* current term: the ack only
        confirms the probing leader while the terms match."""
        self._send_all([
            ReadProbeAck(
                frm=self.config.nid, to=msg.frm,
                probe=msg.probe, time=self.server.time,
            )
        ])

    def _on_read_probe_ack(self, msg: ReadProbeAck) -> None:
        batch = self._read_batches.get(msg.probe)
        if batch is None:
            return
        server = self.server
        if server.role != LEADER or server.time != batch.term:
            return  # the batch will be bounced by _after_progress
        if msg.time != batch.term:
            # A stale follower (it will re-ack via the heartbeat
            # re-probe once caught up) or a newer term (in which case
            # raft traffic is about to dethrone us anyway).
            return
        batch.acked.add(msg.frm)
        self._maybe_complete_read(batch)

    def _maybe_complete_read(self, batch: _ReadBatch) -> None:
        server = self.server
        if not self.scheme.is_quorum(frozenset(batch.acked), server.config()):
            return
        self._read_batches.pop(batch.probe, None)
        if self._open_probe == batch.probe:
            self._open_probe = None
        # A same-term quorum acked after registration: no higher-term
        # leader existed when those acks were sent, so commit_len at
        # registration covered every write completed before the reads
        # began.  commit_len is monotonic, so the applied store (which
        # is at least at batch.index) serves linearizable results.
        self._apply_committed()
        for request, writer, invoked_ms in batch.reads:
            result = self._app_store.get(request.command[1])
            self._h_commit.observe(now_ms() - invoked_ms)
            try:
                writer.write(
                    encode_frame(
                        ClientResponse(
                            client_id=request.client_id,
                            seq=request.seq,
                            ok=True,
                            result=result,
                        )
                    )
                )
            except (OSError, RuntimeError):
                pass
        self._n_reads_fast += len(batch.reads)
        self._m_reads_fast.inc(len(batch.reads))

    def _expire_stale_reads(self) -> None:
        """Abandon read rounds that outlived an election timeout (a
        quorum is unreachable or the term moved on): the client
        retries, and the retry re-registers under current state."""
        if not self._read_batches:
            return
        horizon = now_ms() - 2 * self.config.timing.election_timeout_max_ms
        stale = [
            batch for batch in self._read_batches.values()
            if batch.born_ms < horizon or batch.term != self.server.time
        ]
        for batch in stale:
            self._read_batches.pop(batch.probe, None)
            if self._open_probe == batch.probe:
                self._open_probe = None
            self._refuse_reads(batch, error="retry")

    def _bounce_reads(self, error: str) -> None:
        batches = list(self._read_batches.values())
        self._read_batches = {}
        self._open_probe = None
        for batch in batches:
            self._refuse_reads(batch, error=error)

    def _refuse_reads(self, batch: _ReadBatch, error: str) -> None:
        hint = self._hint() if error == "not-leader" else None
        for request, writer, _ in batch.reads:
            try:
                writer.write(
                    encode_frame(
                        ClientResponse(
                            client_id=request.client_id,
                            seq=request.seq,
                            ok=False,
                            error=error,
                            leader_hint=hint,
                        )
                    )
                )
            except (OSError, RuntimeError):
                pass

    # ------------------------------------------------------------------
    # Batched flush
    # ------------------------------------------------------------------

    def _schedule_flush(self) -> None:
        """Coalesce all appends/reads admitted in one event-loop tick
        into a single broadcast (and a single ReadIndex round)."""
        if not self.config.batching:
            self._flush()
            return
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        server = self.server
        if server.role == LEADER:
            # Close the tick's read batch: new reads start a new round
            # (this round's probes ride along with the broadcast).
            self._open_probe = None
            self._send_all(server.broadcast_commit(self.scheme))
            # Single-member quorums (and the degenerate single-node
            # cluster) need no remote acks to confirm leadership.
            for batch in list(self._read_batches.values()):
                self._maybe_complete_read(batch)
        self._after_progress()

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def _hint(self) -> Optional[int]:
        if self.server.role == LEADER:
            return self.config.nid
        return self._leader_hint

    def _status(self) -> StatusResponse:
        server = self.server
        return StatusResponse(
            nid=self.config.nid,
            role=server.role,
            term=server.time,
            commit_len=server.commit_len,
            log_len=len(server.log),
            members=tuple(sorted(self.scheme.members(server.config()))),
            leader_hint=self._hint(),
            base_len=server.snapshot_base(),
            bytes_sent=self._n_bytes_sent,
            snapshots_installed=self._n_snapshots_in,
            reads_fast=self._n_reads_fast,
        )

    def _handle_client_request(
        self, request: ClientRequest, writer: asyncio.StreamWriter
    ) -> None:
        self._m_requests.inc()
        if self._obs:
            self.tracer.record(
                "client_invoke", now_ms(), self.config.nid,
                client=request.client_id, seq=request.seq,
                payload=repr(request.command),
            )
        server = self.server
        command = request.command
        refuse = None
        if server.role != LEADER:
            refuse = ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="not-leader", leader_hint=self._hint(),
            )
        elif not command:
            refuse = ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="empty-command",
            )
        elif _COMMAND_ARITY.get(command[0]) != len(command):
            # Admission-time vocabulary check: nothing the apply path
            # cannot fold ever enters the log.
            refuse = ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="bad-command",
            )
        elif self._shard_refuses(request):
            # Before the ReadIndex fast path on purpose: a frozen or
            # handed-off range must refuse reads too, or a stale-routed
            # get could observe state the new owner has moved past.
            refuse = ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="wrong-shard", table_version=self._shard_version,
            )
        if refuse is not None:
            writer.write(encode_frame(refuse))
            return

        if (
            self.config.read_index
            and command[0] == "get"
            and server.has_commit_at_current_time()
        ):
            # ReadIndex fast path: no log append, no replication of the
            # read itself -- a commit-index barrier plus one quorum
            # probe round.  Requires a committed entry of the current
            # term (leader completeness); before that, fall through to
            # the log path below.
            self._register_read(request, writer)
            return

        request_id = (request.client_id, request.seq)
        existing = find_request_compact(server, request_id)
        if existing is not None:
            # At-most-once: a previous attempt's entry survived (maybe
            # from a dead leader's replicated log, maybe folded into a
            # snapshot).  Wait for it -- and lay down a current-term
            # no-op barrier so the commit rule can reach it (a new
            # leader only counts its own term).
            target_len = existing
            if not server.has_entry_at_current_time():
                server.invoke(("noop",))
        elif command[0] == "reconfig":
            outcome = self._start_reconfig(request, request_id)
            if isinstance(outcome, ClientResponse):
                writer.write(encode_frame(outcome))
                return
            target_len = outcome
        else:
            server.invoke(command, request_id=request_id)
            target_len = len(server.log)

        self._pending.append(
            _PendingRequest(
                request=request,
                target_len=target_len,
                writer=writer,
                invoked_ms=now_ms(),
            )
        )
        # Batch: every append admitted this tick replicates in one
        # broadcast at flush (immediately when batching is off).
        self._schedule_flush()

    def _start_reconfig(self, request: ClientRequest, request_id):
        """Append the config entry, or say why not.  Returns the target
        log length, or a :class:`ClientResponse` refusal."""
        server = self.server
        try:
            members = frozenset(request.command[1])
        except (IndexError, TypeError):
            return ClientResponse(
                client_id=request.client_id, seq=request.seq, ok=False,
                error="bad-reconfig",
            )
        ok, reason = server.reconfig(members, self.scheme,
                                     request_id=request_id)
        if ok:
            if self._obs:
                self.tracer.record(
                    "reconfig", now_ms(), self.config.nid,
                    members=sorted(members), term=server.time,
                )
            return len(server.log)
        if reason == "r3-denied":
            # No committed entry of the current term yet: lay down a
            # no-op barrier (once) and ask the client to retry; the
            # retry passes R3 after the barrier commits.
            if not server.has_entry_at_current_time():
                server.invoke(("noop",))
                self._schedule_flush()
        return ClientResponse(
            client_id=request.client_id, seq=request.seq, ok=False,
            error=reason if reason != "r3-denied" else "retry",
        )


# ----------------------------------------------------------------------
# Process entry point
# ----------------------------------------------------------------------


async def _run(node: NetNode) -> None:
    loop = asyncio.get_running_loop()
    import signal

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, node.stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await node.serve_forever()


def run_node(
    config: NodeConfig,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Run one node until SIGTERM/SIGINT; the ``python -m repro.net
    node`` subcommand lands here."""
    asyncio.run(_run(NetNode(config, tracer=tracer, metrics=metrics)))
