"""Drive a *live* cluster through the Fig. 4 divergent-reconfig split.

:mod:`repro.raft.buggy` replays the historical single-node-membership
bug inside the in-memory network spec; this module stages the same
interleaving against real ``repro.net`` processes, using only the
admin partition RPC and directed client requests:

1. Let a leader **A** emerge naturally, then partition it from every
   peer (client and monitor connections stay up).
2. Ask A to remove one member.  Both variants append the config entry
   (A committed workload entries in its own term, so R3 is satisfied
   *at A*) -- but isolation means it replicates to nobody and can
   never commit.
3. The remaining nodes elect a new leader **B** that has never
   committed anything in its own fresh term.
4. Ask B to remove A.  This is where the variants diverge.  The clean
   spec refuses (R3: no committed current-term entry), lays a no-op
   barrier, commits it, and only then admits the config entry -- so a
   *committed* entry of B's term sits between the fork point and B's
   new config.  The buggy spec admits the config entry immediately.

After step 4 the buggy run has two RCaches forking with no
intervening CCache -- exactly the state Lemma B.8
(``ccache-in-rcache-fork``) forbids, and the reason R3 exists: each
side now holds a configuration under which it could assemble a
disjoint quorum (Fig. 4's split brain).  The streaming monitor flags
it within an event or two of B's append; the clean control run, under
the same partitions and requests, stays violation-free and finishes
the reconfiguration correctly.

Works with any cluster of >= 3 nodes (full *commit* divergence needs
4+, but the fork itself -- what the monitor checks -- needs only 3).
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import List, Optional

from .client import NetClient
from .procs import LocalCluster
from .wire import ClientResponse


@dataclass
class Fig4Result:
    """What happened at each step, plus the monitor's final verdict."""

    leader_a: int
    leader_b: Optional[int] = None
    #: How B's legal-or-not reconfig ended ("committed", "refused
    #: (...)", "no definitive response").
    reconfig_outcome: Optional[str] = None
    steps: List[str] = field(default_factory=list)
    #: The monitor's violation lines at the end (empty = clean).
    violations: List[str] = field(default_factory=list)
    bundle: Optional[str] = None

    @property
    def detected(self) -> bool:
        return bool(self.violations)

    def describe(self) -> str:
        lines = [f"fig4: S{self.leader_a} led first"] + [
            f"fig4: {step}" for step in self.steps
        ]
        if self.violations:
            lines.append("fig4: MONITOR FLAGGED:")
            lines.extend(f"  {line}" for line in self.violations)
        else:
            lines.append("fig4: monitor reports no violation")
        return "\n".join(lines)


def _directed(
    client: NetClient, nid: int, command, timeout_s: float
) -> Optional[ClientResponse]:
    """One directed attempt; None when it times out / the node is
    unreachable (both expected outcomes mid-partition)."""
    try:
        return client.request_direct(nid, command, timeout_s=timeout_s)
    except (OSError, ConnectionError, socket.timeout):
        return None


def _wait_leader_among(
    cluster: LocalCluster, client: NetClient, candidates, timeout_s: float
) -> Optional[int]:
    """The highest-term self-reported leader among ``candidates``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        best = None
        for nid in sorted(candidates):
            reply = client.status(nid)
            if reply is not None and reply.role == "leader":
                if best is None or reply.term > best[0]:
                    best = (reply.term, nid)
        if best is not None:
            return best[1]
        time.sleep(0.05)
    return None


def run_fig4_live(
    cluster: LocalCluster,
    settle_s: float = 20.0,
    detect_s: float = 15.0,
    expect_violation: bool = True,
) -> Fig4Result:
    """Stage the schedule against a started cluster; returns the result
    (raises ``RuntimeError`` only when the *cluster* fails to make the
    progress both variants must make, e.g. no leader at all).

    ``expect_violation=False`` (the clean control) takes one status
    sample instead of polling ``detect_s`` for a verdict that -- if the
    spec is right -- never comes.
    """
    nids = list(cluster.nids)
    if len(nids) < 3:
        raise ValueError("the fig4 schedule needs at least 3 nodes")
    with cluster.client(
        client_id="fig4-driver", total_timeout_s=settle_s
    ) as client:
        a = cluster.wait_for_leader(timeout_s=settle_s)
        result = Fig4Result(leader_a=a)
        others = [nid for nid in nids if nid != a]

        # -- isolate A from every peer (clients/monitor unaffected) ----
        client.partition(a, others)
        for nid in others:
            client.partition(nid, [a])
        result.steps.append(f"isolated S{a} from {others}")

        # -- reconfig at the isolated leader ---------------------------
        removed = max(nid for nid in nids if nid != a)
        conf_a = frozenset(nids) - {removed}
        reply = _directed(
            client, a, ("reconfig", conf_a), timeout_s=2.0
        )
        if reply is None:
            # No response: the entry entered A's log and can never
            # commit -- the buggy branch of step 2.
            result.steps.append(
                f"S{a} accepted removing S{removed} while isolated "
                f"(uncommittable entry in its log)"
            )
        else:
            result.steps.append(
                f"S{a} answered {reply.error or 'ok'!r} to removing "
                f"S{removed} while isolated"
            )

        # -- the rest elect a fresh-logged leader B --------------------
        b = _wait_leader_among(cluster, client, others, settle_s)
        if b is None:
            raise RuntimeError("no replacement leader emerged")
        result.leader_b = b
        result.steps.append(f"S{b} took over among {others}")

        # -- reconfig at B: remove A -----------------------------------
        conf_b = frozenset(nids) - {a}
        outcome = "no definitive response"
        deadline = time.monotonic() + settle_s
        while time.monotonic() < deadline:
            reply = _directed(
                client, b, ("reconfig", conf_b), timeout_s=3.0
            )
            if reply is None:
                time.sleep(0.1)
                continue
            if reply.ok:
                outcome = "committed"
                break
            if reply.error != "retry":
                outcome = f"refused ({reply.error})"
                break
            time.sleep(0.1)  # barrier still committing: retry
        result.steps.append(f"S{b} removing S{a}: {outcome}")
        result.reconfig_outcome = outcome

        # -- the verdict -----------------------------------------------
        deadline = time.monotonic() + (detect_s if expect_violation else 0.0)
        status = cluster.monitor_status()
        while (
            expect_violation
            and (status is None or status.ok)
            and time.monotonic() < deadline
        ):
            time.sleep(0.2)
            status = cluster.monitor_status()
        if status is not None:
            result.violations = list(status.violations)
            result.bundle = status.bundle

        # A stays fenced: the survivors were never partitioned from
        # each other, so the cluster is already live without it -- and
        # reconnecting A (with or without the bug) would only let its
        # doomed campaigns churn the survivors' terms.
        result.steps.append(f"left S{a} fenced; survivors stay connected")
    return result
