"""Compact visited set for 128-bit state fingerprints.

The explorer's visited set used to be a Python ``set`` of full state
objects (or of canonicalized serialization tuples under symmetry).  For
a run that touches a few hundred thousand states that is hundreds of
bytes per entry plus pointer overhead, and it is the dominant term in
checkpoint size.

:class:`FingerprintSet` stores each state as its 128-bit structural
fingerprint in a flat open-addressing hash table: 16 bytes per slot,
power-of-two capacity, linear probing.  The zero fingerprint is reserved
as the empty-slot sentinel -- :func:`repro.core.fingerprint.fp128` never
returns 0 (it remaps 0 to 1), so every real fingerprint is storable.

The table can live in one of three kinds of backing:

* a private ``bytearray`` (the default), which grows by doubling when
  the load factor exceeds 2/3;
* a caller-provided writable buffer (e.g. ``SharedMemory.buf``), whose
  capacity is fixed.  Inserting beyond the 2/3 load bound then raises
  ``OverflowError`` instead of growing, because the set cannot relocate
  memory it does not own.  Size such buffers with
  :meth:`FingerprintSet.buffer_bytes`; or
* an ``mmap`` over a file (:meth:`FingerprintSet.spilled`), the
  bounded-memory spill mode: the table layout is bit-identical to the
  in-RAM form, the OS pages slots in and out under memory pressure, and
  growth rebuilds into a sibling file swapped in with ``os.replace``.

The shared-memory form is what lets :mod:`repro.mc.parallel` workers
probe the master's visited set directly: the master writes new
fingerprints only between BFS levels (``pool.map`` is a barrier), so
workers always observe a consistent snapshot of the previous levels.
The spilled form inherits the same property through ``fork``: a
``MAP_SHARED`` file mapping is shared with forked workers, and the
master still writes only at level barriers.
"""

from __future__ import annotations

import mmap
import os
from typing import Iterator, Optional

__all__ = ["FingerprintSet"]

_SLOT_BYTES = 16
_WORD_MASK = (1 << 64) - 1

# Grow (or, for fixed buffers, refuse) above this load factor.
_MAX_LOAD_NUM = 2
_MAX_LOAD_DEN = 3

_MIN_CAPACITY = 64


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class FingerprintSet:
    """Open-addressing set of non-zero 128-bit integers."""

    __slots__ = ("_buf", "_words", "_capacity", "_mask", "_len", "_fixed", "_mmap", "_path")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        capacity = _next_pow2(max(int(capacity), _MIN_CAPACITY))
        self._init_backing(bytearray(capacity * _SLOT_BYTES), capacity, fixed=False)
        self._len = 0

    def _init_backing(self, buf, capacity: int, *, fixed: bool, mm=None, path=None) -> None:
        self._buf = buf
        self._words = memoryview(buf).cast("Q")
        self._capacity = capacity
        self._mask = capacity - 1
        self._fixed = fixed
        self._mmap = mm
        self._path = path

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, buf, *, clear: bool = False) -> "FingerprintSet":
        """Wrap a fixed-size writable buffer (e.g. ``SharedMemory.buf``).

        The buffer length must be a power-of-two multiple of 16 bytes.
        With ``clear=True`` the buffer is zeroed (fresh empty set);
        otherwise existing slots are counted, so a second attachment to
        an already-populated region sees its contents.
        """
        nbytes = len(memoryview(buf))
        if nbytes % _SLOT_BYTES:
            raise ValueError(f"buffer length {nbytes} is not a multiple of {_SLOT_BYTES}")
        capacity = nbytes // _SLOT_BYTES
        if capacity < 1 or capacity & (capacity - 1):
            raise ValueError(f"slot count {capacity} is not a power of two")
        self = cls.__new__(cls)
        self._init_backing(buf, capacity, fixed=True)
        if clear:
            memoryview(buf)[:] = bytes(nbytes)
            self._len = 0
        else:
            self._len = self._count_occupied()
        return self

    def _count_occupied(self) -> int:
        words = self._words
        return sum(
            1
            for i in range(self._capacity)
            if words[2 * i] or words[2 * i + 1]
        )

    @classmethod
    def spilled(
        cls,
        path: str,
        *,
        expected: int = 0,
        clear: bool = True,
    ) -> "FingerprintSet":
        """A set backed by an ``mmap`` over ``path`` (disk-spill mode).

        With ``clear=True`` (the default) the file is created/truncated
        to hold ``expected`` fingerprints within the load bound; with
        ``clear=False`` an existing spill file is re-attached as-is
        (its size fixes the capacity and its occupied slots are
        counted), which is how checkpoint resume reopens a visited set
        without re-reading it into RAM.

        The layout is identical to the in-RAM table, so extensional
        behaviour is too; only the residency differs -- the OS pages
        cold slots out under memory pressure.  Growth past the load
        bound rebuilds into a sibling file and atomically replaces
        ``path``.
        """
        if clear:
            nbytes = cls.buffer_bytes(expected)
        else:
            nbytes = os.path.getsize(path)
            if nbytes % _SLOT_BYTES:
                raise ValueError(f"spill file length {nbytes} is not a multiple of {_SLOT_BYTES}")
            capacity = nbytes // _SLOT_BYTES
            if capacity < 1 or capacity & (capacity - 1):
                raise ValueError(f"spill file slot count {capacity} is not a power of two")
        fd = os.open(path, os.O_RDWR | os.O_CREAT)
        try:
            if clear:
                os.ftruncate(fd, 0)
                os.ftruncate(fd, nbytes)
            mm = mmap.mmap(fd, nbytes)
        finally:
            os.close(fd)
        self = cls.__new__(cls)
        self._init_backing(mm, nbytes // _SLOT_BYTES, fixed=False, mm=mm, path=path)
        self._len = 0 if clear else self._count_occupied()
        return self

    @classmethod
    def from_packed(cls, data: bytes) -> "FingerprintSet":
        """Rebuild from :meth:`to_bytes` output."""
        if len(data) % _SLOT_BYTES:
            raise ValueError(
                f"packed fingerprint data has length {len(data)}, "
                f"not a multiple of {_SLOT_BYTES}"
            )
        count = len(data) // _SLOT_BYTES
        self = cls(capacity=_next_pow2(
            max(_MIN_CAPACITY, count * _MAX_LOAD_DEN // _MAX_LOAD_NUM + 1)
        ))
        for i in range(count):
            fp = int.from_bytes(data[i * _SLOT_BYTES : (i + 1) * _SLOT_BYTES], "little")
            self.add(fp)
        return self

    @staticmethod
    def buffer_bytes(expected: int) -> int:
        """Bytes of backing needed to hold ``expected`` fingerprints
        without exceeding the load bound (power-of-two slot count)."""
        capacity = _next_pow2(
            max(_MIN_CAPACITY, expected * _MAX_LOAD_DEN // _MAX_LOAD_NUM + 1)
        )
        return capacity * _SLOT_BYTES

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def __contains__(self, fp: int) -> bool:
        # Probe with a word-unit index (slot i lives at words[2i:2i+2]);
        # stepping by 2 mod 2*capacity is the linear probe without a
        # multiply per iteration.
        lo = fp & _WORD_MASK
        hi = (fp >> 64) & _WORD_MASK
        words = self._words
        wmask = 2 * self._capacity - 1
        j = (fp & self._mask) << 1
        while True:
            w0 = words[j]
            if w0 == lo and words[j + 1] == hi:
                return True
            if not (w0 or words[j + 1]):
                return False
            j = (j + 2) & wmask

    def add(self, fp: int) -> bool:
        """Insert ``fp``; return True if it was new."""
        if not 0 < fp < (1 << 128):
            raise ValueError(f"fingerprint out of range: {fp!r}")
        lo = fp & _WORD_MASK
        hi = (fp >> 64) & _WORD_MASK
        words = self._words
        wmask = 2 * self._capacity - 1
        j = (fp & self._mask) << 1
        while True:
            w0 = words[j]
            w1 = words[j + 1]
            if w0 == lo and w1 == hi:
                return False
            if not (w0 or w1):
                break
            j = (j + 2) & wmask
        if (self._len + 1) * _MAX_LOAD_DEN > self._capacity * _MAX_LOAD_NUM:
            if self._fixed:
                raise OverflowError(
                    f"fixed-capacity fingerprint set is full "
                    f"({self._len} of {self._capacity} slots)"
                )
            self._grow()
            return self.add(fp)
        words[j] = lo
        words[j + 1] = hi
        self._len += 1
        return True

    def _grow(self) -> None:
        old_words = self._words
        old_mmap = self._mmap
        old_capacity = self._capacity
        new_capacity = old_capacity * 2
        if old_mmap is None:
            self._init_backing(
                bytearray(new_capacity * _SLOT_BYTES), new_capacity, fixed=False
            )
        else:
            # Spilled sets rebuild into a sibling file, then atomically
            # take over the canonical path.  Forked workers holding the
            # pre-growth mapping keep a valid (subset) view -- safe for
            # the pre-filtering they use it for.
            path = self._path
            grow_path = path + ".grow"
            nbytes = new_capacity * _SLOT_BYTES
            fd = os.open(grow_path, os.O_RDWR | os.O_CREAT)
            try:
                os.ftruncate(fd, nbytes)
                mm = mmap.mmap(fd, nbytes)
            finally:
                os.close(fd)
            self._init_backing(mm, new_capacity, fixed=False, mm=mm, path=path)
        words = self._words
        mask = self._mask
        for j in range(old_capacity):
            lo = old_words[2 * j]
            hi = old_words[2 * j + 1]
            if not (lo or hi):
                continue
            i = ((hi << 64) | lo) & mask
            while words[2 * i] or words[2 * i + 1]:
                i = (i + 1) & mask
            words[2 * i] = lo
            words[2 * i + 1] = hi
        old_words.release()
        if old_mmap is not None:
            old_mmap.close()
            os.replace(self._path + ".grow", self._path)

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[int]:
        words = self._words
        for i in range(self._capacity):
            lo = words[2 * i]
            hi = words[2 * i + 1]
            if lo or hi:
                yield (hi << 64) | lo

    def __bool__(self) -> bool:
        return self._len > 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fixed(self) -> bool:
        return self._fixed

    @property
    def spill_path(self) -> Optional[str]:
        """The backing file of a spilled set (``None`` for in-RAM)."""
        return self._path

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Sorted little-endian 16-byte records -- the checkpoint-v2
        wire form.  Sorting makes the output canonical (independent of
        insertion order and table capacity)."""
        return b"".join(
            fp.to_bytes(_SLOT_BYTES, "little") for fp in sorted(self)
        )

    def content_digest(self) -> str:
        """A canonical digest of the *membership* of this set.

        ``"<count>:<multiset-sum mod 2**128>"`` -- independent of table
        capacity, probe order and backing, and computable in one pass
        without sorting.  Checkpoint v3 records this for the spill file
        it references, so a file mutated (or swapped) after the
        checkpoint was taken is detected at resume.
        """
        total = 0
        for fp in self:
            total = (total + fp) & ((1 << 128) - 1)
        return f"{self._len}:{total:032x}"

    def sync(self) -> None:
        """Flush a spilled set's dirty pages to its backing file."""
        if self._mmap is not None:
            self._mmap.flush()

    def release(self) -> None:
        """Release the memoryview over the backing buffer.  Required
        before closing a ``SharedMemory`` segment this set is attached
        to; the set is unusable afterwards."""
        words: Optional[memoryview] = getattr(self, "_words", None)
        if words is not None:
            words.release()
            self._words = None  # type: ignore[assignment]

    def close(self) -> None:
        """Release the buffer and, for spilled sets, close the mapping.

        The spill file itself is left on disk (checkpoints may
        reference it); callers unlink it when the run is done.
        """
        self.release()
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
