"""Compact visited set for 128-bit state fingerprints.

The explorer's visited set used to be a Python ``set`` of full state
objects (or of canonicalized serialization tuples under symmetry).  For
a run that touches a few hundred thousand states that is hundreds of
bytes per entry plus pointer overhead, and it is the dominant term in
checkpoint size.

:class:`FingerprintSet` stores each state as its 128-bit structural
fingerprint in a flat open-addressing hash table: 16 bytes per slot,
power-of-two capacity, linear probing.  The zero fingerprint is reserved
as the empty-slot sentinel -- :func:`repro.core.fingerprint.fp128` never
returns 0 (it remaps 0 to 1), so every real fingerprint is storable.

The table can live in one of two kinds of backing:

* a private ``bytearray`` (the default), which grows by doubling when
  the load factor exceeds 2/3; or
* a caller-provided writable buffer (e.g. ``SharedMemory.buf``), whose
  capacity is fixed.  Inserting beyond the 2/3 load bound then raises
  ``OverflowError`` instead of growing, because the set cannot relocate
  memory it does not own.  Size such buffers with
  :meth:`FingerprintSet.buffer_bytes`.

The shared-memory form is what lets :mod:`repro.mc.parallel` workers
probe the master's visited set directly: the master writes new
fingerprints only between BFS levels (``pool.map`` is a barrier), so
workers always observe a consistent snapshot of the previous levels.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["FingerprintSet"]

_SLOT_BYTES = 16
_WORD_MASK = (1 << 64) - 1

# Grow (or, for fixed buffers, refuse) above this load factor.
_MAX_LOAD_NUM = 2
_MAX_LOAD_DEN = 3

_MIN_CAPACITY = 64


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class FingerprintSet:
    """Open-addressing set of non-zero 128-bit integers."""

    __slots__ = ("_buf", "_words", "_capacity", "_mask", "_len", "_fixed")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        capacity = _next_pow2(max(int(capacity), _MIN_CAPACITY))
        self._init_backing(bytearray(capacity * _SLOT_BYTES), capacity, fixed=False)
        self._len = 0

    def _init_backing(self, buf, capacity: int, *, fixed: bool) -> None:
        self._buf = buf
        self._words = memoryview(buf).cast("Q")
        self._capacity = capacity
        self._mask = capacity - 1
        self._fixed = fixed

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, buf, *, clear: bool = False) -> "FingerprintSet":
        """Wrap a fixed-size writable buffer (e.g. ``SharedMemory.buf``).

        The buffer length must be a power-of-two multiple of 16 bytes.
        With ``clear=True`` the buffer is zeroed (fresh empty set);
        otherwise existing slots are counted, so a second attachment to
        an already-populated region sees its contents.
        """
        nbytes = len(memoryview(buf))
        if nbytes % _SLOT_BYTES:
            raise ValueError(f"buffer length {nbytes} is not a multiple of {_SLOT_BYTES}")
        capacity = nbytes // _SLOT_BYTES
        if capacity < 1 or capacity & (capacity - 1):
            raise ValueError(f"slot count {capacity} is not a power of two")
        self = cls.__new__(cls)
        self._init_backing(buf, capacity, fixed=True)
        if clear:
            memoryview(buf)[:] = bytes(nbytes)
            self._len = 0
        else:
            words = self._words
            self._len = sum(
                1
                for i in range(capacity)
                if words[2 * i] or words[2 * i + 1]
            )
        return self

    @classmethod
    def from_packed(cls, data: bytes) -> "FingerprintSet":
        """Rebuild from :meth:`to_bytes` output."""
        if len(data) % _SLOT_BYTES:
            raise ValueError(
                f"packed fingerprint data has length {len(data)}, "
                f"not a multiple of {_SLOT_BYTES}"
            )
        count = len(data) // _SLOT_BYTES
        self = cls(capacity=_next_pow2(max(_MIN_CAPACITY, count * _MAX_LOAD_DEN // _MAX_LOAD_NUM + 1)))
        for i in range(count):
            fp = int.from_bytes(data[i * _SLOT_BYTES : (i + 1) * _SLOT_BYTES], "little")
            self.add(fp)
        return self

    @staticmethod
    def buffer_bytes(expected: int) -> int:
        """Bytes of backing needed to hold ``expected`` fingerprints
        without exceeding the load bound (power-of-two slot count)."""
        capacity = _next_pow2(
            max(_MIN_CAPACITY, expected * _MAX_LOAD_DEN // _MAX_LOAD_NUM + 1)
        )
        return capacity * _SLOT_BYTES

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def __contains__(self, fp: int) -> bool:
        # Probe with a word-unit index (slot i lives at words[2i:2i+2]);
        # stepping by 2 mod 2*capacity is the linear probe without a
        # multiply per iteration.
        lo = fp & _WORD_MASK
        hi = (fp >> 64) & _WORD_MASK
        words = self._words
        wmask = 2 * self._capacity - 1
        j = (fp & self._mask) << 1
        while True:
            w0 = words[j]
            if w0 == lo and words[j + 1] == hi:
                return True
            if not (w0 or words[j + 1]):
                return False
            j = (j + 2) & wmask

    def add(self, fp: int) -> bool:
        """Insert ``fp``; return True if it was new."""
        if not 0 < fp < (1 << 128):
            raise ValueError(f"fingerprint out of range: {fp!r}")
        lo = fp & _WORD_MASK
        hi = (fp >> 64) & _WORD_MASK
        words = self._words
        wmask = 2 * self._capacity - 1
        j = (fp & self._mask) << 1
        while True:
            w0 = words[j]
            w1 = words[j + 1]
            if w0 == lo and w1 == hi:
                return False
            if not (w0 or w1):
                break
            j = (j + 2) & wmask
        if (self._len + 1) * _MAX_LOAD_DEN > self._capacity * _MAX_LOAD_NUM:
            if self._fixed:
                raise OverflowError(
                    f"fixed-capacity fingerprint set is full "
                    f"({self._len} of {self._capacity} slots)"
                )
            self._grow()
            return self.add(fp)
        words[j] = lo
        words[j + 1] = hi
        self._len += 1
        return True

    def _grow(self) -> None:
        old_words = self._words
        old_capacity = self._capacity
        self._init_backing(
            bytearray(old_capacity * 2 * _SLOT_BYTES), old_capacity * 2, fixed=False
        )
        words = self._words
        mask = self._mask
        for j in range(old_capacity):
            lo = old_words[2 * j]
            hi = old_words[2 * j + 1]
            if not (lo or hi):
                continue
            i = ((hi << 64) | lo) & mask
            while words[2 * i] or words[2 * i + 1]:
                i = (i + 1) & mask
            words[2 * i] = lo
            words[2 * i + 1] = hi
        old_words.release()

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[int]:
        words = self._words
        for i in range(self._capacity):
            lo = words[2 * i]
            hi = words[2 * i + 1]
            if lo or hi:
                yield (hi << 64) | lo

    def __bool__(self) -> bool:
        return self._len > 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fixed(self) -> bool:
        return self._fixed

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Sorted little-endian 16-byte records -- the checkpoint-v2
        wire form.  Sorting makes the output canonical (independent of
        insertion order and table capacity)."""
        return b"".join(
            fp.to_bytes(_SLOT_BYTES, "little") for fp in sorted(self)
        )

    def release(self) -> None:
        """Release the memoryview over the backing buffer.  Required
        before closing a ``SharedMemory`` segment this set is attached
        to; the set is unusable afterwards."""
        words: Optional[memoryview] = getattr(self, "_words", None)
        if words is not None:
            words.release()
            self._words = None  # type: ignore[assignment]
