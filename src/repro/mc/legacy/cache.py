"""Cache variants of the Adore model (Fig. 6 / Fig. 24 of the paper).

A *cache* is one node of the Adore cache tree.  There are four variants:

* :class:`ECache` -- records a leader election (paper: *ECache*).
* :class:`MCache` -- records a method invocation (paper: *MCache*).
* :class:`RCache` -- records a reconfiguration command (paper: *RCache*).
* :class:`CCache` -- records a successful commit (paper: *CCache*).

Every cache carries the node id of the replica whose operation created it
(``caller``), a logical timestamp (``time`` -- a Paxos ballot / Raft term),
a version number (``vrsn`` -- reset to 0 by elections, incremented by each
method/reconfig call), and the configuration (``conf``) under which it was
created.  For an :class:`RCache` the ``conf`` field holds the *new*
configuration, which takes effect immediately (hot reconfiguration).

Configurations are opaque to this module: they are any hashable value
interpreted by a :class:`repro.core.config.ReconfigScheme`.

The strict order ``>`` on caches (Fig. 9/26) compares ``(time, vrsn)``
lexicographically, with the tie-break that a :class:`CCache` is greater
than a non-CCache with the same timestamp and version.  This is exposed
as :func:`cache_gt` and as the sort key :func:`order_key`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Tuple, Union

NodeId = int
Time = int
Vrsn = int
Cid = int
Method = Hashable
Config = Hashable


@dataclass(frozen=True)
class _CacheBase:
    """Fields shared by every cache variant."""

    caller: NodeId
    time: Time
    vrsn: Vrsn
    conf: Config

    #: Short tag used in renderings and reprs; overridden per variant.
    kind: str = field(default="?", init=False, repr=False)

    @property
    def supporters(self) -> FrozenSet[NodeId]:
        """The replicas that approved this cache.

        For method and reconfiguration caches the only supporter is the
        caller (Fig. 9); election and commit caches override this with the
        explicit voter set recorded by the oracle.
        """
        return frozenset({self.caller})

    @property
    def observers(self) -> FrozenSet[NodeId]:
        """The replicas whose *local log* covers this cache.

        This is the relation ``mostRecent`` maximizes over.  It differs
        from :attr:`supporters` in exactly one case: voting in an
        election records a supporter of the ECache (used for timestamp
        bookkeeping and the quorum-intersection arguments) but does
        **not** hand the voter the leader's log -- in Raft a granted
        vote leaves the voter's log untouched.  Hence an ECache is
        observed only by its caller (the winner adopted the branch),
        while a commit's acknowledging quorum has adopted the leader's
        branch up to the committed cache.  This distinction is what
        makes the Fig. 4 counterexample expressible: a voter of a later
        election can still legitimately serve an older branch.
        """
        return frozenset({self.caller})

    def describe(self) -> str:
        """A compact human-readable rendering, e.g. ``E(n1,t2,v0)``."""
        return f"{self.kind}(n{self.caller},t{self.time},v{self.vrsn})"


@dataclass(frozen=True)
class ECache(_CacheBase):
    """An election cache: ``ECache(nid, time, vrsn, supporters, conf)``.

    Created by a successful ``pull``.  ``vrsn`` is always 0 (version
    numbers reset at the start of each round).  ``voters`` records the
    replicas whose votes elected the caller.
    """

    voters: FrozenSet[NodeId] = frozenset()
    kind: str = field(default="E", init=False, repr=False)

    @property
    def supporters(self) -> FrozenSet[NodeId]:
        return self.voters

    @property
    def observers(self) -> FrozenSet[NodeId]:
        # Votes do not transfer log entries (see _CacheBase.observers),
        # but winning does: the elected leader's state *is* the adopted
        # branch this ECache extends (explicitly adopted in Paxos-style
        # elections; the candidate's own log in Raft-style ones).  The
        # caller is therefore an observer; the voters are not.  Note
        # {caller} ⊆ voters, so this stays a sub-relation of the
        # paper's supporter relation.
        return frozenset({self.caller})


@dataclass(frozen=True)
class MCache(_CacheBase):
    """A method cache: ``MCache(nid, time, vrsn, method, conf)``.

    Created by ``invoke``.  The method is an arbitrary identifier: actual
    method semantics have no bearing on protocol safety (Section 3), so
    the model treats them opaquely.  Applications interpret them (see
    :mod:`repro.runtime.kvstore`).
    """

    method: Method = None
    kind: str = field(default="M", init=False, repr=False)


@dataclass(frozen=True)
class RCache(_CacheBase):
    """A reconfiguration cache: ``RCache(nid, time, vrsn, conf)``.

    Created by ``reconfig``.  Behaves like an :class:`MCache` whose
    payload is a new configuration; ``conf`` holds the *new*
    configuration, which descendants inherit immediately.
    """

    kind: str = field(default="R", init=False, repr=False)


@dataclass(frozen=True)
class CCache(_CacheBase):
    """A commit cache: ``CCache(nid, time, vrsn, supporters, conf)``.

    Created by a successful ``push``; inserted *between* the committed
    cache and its children (``insertBtw``), which keeps the tree
    append-only.  ``voters`` records the quorum that acknowledged the
    commit.  A CCache copies its parent's ``time`` and ``vrsn`` but is
    ordered strictly greater than it.
    """

    voters: FrozenSet[NodeId] = frozenset()
    kind: str = field(default="C", init=False, repr=False)

    @property
    def supporters(self) -> FrozenSet[NodeId]:
        return self.voters

    @property
    def observers(self) -> FrozenSet[NodeId]:
        # Acknowledging a commit adopts the leader's branch up to here.
        return self.voters


Cache = Union[ECache, MCache, RCache, CCache]


def is_ecache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is an election cache."""
    return isinstance(cache, ECache)


def is_mcache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is a method cache."""
    return isinstance(cache, MCache)


def is_rcache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is a reconfiguration cache."""
    return isinstance(cache, RCache)


def is_ccache(cache: _CacheBase) -> bool:
    """True iff ``cache`` is a commit cache."""
    return isinstance(cache, CCache)


def is_committable(cache: _CacheBase) -> bool:
    """True iff ``cache`` may be the target of a ``push`` (M or R cache)."""
    return isinstance(cache, (MCache, RCache))


def order_key(cache: _CacheBase) -> Tuple[Time, Vrsn, int]:
    """Sort key realizing the strict order ``>`` of Fig. 9/26.

    ``(time, vrsn)`` lexicographic, then CCaches above non-CCaches at the
    same ``(time, vrsn)``.  Under the model's invariants (unique leader
    per timestamp, version numbers incremented per call) this key is
    unique for the caches the semantics ever compares.
    """
    return (cache.time, cache.vrsn, 1 if is_ccache(cache) else 0)


def cache_gt(left: _CacheBase, right: _CacheBase) -> bool:
    """The strict order ``left > right`` on caches (Fig. 9/26)."""
    return order_key(left) > order_key(right)


def cache_ge(left: _CacheBase, right: _CacheBase) -> bool:
    """Non-strict order: ``left > right`` or equal order keys."""
    return order_key(left) >= order_key(right)
