"""Operational semantics of the Adore operations (Fig. 8, 10 / Fig. 28).

Two layers:

* Pure step functions (:func:`apply_pull`, :func:`apply_invoke`,
  :func:`apply_reconfig`, :func:`apply_push`) that map a state plus an
  (already resolved) oracle outcome to the next state.  These are exact
  transcriptions of the PULLOK/INVOKEOK/RECONFIGOK/PUSHOK rules together
  with their NoOp counterparts.  The model checker drives these directly.
* :class:`AdoreMachine` -- a convenience wrapper bundling a state, a
  :class:`~repro.core.config.ReconfigScheme` and an
  :class:`~repro.core.oracle.Oracle`, recording a history of
  :class:`OpResult` steps.  Examples and tests drive this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .aux import active_cache, most_recent, r2_holds, r3_holds
from .cache import CCache, Cid, Config, ECache, MCache, Method, NodeId, RCache
from ...core.config import ReconfigScheme
from ...core.errors import InvalidOperation, NotLeader, ReconfigDenied
from .oracle import Fail, Oracle, PullOutcome, PushOutcome, validate_pull, validate_push
from .state import AdoreState, initial_state


@dataclass(frozen=True)
class OpResult:
    """The record of one operation step.

    ``ok`` is True when the operation changed the cache tree.  ``reason``
    explains NoOps (oracle failure, lost election, stale leader, R1-R3
    denial).  ``new_cid`` is the cid of the cache the step added, if any.
    """

    op: str
    nid: NodeId
    ok: bool
    reason: str
    state: AdoreState
    new_cid: Optional[Cid] = None
    outcome: Union[PullOutcome, PushOutcome, None] = None
    #: The operation's argument (the method for invoke, the new
    #: configuration for reconfig); None for pull/push.
    arg: object = None


# ----------------------------------------------------------------------
# Pure step functions
# ----------------------------------------------------------------------

def apply_pull(
    state: AdoreState, nid: NodeId, outcome: PullOutcome, scheme: ReconfigScheme
) -> Tuple[AdoreState, Optional[Cid], str]:
    """PULLOK / PULLNOOP: run an election with a resolved oracle outcome.

    On ``PullOk`` the supporters' observed times always advance; the
    ECache is only added when the supporters form a quorum of the adopted
    cache's configuration (a failed election may still block older
    leaders -- that is exactly the timestamp bump).
    """
    if isinstance(outcome, Fail):
        return state, None, "oracle-fail"
    c_max_cid = most_recent(state.tree, outcome.group)
    c_max = state.tree.cache(c_max_cid)
    state = state.set_times(outcome.group, outcome.time)
    if not scheme.is_quorum(outcome.group, c_max.conf):
        return state, None, "no-quorum"
    new_cache = ECache(
        caller=nid,
        time=outcome.time,
        vrsn=0,
        conf=c_max.conf,
        voters=outcome.group,
    )
    tree, cid = state.tree.add_leaf(c_max_cid, new_cache)
    return state.with_tree(tree), cid, "ok"


def apply_invoke(
    state: AdoreState, nid: NodeId, method: Method
) -> Tuple[AdoreState, Optional[Cid], str]:
    """INVOKEOK / NOOP: append an MCache to the caller's active branch.

    Fails (NoOp) when the caller has no active cache or has been
    preempted by a newer leader (its observed time moved past the active
    cache's timestamp).
    """
    active = active_cache(state.tree, nid)
    if active is None:
        return state, None, "no-active-cache"
    cache = state.tree.cache(active)
    if not state.is_leader(nid, cache.time):
        return state, None, "not-leader"
    new_cache = MCache(
        caller=nid,
        time=cache.time,
        vrsn=cache.vrsn + 1,
        conf=cache.conf,
        method=method,
    )
    tree, cid = state.tree.add_leaf(active, new_cache)
    return state.with_tree(tree), cid, "ok"


def apply_reconfig(
    state: AdoreState,
    nid: NodeId,
    new_conf: Config,
    scheme: ReconfigScheme,
    enforce_r2: bool = True,
    enforce_r3: bool = True,
) -> Tuple[AdoreState, Optional[Cid], str]:
    """RECONFIGOK / NOOP: append an RCache carrying ``new_conf``.

    ``enforce_r2`` / ``enforce_r3`` exist solely for the ablation studies
    (reproducing the unsound pre-fix Raft algorithm of Fig. 4); leave
    them True for the verified model.
    """
    active = active_cache(state.tree, nid)
    if active is None:
        return state, None, "no-active-cache"
    cache = state.tree.cache(active)
    if not state.is_leader(nid, cache.time):
        return state, None, "not-leader"
    if not scheme.r1_plus(cache.conf, new_conf):
        return state, None, "r1-denied"
    if enforce_r2 and not r2_holds(state.tree, active):
        return state, None, "r2-denied"
    if enforce_r3 and not r3_holds(state.tree, active):
        return state, None, "r3-denied"
    new_cache = RCache(
        caller=nid,
        time=cache.time,
        vrsn=cache.vrsn + 1,
        conf=new_conf,
    )
    tree, cid = state.tree.add_leaf(active, new_cache)
    return state.with_tree(tree), cid, "ok"


def apply_push(
    state: AdoreState, nid: NodeId, outcome: PushOutcome, scheme: ReconfigScheme
) -> Tuple[AdoreState, Optional[Cid], str]:
    """PUSHOK / PUSHNOOP: commit with a resolved oracle outcome.

    The new CCache copies the target's time and version and is inserted
    *between* the target and its children, so partial failures hanging
    off the target stay viable commit candidates.
    """
    if isinstance(outcome, Fail):
        return state, None, "oracle-fail"
    target = state.tree.cache(outcome.target)
    state = state.set_times(outcome.group, target.time)
    if not scheme.is_quorum(outcome.group, target.conf):
        return state, None, "no-quorum"
    new_cache = CCache(
        caller=nid,
        time=target.time,
        vrsn=target.vrsn,
        conf=target.conf,
        voters=outcome.group,
    )
    tree, cid = state.tree.insert_btw(outcome.target, new_cache)
    return state.with_tree(tree), cid, "ok"


# ----------------------------------------------------------------------
# Machine wrapper
# ----------------------------------------------------------------------

@dataclass
class AdoreMachine:
    """A running Adore instance: state + scheme + oracle + history.

    ``strict`` turns precondition NoOps (not-leader, R1-R3 denials) into
    exceptions, which scenario tests use to assert that a step is
    *forbidden* rather than merely unlucky.
    """

    scheme: ReconfigScheme
    oracle: Oracle
    state: AdoreState
    strict: bool = False
    #: Ablation switches -- leave True for the verified model.  Setting
    #: ``enforce_r3=False`` reproduces the pre-fix Raft single-node
    #: algorithm whose violation Fig. 4 shows.
    enforce_r2: bool = True
    enforce_r3: bool = True
    history: List[OpResult] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        conf0: Config,
        scheme: ReconfigScheme,
        oracle: Oracle,
        strict: bool = False,
        enforce_r2: bool = True,
        enforce_r3: bool = True,
    ) -> "AdoreMachine":
        """A machine in the initial state rooted at ``conf0``."""
        return cls(
            scheme=scheme,
            oracle=oracle,
            state=initial_state(conf0, scheme),
            strict=strict,
            enforce_r2=enforce_r2,
            enforce_r3=enforce_r3,
        )

    def _record(self, result: OpResult) -> OpResult:
        self.history.append(result)
        self.state = result.state
        if self.strict and not result.ok and result.reason not in (
            "oracle-fail",
            "no-quorum",
        ):
            if result.reason in ("r1-denied", "r2-denied", "r3-denied"):
                raise ReconfigDenied(f"{result.op} by {result.nid}: {result.reason}")
            if result.reason == "not-leader":
                raise NotLeader(f"{result.op} by {result.nid}: {result.reason}")
            raise InvalidOperation(f"{result.op} by {result.nid}: {result.reason}")
        return result

    def pull(self, nid: NodeId) -> OpResult:
        """Run an election attempt by ``nid``."""
        outcome = self.oracle.pull_outcome(self.state, nid, self.scheme)
        validate_pull(self.state, nid, outcome, self.scheme)
        state, cid, reason = apply_pull(self.state, nid, outcome, self.scheme)
        return self._record(
            OpResult("pull", nid, cid is not None, reason, state, cid, outcome)
        )

    def invoke(self, nid: NodeId, method: Method) -> OpResult:
        """Invoke ``method`` as leader ``nid``."""
        state, cid, reason = apply_invoke(self.state, nid, method)
        return self._record(
            OpResult("invoke", nid, cid is not None, reason, state, cid,
                     arg=method)
        )

    def reconfig(self, nid: NodeId, new_conf: Config) -> OpResult:
        """Propose configuration ``new_conf`` as leader ``nid``."""
        state, cid, reason = apply_reconfig(
            self.state,
            nid,
            new_conf,
            self.scheme,
            enforce_r2=self.enforce_r2,
            enforce_r3=self.enforce_r3,
        )
        return self._record(
            OpResult("reconfig", nid, cid is not None, reason, state, cid,
                     arg=new_conf)
        )

    def push(self, nid: NodeId) -> OpResult:
        """Run a commit attempt by ``nid``."""
        outcome = self.oracle.push_outcome(self.state, nid, self.scheme)
        validate_push(self.state, nid, outcome, self.scheme)
        state, cid, reason = apply_push(self.state, nid, outcome, self.scheme)
        return self._record(
            OpResult("push", nid, cid is not None, reason, state, cid, outcome)
        )

    def render(self) -> str:
        """ASCII rendering of the current cache tree."""
        return self.state.tree.render()

    # ------------------------------------------------------------------
    # Event sourcing (parity with the ADO model's event log)
    # ------------------------------------------------------------------

    def export_history(self) -> List[Tuple]:
        """The machine's run as a replayable event list.

        Each element is ``(op, nid, arg, outcome)``; ``arg`` is the
        invoke method / reconfig configuration, ``outcome`` the resolved
        oracle outcome for pull/push.  Feed to :func:`replay_history`.
        """
        return [
            (r.op, r.nid, r.arg, r.outcome) for r in self.history
        ]


def replay_history(
    conf0: Config,
    scheme: ReconfigScheme,
    history,
    enforce_r2: bool = True,
    enforce_r3: bool = True,
) -> "AdoreMachine":
    """Reconstruct a machine from an exported history.

    The recorded oracle outcomes are replayed through a scripted oracle,
    so the reconstruction is exact: the final state equals the
    original's (the semantics is deterministic given the outcomes).
    """
    from .oracle import ScriptedOracle

    outcomes = [
        outcome for op, _, _, outcome in history if op in ("pull", "push")
    ]
    machine = AdoreMachine.create(
        conf0,
        scheme,
        ScriptedOracle(outcomes),
        enforce_r2=enforce_r2,
        enforce_r3=enforce_r3,
    )
    for op, nid, arg, _ in history:
        if op == "pull":
            machine.pull(nid)
        elif op == "invoke":
            machine.invoke(nid, arg)
        elif op == "reconfig":
            machine.reconfig(nid, arg)
        elif op == "push":
            machine.push(nid)
        else:
            raise ValueError(f"unknown op {op!r} in history")
    return machine
