"""The Adore abstract state ``Σ_Adore = CacheTree × TimeMap`` (Fig. 6/24).

``TimeMap ≜ N_nid → N_time`` records the largest logical timestamp each
replica has observed.  The state is immutable; every operation returns a
new state.  Hashability is what lets the explicit-state model checker
de-duplicate visited states.

The initial state (:func:`initial_state`) follows the paper's convention
that "the root cache is initialized with some conf₀".  We realize the
root as a CCache at time 0 supported by every member of conf₀.  Making
the root a commit cache gives the right base behaviour for every
auxiliary definition: ``mostRecent`` and ``lastCommit`` fall back to the
root, and R3 correctly blocks reconfiguration until the first commit of
the current term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from .cache import CCache, Config, NodeId, Time
from ...core.config import ReconfigScheme
from .tree import ROOT_CID, CacheTree


@dataclass(frozen=True)
class AdoreState:
    """The pair ``(tree, times)`` of Fig. 6, as an immutable value."""

    tree: CacheTree
    times: "TimeMap"

    def time_of(self, nid: NodeId) -> Time:
        """``times(st)[nid]``: the largest timestamp ``nid`` has observed."""
        return self.times.get(nid, 0)

    def set_times(self, group: Iterable[NodeId], time: Time) -> "AdoreState":
        """``setTimes(st, Q, t)``: record timestamp ``t`` for every node in ``Q``."""
        return AdoreState(self.tree, self.times.update_many(group, time))

    def with_tree(self, tree: CacheTree) -> "AdoreState":
        """Replace the cache tree, keeping the time map."""
        return AdoreState(tree, self.times)

    def is_leader(self, nid: NodeId, time: Time) -> bool:
        """``isLeader(st, nid, t) ≜ times(st)[nid] = t`` (Fig. 9)."""
        return self.time_of(nid) == time

    def max_time(self) -> Time:
        """The largest timestamp observed by any replica (0 if none)."""
        return self.times.max_time()


class TimeMap:
    """An immutable map from node id to the largest observed timestamp.

    Nodes never seen default to timestamp 0.
    """

    __slots__ = ("_times", "_hash")

    def __init__(self, times: Mapping[NodeId, Time] = ()) -> None:
        self._times: Dict[NodeId, Time] = {
            nid: t for nid, t in dict(times).items() if t != 0
        }
        self._hash = None

    def get(self, nid: NodeId, default: Time = 0) -> Time:
        return self._times.get(nid, default)

    def update_many(self, group: Iterable[NodeId], time: Time) -> "TimeMap":
        updated = dict(self._times)
        for nid in group:
            updated[nid] = time
        return TimeMap(updated)

    def max_time(self) -> Time:
        return max(self._times.values(), default=0)

    def items(self) -> Iterable[Tuple[NodeId, Time]]:
        return sorted(self._times.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeMap):
            return NotImplemented
        return self._times == other._times

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._times.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"n{nid}: {t}" for nid, t in self.items())
        return f"TimeMap({{{inner}}})"


def root_cache(conf0: Config, scheme: ReconfigScheme) -> CCache:
    """The root CCache at time 0 supported by every member of ``conf0``."""
    return CCache(caller=0, time=0, vrsn=0, conf=conf0, voters=scheme.members(conf0))


def initial_state(conf0: Config, scheme: ReconfigScheme) -> AdoreState:
    """The initial Adore state: a one-cache tree rooted at ``conf0``."""
    tree = CacheTree.initial(root_cache(conf0, scheme))
    return AdoreState(tree, TimeMap())


def initial_supporters(state: AdoreState) -> FrozenSet[NodeId]:
    """The supporters of the root cache (the members of conf₀)."""
    return state.tree.cache(ROOT_CID).supporters
