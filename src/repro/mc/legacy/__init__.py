"""The seed (pre-optimization) model-checking engine, frozen in-tree.

This package is a verbatim copy of the explorer hot path as it stood
before the hash-consing / incremental-fingerprint rework: the original
``CacheTree`` (full-copy growth operations, per-query tree scans), the
original auxiliary functions, oracles, semantics, safety checkers, and
the original sequential :class:`Explorer`.  Only the modules that the
rework touched are vendored; unchanged leaf modules
(:mod:`repro.core.config`, :mod:`repro.core.errors`) are imported from
their current location.

It exists for two reasons:

* **Benchmarking** -- ``benchmarks/test_mc_throughput.py`` measures the
  old and new engines side by side on the same machine in the same
  process tree, so the recorded speedup is a real like-for-like ratio
  rather than a number copied from an older commit.
* **Parity testing** -- ``tests/mc/test_parity.py`` asserts that the
  optimized engine visits exactly the same number of states and
  transitions, reaches the same verdict, and reports the same first
  violation as this engine on the Fig. 4 instances, intact and ablated.

Do not "fix" or optimize anything here; its value is precisely that it
does not change.  It will be deleted once the optimized engine has
soaked long enough to be trusted on its own.
"""

from __future__ import annotations

from typing import Optional

from ...schemes.single_node import RaftSingleNodeScheme, UnsafeMultiNodeScheme
from .cache import CCache
from .explorer import (
    ExplorationResult,
    Explorer,
    OpBudget,
    jump_reconfig_candidates,
)
from .oracle import Fail

__all__ = [
    "ExplorationResult",
    "Explorer",
    "OpBudget",
    "verify_intact_explorer",
    "hunt_explorer",
    "r3_explorer",
    "r2_explorer",
    "overlap_explorer",
    "insert_btw_explorer",
]


def verify_intact_explorer(
    budget: Optional[OpBudget] = None,
    conf0: frozenset = frozenset({1, 2, 3}),
    max_states: int = 500_000,
    **overrides,
) -> Explorer:
    """The seed engine configured exactly like
    :func:`repro.mc.ablations.verify_intact_explorer`."""
    params = dict(
        scheme=RaftSingleNodeScheme(),
        conf0=conf0,
        budget=budget or OpBudget(pulls=2, invokes=2, reconfigs=2, pushes=2),
        max_states=max_states,
        stop_at_first_violation=True,
        strategy="bfs",
    )
    params.update(overrides)
    return Explorer(**params)


# ----------------------------------------------------------------------
# Seed-engine twins of the repro.mc.ablations hunt factories, for
# like-for-like parity tests.  They must build every state ingredient
# (caches, push override) from the *legacy* modules: mixing current-core
# objects into legacy trees would silently break the seed engine's
# exact-equality dedup.
# ----------------------------------------------------------------------

FIG4_NODES = frozenset({1, 2, 3, 4})
FIG4_BUDGET = OpBudget(pulls=3, invokes=1, reconfigs=2, pushes=2)


def hunt_explorer(**overrides) -> Explorer:
    """Seed-engine twin of ``repro.mc.ablations._hunt_explorer``."""
    params = dict(
        scheme=RaftSingleNodeScheme(),
        conf0=FIG4_NODES,
        callers=[1, 2],
        budget=FIG4_BUDGET,
        quorum_pulls_only=True,
        minimal_quorums_only=True,
        invariants=["safety"],
        strategy="guided",
    )
    params.update(overrides)
    return Explorer(**params)


def r3_explorer(max_states: int = 300_000, **overrides) -> Explorer:
    return hunt_explorer(enforce_r3=False, max_states=max_states, **overrides)


def _removals_only(state, nid, conf):
    conf_set = frozenset(conf)
    if len(conf_set) > 1:
        for node in sorted(conf_set):
            yield conf_set - {node}


def r2_explorer(max_states: int = 300_000, **overrides) -> Explorer:
    params = dict(
        enforce_r2=False,
        max_states=max_states,
        budget=OpBudget(pulls=2, invokes=2, reconfigs=3, pushes=3),
        reconfig_candidates=_removals_only,
    )
    params.update(overrides)
    return hunt_explorer(**params)


def overlap_explorer(max_states: int = 300_000, **overrides) -> Explorer:
    params = dict(
        scheme=UnsafeMultiNodeScheme(),
        reconfig_candidates=jump_reconfig_candidates(FIG4_NODES),
        max_states=max_states,
        budget=OpBudget(pulls=3, invokes=2, reconfigs=1, pushes=3),
    )
    params.update(overrides)
    return hunt_explorer(**params)


def _leaf_push(state, nid, outcome, scheme):
    """The insertBtw ablation's push, over legacy state objects."""
    if isinstance(outcome, Fail):
        return state, None, "oracle-fail"
    target = state.tree.cache(outcome.target)
    state = state.set_times(outcome.group, target.time)
    if not scheme.is_quorum(outcome.group, target.conf):
        return state, None, "no-quorum"
    new_cache = CCache(
        caller=nid,
        time=target.time,
        vrsn=target.vrsn,
        conf=target.conf,
        voters=outcome.group,
    )
    tree, cid = state.tree.add_leaf(outcome.target, new_cache)
    return state.with_tree(tree), cid, "ok"


def insert_btw_explorer(max_states: int = 100_000, **overrides) -> Explorer:
    params = dict(
        budget=OpBudget(pulls=1, invokes=2, reconfigs=0, pushes=2),
        invariants=["safety", "well-formedness"],
        enforce_r3=True,
        max_states=max_states,
        strategy="bfs",
        push_step=_leaf_push,
    )
    params.update(overrides)
    return hunt_explorer(**params)
