"""Auxiliary definitions of the Adore semantics (Fig. 9 / Fig. 25-26).

These are direct transcriptions of the paper's helper functions.  They
operate on cids rather than caches so callers can navigate the tree from
the results.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from .cache import Cache, Cid, Config, NodeId, cache_gt, is_ccache, is_committable, is_rcache
from ...core.config import ReconfigScheme
from .state import AdoreState
from .tree import ROOT_CID, CacheTree


def most_recent(tree: CacheTree, group: Iterable[NodeId]) -> Cid:
    """``mostRecent(tr, Q)``: the greatest cache *observed* by any node of ``Q``.

    This is the snapshot a new leader adopts: because election and commit
    quorums overlap, some member of ``Q`` has observed (acknowledged) the
    latest commit, so the adopted branch contains every committed method.
    Observation is log coverage (see ``Cache.observers``): election votes
    bump timestamps but do not transfer logs.  Falls back to the root
    (observed by all of conf₀) when no member of ``Q`` has observed
    anything else.
    """
    group_set = frozenset(group)
    candidates = [
        cid
        for cid, cache in tree.items()
        if group_set & cache.observers
    ]
    best = tree.max_cache(candidates)
    return ROOT_CID if best is None else best


def active_cache(tree: CacheTree, nid: NodeId) -> Optional[Cid]:
    """``activeCache(tr, nid)``: the greatest cache *called* by ``nid``.

    ``None`` when ``nid`` has never successfully called an operation --
    in that case it has no active branch and ``invoke``/``reconfig``/
    ``push`` are no-ops for it.
    """
    return tree.max_cache(
        cid for cid, cache in tree.items() if cache.caller == nid and cid != ROOT_CID
    )


def last_commit(tree: CacheTree, nid: NodeId) -> Cid:
    """``lastCommit(tr, nid)``: the greatest CCache supported by ``nid``.

    Falls back to the root CCache; a node outside conf₀ that has never
    acknowledged a commit simply gets the root (time 0), which never
    blocks anything.
    """
    best = tree.max_cache(
        cid
        for cid, cache in tree.items()
        if is_ccache(cache) and nid in cache.supporters
    )
    return ROOT_CID if best is None else best


def valid_supp(
    nid: NodeId, group: Iterable[NodeId], cache: Cache, scheme: ReconfigScheme
) -> bool:
    """``validSupp(nid, Q, C) ≜ nid ∈ Q ∧ Q ⊆ mbrs(conf(C))`` (Fig. 9)."""
    group_set = frozenset(group)
    return nid in group_set and group_set <= scheme.members(cache.conf)


def can_commit(tree: CacheTree, cid: Cid, nid: NodeId, state: AdoreState) -> bool:
    """``canCommit(C, nid, st)`` (Fig. 9): may ``nid`` commit cache ``cid``?

    The cache must be an MCache or RCache called by ``nid``, ``nid`` must
    still be the leader at the cache's timestamp, and the cache must be
    more recent than the last commit ``nid`` has supported (committing it
    cannot conflict with an earlier commit).
    """
    cache = tree.cache(cid)
    if not is_committable(cache) or cache.caller != nid:
        return False
    if not state.is_leader(nid, cache.time):
        return False
    return cache_gt(cache, tree.cache(last_commit(tree, nid)))


def r2_holds(tree: CacheTree, cid: Cid) -> bool:
    """R2 (Fig. 7/25): no uncommitted RCache on the active branch.

    Every RCache that is an ancestor-or-self of ``cid`` must have a
    CCache strictly below it and at-or-above ``cid``.  Counting ``cid``
    itself ensures a leader whose active cache *is* an uncommitted
    RCache cannot start a second reconfiguration.
    """
    branch = tree.branch(cid)
    for index, anc in enumerate(branch):
        if not is_rcache(tree.cache(anc)):
            continue
        below = branch[index + 1 :]
        if not any(is_ccache(tree.cache(c)) for c in below):
            return False
    return True


def r3_holds(tree: CacheTree, cid: Cid) -> bool:
    """R3 (Fig. 7/25): a committed entry with the current timestamp.

    There must be a CCache at-or-above ``cid`` on its branch whose
    timestamp equals ``cid``'s.  This is Ongaro's fix to the single-node
    membership bug: it forces the leader to commit a command of its own
    term before reconfiguring, which implicitly finalizes or invalidates
    any reconfiguration still pending from an earlier term.
    """
    target = tree.cache(cid)
    return any(
        is_ccache(tree.cache(anc)) and tree.cache(anc).time == target.time
        for anc in tree.ancestors(cid, include_self=True)
    )


def can_reconf(
    tree: CacheTree, cid: Cid, new_conf: Config, scheme: ReconfigScheme
) -> bool:
    """``canReconf(tr, C, ncf) ≜ R1⁺(conf(C), ncf) ∧ R2(tr, C) ∧ R3(tr, C)``."""
    return (
        scheme.r1_plus(tree.cache(cid).conf, new_conf)
        and r2_holds(tree, cid)
        and r3_holds(tree, cid)
    )


def supporters_of(cache: Cache) -> FrozenSet[NodeId]:
    """The supporter set of a cache (voters, or the singleton caller)."""
    return cache.supporters
