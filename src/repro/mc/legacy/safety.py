"""Safety properties and their checkers (Section 4 and Appendix B).

The centrepiece is *replicated state safety* (Definition 4.1): every
CCache lies on a single branch of the cache tree, i.e. there is global
agreement on a consistent commit history.  The paper proves this in Coq
by induction on ``rdist``; here each named lemma/theorem of Appendix B
becomes an executable predicate over a cache tree, and the model checker
(:mod:`repro.mc`) validates them over every reachable state of bounded
instances.

Checker naming follows the paper: each function's docstring cites the
corresponding Coq theorem name (``rado_inv_*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from .cache import Cid, cache_gt, is_ccache, is_committable, is_ecache, is_rcache
from ...core.errors import SafetyViolation
from .state import AdoreState
from .tree import ROOT_CID, CacheTree


# ----------------------------------------------------------------------
# rdist (Definition 4.2)
# ----------------------------------------------------------------------

def rdist(tree: CacheTree, a: Cid, b: Cid) -> int:
    """The number of RCaches on the path between ``a`` and ``b``.

    The path runs through the nearest common ancestor and excludes both
    endpoints (Definition 4.2).  This counts exactly the
    reconfigurations that can make the two caches' configurations
    diverge.
    """
    return sum(1 for cid in tree.path_between(a, b) if is_rcache(tree.cache(cid)))


def tree_rdist(tree: CacheTree) -> int:
    """The maximum ``rdist`` between any two caches in the tree."""
    cids = list(tree.cids())
    best = 0
    for a, b in combinations(cids, 2):
        best = max(best, rdist(tree, a, b))
    return best


# ----------------------------------------------------------------------
# Committed log extraction
# ----------------------------------------------------------------------

def is_committed(tree: CacheTree, cid: Cid) -> bool:
    """A cache is committed iff a CCache is among its descendants-or-self.

    (Section 2.4: MCaches and RCaches are implicitly committed if a
    CCache is among their descendants; this keeps the tree append-only.)
    """
    return any(
        is_ccache(tree.cache(d)) for d in tree.descendants(cid, include_self=True)
    )


def max_ccache(tree: CacheTree) -> Cid:
    """The greatest CCache under the cache order (the deepest commit)."""
    best = tree.max_cache(tree.ccaches())
    return ROOT_CID if best is None else best


def committed_log(tree: CacheTree) -> List[Cid]:
    """The globally committed command sequence (the SMR persistent log).

    The MCaches/RCaches on the branch of the greatest CCache that lie
    above it, in root-to-leaf order.  Well-defined whenever replicated
    state safety holds (all CCaches are on that branch).
    """
    tip = max_ccache(tree)
    return [
        cid
        for cid in tree.branch(tip)
        if is_committable(tree.cache(cid))
    ]


def committed_methods(tree: CacheTree) -> List[object]:
    """The committed payloads: method names, or configs for RCaches."""
    out: List[object] = []
    for cid in committed_log(tree):
        cache = tree.cache(cid)
        out.append(cache.method if hasattr(cache, "method") else cache.conf)
    return out


# ----------------------------------------------------------------------
# Invariant checkers (Definition 4.1 and Appendix B)
# ----------------------------------------------------------------------

def check_replicated_state_safety(tree: CacheTree) -> List[str]:
    """Definition 4.1 / Theorem B.9 [rado_inv_C_linear].

    For any two CCaches, one must be a descendant of the other.  Returns
    violation descriptions (empty when safe).
    """
    problems: List[str] = []
    ccaches = tree.ccaches()
    for a, b in combinations(ccaches, 2):
        if not tree.same_branch(a, b):
            problems.append(
                f"CCaches {a} ({tree.cache(a).describe()}) and "
                f"{b} ({tree.cache(b).describe()}) lie on different branches "
                f"(rdist={rdist(tree, a, b)})"
            )
    return problems


def check_descendant_order(tree: CacheTree) -> List[str]:
    """Lemma B.1 [rado_inv_descendant_lt]: descendants are greater.

    If ``C_Y`` is a descendant of ``C_X`` then ``C_Y > C_X``.
    """
    problems: List[str] = []
    for cid in tree.cids():
        parent = tree.parent(cid)
        if parent is None:
            continue
        if not cache_gt(tree.cache(cid), tree.cache(parent)):
            problems.append(
                f"cache {cid} ({tree.cache(cid).describe()}) is not greater "
                f"than its parent {parent} ({tree.cache(parent).describe()})"
            )
    return problems


def check_leader_time_uniqueness(
    tree: CacheTree, max_rdist: Optional[int] = None
) -> List[str]:
    """Lemmas B.2/B.5 [rado_inv_E_unique_time_no_R / _overlap].

    Two distinct ECaches within ``max_rdist`` reconfigurations of each
    other must have distinct timestamps.  ``max_rdist=None`` checks all
    pairs (which holds on reachable states of the *correct* model and is
    what the ablations break).
    """
    problems: List[str] = []
    ecaches = tree.ecaches()
    for a, b in combinations(ecaches, 2):
        if max_rdist is not None and rdist(tree, a, b) > max_rdist:
            continue
        if tree.cache(a).time == tree.cache(b).time:
            problems.append(
                f"ECaches {a} and {b} share timestamp {tree.cache(a).time} "
                f"(rdist={rdist(tree, a, b)})"
            )
    return problems


def check_election_commit_order(
    tree: CacheTree, max_rdist: Optional[int] = None
) -> List[str]:
    """Theorems B.3/B.6 [rado_inv_EC_descendant_no_R and kin].

    For a CCache ``C_C`` and an ECache ``C_E`` with ``C_E > C_C`` and
    rdist within bound, ``C_E`` must be a descendant of ``C_C``: later
    leaders must have every earlier commit in their history.
    """
    problems: List[str] = []
    for e in tree.ecaches():
        for c in tree.ccaches():
            if not cache_gt(tree.cache(e), tree.cache(c)):
                continue
            if max_rdist is not None and rdist(tree, e, c) > max_rdist:
                continue
            if not tree.is_ancestor(c, e, strict=True):
                problems.append(
                    f"ECache {e} ({tree.cache(e).describe()}) > CCache {c} "
                    f"({tree.cache(c).describe()}) but is not its descendant "
                    f"(rdist={rdist(tree, e, c)})"
                )
    return problems


def check_ccache_in_rcache_fork(tree: CacheTree) -> List[str]:
    """Lemma 4.4 / B.8 [rado_inv_R_branch_case].

    For RCaches ``C_R1``/``C_R2`` with ``rdist = 0`` on diverging
    branches, some CCache must sit strictly between their nearest common
    ancestor and one of them.  This is the consequence of R3 that breaks
    the circularity in the general safety proof.
    """
    problems: List[str] = []
    for a, b in combinations(tree.rcaches(), 2):
        if tree.same_branch(a, b):
            continue
        if rdist(tree, a, b) != 0:
            continue
        nca = tree.nearest_common_ancestor(a, b)
        found = any(
            is_ccache(tree.cache(mid))
            for target in (a, b)
            for mid in tree.ancestors(target)
            if tree.is_ancestor(nca, mid, strict=True)
        )
        if not found:
            problems.append(
                f"RCaches {a} and {b} fork at {nca} with no intervening CCache"
            )
    return problems


def check_version_reset(tree: CacheTree) -> List[str]:
    """ECaches reset the version number to 0; M/RCaches increment it."""
    problems: List[str] = []
    for cid in tree.cids():
        cache = tree.cache(cid)
        parent = tree.parent(cid)
        if is_ecache(cache) and cache.vrsn != 0:
            problems.append(f"ECache {cid} has version {cache.vrsn}")
        if parent is not None and is_committable(cache):
            parent_cache = tree.cache(parent)
            if cache.time == parent_cache.time and cache.vrsn != parent_cache.vrsn + 1:
                problems.append(
                    f"cache {cid} does not increment its parent's version "
                    f"({cache.vrsn} after {parent_cache.vrsn})"
                )
    return problems


@dataclass
class SafetyReport:
    """The aggregated result of all invariant checks over one state."""

    safety: List[str] = field(default_factory=list)
    well_formedness: List[str] = field(default_factory=list)
    descendant_order: List[str] = field(default_factory=list)
    leader_time_uniqueness: List[str] = field(default_factory=list)
    election_commit_order: List[str] = field(default_factory=list)
    ccache_in_rcache_fork: List[str] = field(default_factory=list)
    version_reset: List[str] = field(default_factory=list)

    #: Checker labels in reporting order; also the keys accepted by
    #: :meth:`filtered`.
    LABELS = (
        "safety",
        "well-formedness",
        "descendant-order",
        "leader-time-uniqueness",
        "election-commit-order",
        "ccache-in-rcache-fork",
        "version-reset",
    )

    @property
    def ok(self) -> bool:
        """True when no checker reported a violation."""
        return not self.all_violations()

    def _by_label(self) -> List[Tuple[str, List[str]]]:
        return [
            ("safety", self.safety),
            ("well-formedness", self.well_formedness),
            ("descendant-order", self.descendant_order),
            ("leader-time-uniqueness", self.leader_time_uniqueness),
            ("election-commit-order", self.election_commit_order),
            ("ccache-in-rcache-fork", self.ccache_in_rcache_fork),
            ("version-reset", self.version_reset),
        ]

    def all_violations(self) -> List[str]:
        """All violation descriptions, tagged by checker."""
        out: List[str] = []
        for label, items in self._by_label():
            out.extend(f"[{label}] {item}" for item in items)
        return out

    def filtered(self, labels: "Iterable[str]") -> "SafetyReport":
        """A report keeping only the named checkers' findings.

        Used by ablation experiments to target one invariant (e.g. only
        top-level ``"safety"``) while ignoring the auxiliary lemmas that
        break earlier.
        """
        wanted = set(labels)
        unknown = wanted - set(self.LABELS)
        if unknown:
            raise ValueError(f"unknown invariant labels: {sorted(unknown)}")
        kept = {
            label.replace("-", "_"): (items if label in wanted else [])
            for label, items in self._by_label()
        }
        return SafetyReport(**kept)


def validate_invariant_labels(labels: Iterable[str]) -> Tuple[str, ...]:
    """Check ``labels`` against :attr:`SafetyReport.LABELS` and return
    them as a tuple.

    Raises ``ValueError`` on unknown labels.  Callers that defer the
    actual checking (the model checker validates at construction, then
    checks states in worker processes) use this to fail fast in the
    submitting process rather than with a cross-process traceback.
    """
    labels = tuple(labels)
    unknown = set(labels) - set(SafetyReport.LABELS)
    if unknown:
        raise ValueError(f"unknown invariant labels: {sorted(unknown)}")
    return labels


def check_state(
    state: AdoreState,
    lemma_rdist_bound: Optional[int] = 1,
    only: Optional[Iterable[str]] = None,
) -> SafetyReport:
    """Run the invariant checkers over ``state``.

    ``lemma_rdist_bound`` bounds the rdist at which the Appendix-B
    lemmas are checked (the paper proves them for rdist ≤ 1 and derives
    the general safety theorem from them); the top-level safety check is
    always unbounded.  ``only`` restricts which checkers *run* (labels
    from ``SafetyReport.LABELS``) -- unlike :meth:`SafetyReport.filtered`
    this skips the computation entirely, which matters inside the model
    checker's inner loop.
    """
    tree = state.tree
    wanted = set(SafetyReport.LABELS) if only is None else set(only)
    unknown = wanted - set(SafetyReport.LABELS)
    if unknown:
        raise ValueError(f"unknown invariant labels: {sorted(unknown)}")

    def run(label, thunk):
        return thunk() if label in wanted else []

    return SafetyReport(
        safety=run("safety", lambda: check_replicated_state_safety(tree)),
        well_formedness=run(
            "well-formedness", tree.well_formedness_violations
        ),
        descendant_order=run(
            "descendant-order", lambda: check_descendant_order(tree)
        ),
        leader_time_uniqueness=run(
            "leader-time-uniqueness",
            lambda: check_leader_time_uniqueness(tree, lemma_rdist_bound),
        ),
        election_commit_order=run(
            "election-commit-order",
            lambda: check_election_commit_order(tree, lemma_rdist_bound),
        ),
        ccache_in_rcache_fork=run(
            "ccache-in-rcache-fork", lambda: check_ccache_in_rcache_fork(tree)
        ),
        version_reset=run("version-reset", lambda: check_version_reset(tree)),
    )


def assert_safe(state: AdoreState, lemma_rdist_bound: Optional[int] = 1) -> None:
    """Raise :class:`SafetyViolation` when any invariant fails."""
    report = check_state(state, lemma_rdist_bound)
    if not report.ok:
        raise SafetyViolation(
            "; ".join(report.all_violations()), witness=state
        )
