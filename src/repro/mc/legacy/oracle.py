"""Oracles for the nondeterministic ``pull``/``push`` outcomes (Fig. 11/27).

The paper models network nondeterminism with an oracle ``O = (O_pull,
O_push)`` that arbitrarily decides which replicas receive a request and
whether enough of them answer.  We split that into three pieces:

* *Outcome values* (:class:`PullOk`, :class:`PushOk`, :data:`FAIL`) --
  plain data describing one resolution of the nondeterminism.
* *Validity predicates* (:func:`validate_pull`, :func:`validate_push`) --
  the VALIDPULLORACLE / VALIDPUSHORACLE rules.  Any outcome fed to the
  semantics must pass these; scripted oracles are checked eagerly so a
  scenario that asks for an impossible network behaviour fails loudly.
* *Oracle objects* -- strategies that produce outcomes:
  :class:`RandomOracle` (randomized simulation),
  :class:`ScriptedOracle` (replay a fixed scenario), and the exhaustive
  enumerators (:func:`enumerate_pull_outcomes`,
  :func:`enumerate_push_outcomes`) used by the model checker to explore
  *every* valid network behaviour.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Union

from .aux import can_commit, most_recent, valid_supp
from .cache import Cid, NodeId, Time, is_committable
from ...core.config import ReconfigScheme
from ...core.errors import InvalidOracleOutcome
from .state import AdoreState


@dataclass(frozen=True)
class PullOk:
    """A successful pull decision: supporter set ``Q`` and new time ``t``.

    The cache the election adopts (``C_max = mostRecent(tr, Q)``) and
    whether ``Q`` is a quorum are derived from the state, not stored.
    """

    group: FrozenSet[NodeId]
    time: Time


@dataclass(frozen=True)
class PushOk:
    """A successful push decision: supporter set ``Q`` and target cache.

    ``target`` is the cid of the MCache/RCache being committed (``C_M``).
    """

    group: FrozenSet[NodeId]
    target: Cid


@dataclass(frozen=True)
class Fail:
    """The oracle declines: the operation becomes a NoOp."""


FAIL = Fail()

PullOutcome = Union[PullOk, Fail]
PushOutcome = Union[PushOk, Fail]


# ----------------------------------------------------------------------
# Validity (Fig. 11 / Fig. 27)
# ----------------------------------------------------------------------

def validate_pull(
    state: AdoreState, nid: NodeId, outcome: PullOutcome, scheme: ReconfigScheme
) -> None:
    """Raise :class:`InvalidOracleOutcome` unless VALIDPULLORACLE holds.

    Requirements: ``validSupp(nid, Q, C_max)`` where ``C_max`` is the
    most recent cache supported by ``Q``, and every supporter's observed
    time is strictly below the chosen time ``t``.
    """
    if isinstance(outcome, Fail):
        return
    if not outcome.group:
        raise InvalidOracleOutcome("pull outcome has an empty supporter set")
    c_max = state.tree.cache(most_recent(state.tree, outcome.group))
    if not valid_supp(nid, outcome.group, c_max, scheme):
        raise InvalidOracleOutcome(
            f"pull supporters {sorted(outcome.group)} invalid for caller {nid} "
            f"under config {c_max.conf!r}"
        )
    stale = [s for s in outcome.group if state.time_of(s) >= outcome.time]
    if stale:
        raise InvalidOracleOutcome(
            f"pull time {outcome.time} not above supporters' times "
            f"{[(s, state.time_of(s)) for s in stale]}"
        )


def validate_push(
    state: AdoreState, nid: NodeId, outcome: PushOutcome, scheme: ReconfigScheme
) -> None:
    """Raise :class:`InvalidOracleOutcome` unless VALIDPUSHORACLE holds.

    Requirements: the target satisfies ``canCommit`` for ``nid``,
    ``validSupp(nid, Q, C_M)``, and no supporter has observed a time
    beyond the target's.
    """
    if isinstance(outcome, Fail):
        return
    if not outcome.group:
        raise InvalidOracleOutcome("push outcome has an empty supporter set")
    tree = state.tree
    if outcome.target not in tree:
        raise InvalidOracleOutcome(f"push target {outcome.target} not in tree")
    target = tree.cache(outcome.target)
    if not can_commit(tree, outcome.target, nid, state):
        raise InvalidOracleOutcome(
            f"canCommit fails for node {nid} on cache {outcome.target} "
            f"({target.describe()})"
        )
    if not valid_supp(nid, outcome.group, target, scheme):
        raise InvalidOracleOutcome(
            f"push supporters {sorted(outcome.group)} invalid for caller {nid} "
            f"under config {target.conf!r}"
        )
    ahead = [s for s in outcome.group if state.time_of(s) > target.time]
    if ahead:
        raise InvalidOracleOutcome(
            f"push supporters observed times beyond target's "
            f"{[(s, state.time_of(s)) for s in ahead]}"
        )


# ----------------------------------------------------------------------
# Exhaustive enumeration (used by the model checker)
# ----------------------------------------------------------------------

def known_nodes(state: AdoreState, scheme: ReconfigScheme) -> FrozenSet[NodeId]:
    """Every node id mentioned by any configuration in the tree."""
    nodes: Set[NodeId] = set()
    for _, cache in state.tree.items():
        nodes |= scheme.members(cache.conf)
    return frozenset(nodes)


def _nonempty_subsets(universe: Sequence[NodeId]) -> Iterator[FrozenSet[NodeId]]:
    ordered = sorted(universe)
    for size in range(1, len(ordered) + 1):
        for combo in itertools.combinations(ordered, size):
            yield frozenset(combo)


def enumerate_pull_outcomes(
    state: AdoreState,
    nid: NodeId,
    scheme: ReconfigScheme,
    include_non_quorum: bool = True,
    extra_times: int = 0,
) -> List[PullOk]:
    """All valid ``PullOk`` outcomes for ``nid``, with canonical times.

    For each candidate supporter set the *minimal* legal time is used
    (one above the largest time any supporter observed); ``extra_times``
    additionally yields the next few larger times.  Minimal times are
    sufficient for reachability of tree shapes, which is what the safety
    properties quantify over.

    ``include_non_quorum=False`` restricts to supporter sets that form a
    quorum of the adopted cache's configuration (failed elections still
    bump timestamps, so the default keeps them).
    """
    outcomes: List[PullOk] = []
    universe = known_nodes(state, scheme)
    for group in _nonempty_subsets(sorted(universe)):
        if nid not in group:
            continue
        c_max = state.tree.cache(most_recent(state.tree, group))
        if not valid_supp(nid, group, c_max, scheme):
            continue
        if not include_non_quorum and not scheme.is_quorum(group, c_max.conf):
            continue
        base_time = max(state.time_of(s) for s in group) + 1
        for offset in range(extra_times + 1):
            outcomes.append(PullOk(group=group, time=base_time + offset))
    return outcomes


def enumerate_push_outcomes(
    state: AdoreState,
    nid: NodeId,
    scheme: ReconfigScheme,
    include_non_quorum: bool = True,
) -> List[PushOk]:
    """All valid ``PushOk`` outcomes for ``nid``.

    Enumerates every committable cache satisfying ``canCommit`` and every
    legal supporter subset of its configuration's members.
    """
    outcomes: List[PushOk] = []
    tree = state.tree
    for cid, cache in tree.items():
        if not is_committable(cache):
            continue
        if not can_commit(tree, cid, nid, state):
            continue
        members = scheme.members(cache.conf)
        eligible = [s for s in sorted(members) if state.time_of(s) <= cache.time]
        if nid not in eligible:
            continue
        others = [s for s in eligible if s != nid]
        for extra in _nonempty_subsets(others):
            group = frozenset({nid}) | extra
            if not include_non_quorum and not scheme.is_quorum(group, cache.conf):
                continue
            outcomes.append(PushOk(group=group, target=cid))
        singleton = frozenset({nid})
        if include_non_quorum or scheme.is_quorum(singleton, cache.conf):
            outcomes.append(PushOk(group=singleton, target=cid))
    return outcomes


# ----------------------------------------------------------------------
# Oracle strategies
# ----------------------------------------------------------------------

class Oracle(ABC):
    """A strategy resolving the pull/push nondeterminism."""

    @abstractmethod
    def pull_outcome(
        self, state: AdoreState, nid: NodeId, scheme: ReconfigScheme
    ) -> PullOutcome:
        """Decide the outcome of a ``pull`` by ``nid`` in ``state``."""

    @abstractmethod
    def push_outcome(
        self, state: AdoreState, nid: NodeId, scheme: ReconfigScheme
    ) -> PushOutcome:
        """Decide the outcome of a ``push`` by ``nid`` in ``state``."""


class RandomOracle(Oracle):
    """Samples uniformly among valid outcomes; fails with ``fail_prob``.

    A deterministic seed makes randomized explorations reproducible.
    ``quorums_only`` restricts sampling to supporter sets that form a
    quorum, which biases runs towards successful elections and commits
    (useful for examples and workload simulation; the default samples
    partial failures too).
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        fail_prob: float = 0.1,
        quorums_only: bool = False,
    ) -> None:
        if not 0.0 <= fail_prob < 1.0:
            raise ValueError(f"fail_prob must be in [0, 1), got {fail_prob}")
        self._rng = random.Random(seed)
        self.fail_prob = fail_prob
        self.quorums_only = quorums_only

    def pull_outcome(
        self, state: AdoreState, nid: NodeId, scheme: ReconfigScheme
    ) -> PullOutcome:
        if self._rng.random() < self.fail_prob:
            return FAIL
        options = enumerate_pull_outcomes(
            state, nid, scheme, include_non_quorum=not self.quorums_only
        )
        if not options:
            return FAIL
        return self._rng.choice(options)

    def push_outcome(
        self, state: AdoreState, nid: NodeId, scheme: ReconfigScheme
    ) -> PushOutcome:
        if self._rng.random() < self.fail_prob:
            return FAIL
        options = enumerate_push_outcomes(
            state, nid, scheme, include_non_quorum=not self.quorums_only
        )
        if not options:
            return FAIL
        return self._rng.choice(options)


class ScriptedOracle(Oracle):
    """Replays a fixed sequence of outcomes (for scenario scripts).

    Each requested outcome is validated against the current state, so an
    impossible scenario step raises :class:`InvalidOracleOutcome` at the
    exact step that is wrong rather than corrupting the run.
    """

    def __init__(self, outcomes: Iterable[Union[PullOutcome, PushOutcome]]) -> None:
        self._outcomes: List[Union[PullOutcome, PushOutcome]] = list(outcomes)
        self._cursor = 0

    def _next(self) -> Union[PullOutcome, PushOutcome]:
        if self._cursor >= len(self._outcomes):
            raise InvalidOracleOutcome("scripted oracle exhausted")
        outcome = self._outcomes[self._cursor]
        self._cursor += 1
        return outcome

    @property
    def remaining(self) -> int:
        """Number of scripted outcomes not yet consumed."""
        return len(self._outcomes) - self._cursor

    def pull_outcome(
        self, state: AdoreState, nid: NodeId, scheme: ReconfigScheme
    ) -> PullOutcome:
        outcome = self._next()
        if not isinstance(outcome, (PullOk, Fail)):
            raise InvalidOracleOutcome(
                f"scripted oracle expected a pull outcome, got {outcome!r}"
            )
        validate_pull(state, nid, outcome, scheme)
        return outcome

    def push_outcome(
        self, state: AdoreState, nid: NodeId, scheme: ReconfigScheme
    ) -> PushOutcome:
        outcome = self._next()
        if not isinstance(outcome, (PushOk, Fail)):
            raise InvalidOracleOutcome(
                f"scripted oracle expected a push outcome, got {outcome!r}"
            )
        validate_push(state, nid, outcome, scheme)
        return outcome
