"""The Adore cache tree (Fig. 6 / Fig. 24 of the paper).

``CacheTree ≜ N_cid → N_cid * Cache``: a partial map from cache ids to the
id of the parent plus the cache itself.  The root occupies cid 0.  The two
growth operations are

* :meth:`CacheTree.add_leaf` -- add a new child under a parent (used by
  ``pull``, ``invoke`` and ``reconfig``), and
* :meth:`CacheTree.insert_btw` -- insert a new cache *between* a parent
  and its current children (used by ``push`` to place a CCache below the
  committed cache while keeping its partial-failure children viable).

Trees are immutable: both operations return a new tree.  This makes
states hashable, which the explicit-state model checker
(:mod:`repro.mc`) relies on, and makes scenario scripts trivially
re-playable.

The paper keeps the tree append-only -- committed methods are not moved
to a separate persistent log as in the ADO model; instead a cache is
*implicitly* committed when a CCache is among its descendants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .cache import Cache, Cid, is_ccache, is_committable, is_ecache, order_key
from ...core.errors import MalformedTree, UnknownCache

ROOT_CID: Cid = 0


@dataclass(frozen=True)
class TreeEntry:
    """One slot of the cache tree: parent pointer plus the cache."""

    parent: Optional[Cid]
    cache: Cache


class CacheTree:
    """An immutable cache tree.

    Construct the initial tree with :meth:`initial`, then grow it with
    :meth:`add_leaf` / :meth:`insert_btw`.  All query methods treat the
    tree as the paper does: a set of caches with ancestor structure.
    """

    __slots__ = ("_entries", "_children", "_hash")

    def __init__(self, entries: Dict[Cid, TreeEntry]) -> None:
        self._entries: Dict[Cid, TreeEntry] = dict(entries)
        children: Dict[Cid, Tuple[Cid, ...]] = {cid: () for cid in self._entries}
        for cid, entry in sorted(self._entries.items()):
            # Tolerate dangling parents here so deliberately malformed
            # trees can still be constructed and then *diagnosed* by
            # well_formedness_violations().
            if entry.parent is not None and entry.parent in children:
                children[entry.parent] = children[entry.parent] + (cid,)
        self._children = children
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def initial(cls, root_cache: Cache) -> "CacheTree":
        """A tree holding only ``root_cache`` at :data:`ROOT_CID`."""
        return cls({ROOT_CID: TreeEntry(None, root_cache)})

    def fresh_cid(self) -> Cid:
        """The next unused cache id (``max + 1``, Fig. 26)."""
        return max(self._entries) + 1

    def add_leaf(self, parent: Cid, cache: Cache) -> Tuple["CacheTree", Cid]:
        """Add ``cache`` as a new leaf child of ``parent``.

        Returns the new tree and the cid assigned to the new cache.
        """
        self._require(parent)
        cid = self.fresh_cid()
        entries = dict(self._entries)
        entries[cid] = TreeEntry(parent, cache)
        return CacheTree(entries), cid

    def insert_btw(self, parent: Cid, cache: Cache) -> Tuple["CacheTree", Cid]:
        """Insert ``cache`` between ``parent`` and its current children.

        Every existing child of ``parent`` is re-parented onto the new
        cache (Fig. 26, ``insertBtw``).  Used by ``push``: children of a
        committed cache represent partial failures that must remain
        candidates for later commits, so they are shifted below the new
        CCache rather than discarded.
        """
        self._require(parent)
        cid = self.fresh_cid()
        entries = dict(self._entries)
        for child in self._children[parent]:
            entries[child] = TreeEntry(cid, entries[child].cache)
        entries[cid] = TreeEntry(parent, cache)
        return CacheTree(entries), cid

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def _require(self, cid: Cid) -> TreeEntry:
        try:
            return self._entries[cid]
        except KeyError:
            raise UnknownCache(f"cache id {cid} not in tree") from None

    def __contains__(self, cid: Cid) -> bool:
        return cid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def cids(self) -> Iterator[Cid]:
        """All cache ids, in insertion (= cid) order."""
        return iter(sorted(self._entries))

    def cache(self, cid: Cid) -> Cache:
        """The cache stored at ``cid``."""
        return self._require(cid).cache

    def parent(self, cid: Cid) -> Optional[Cid]:
        """The parent cid of ``cid`` (``None`` for the root)."""
        return self._require(cid).parent

    def children(self, cid: Cid) -> Tuple[Cid, ...]:
        """The direct children of ``cid``, in cid order."""
        self._require(cid)
        return self._children[cid]

    def items(self) -> Iterator[Tuple[Cid, Cache]]:
        """``(cid, cache)`` pairs in cid order."""
        for cid in sorted(self._entries):
            yield cid, self._entries[cid].cache

    def leaves(self) -> List[Cid]:
        """Cids with no children."""
        return [cid for cid in sorted(self._entries) if not self._children[cid]]

    # ------------------------------------------------------------------
    # Ancestry
    # ------------------------------------------------------------------

    def ancestors(self, cid: Cid, include_self: bool = False) -> List[Cid]:
        """Ancestors of ``cid`` from its parent up to the root.

        With ``include_self`` the list starts at ``cid`` itself.
        """
        self._require(cid)
        path: List[Cid] = [cid] if include_self else []
        current = self._entries[cid].parent
        while current is not None:
            path.append(current)
            current = self._entries[current].parent
        return path

    def branch(self, cid: Cid) -> List[Cid]:
        """The root-to-``cid`` path, inclusive on both ends."""
        return list(reversed(self.ancestors(cid, include_self=True)))

    def is_ancestor(self, anc: Cid, desc: Cid, strict: bool = True) -> bool:
        """True iff ``anc`` is an ancestor of ``desc``.

        ``strict=False`` additionally accepts ``anc == desc``.
        """
        self._require(anc)
        if anc == desc:
            return not strict
        return anc in self.ancestors(desc)

    def same_branch(self, a: Cid, b: Cid) -> bool:
        """True iff one of ``a``/``b`` is an ancestor-or-self of the other."""
        return self.is_ancestor(a, b, strict=False) or self.is_ancestor(b, a, strict=False)

    def nearest_common_ancestor(self, a: Cid, b: Cid) -> Cid:
        """The nearest common ancestor of ``a`` and ``b`` (possibly one of them)."""
        anc_a = self.ancestors(a, include_self=True)
        set_b = set(self.ancestors(b, include_self=True))
        for cid in anc_a:
            if cid in set_b:
                return cid
        raise MalformedTree(f"no common ancestor of {a} and {b}")

    def path_between(self, a: Cid, b: Cid) -> List[Cid]:
        """The path from ``a`` to ``b`` through their nearest common
        ancestor, *excluding* both endpoints (used by ``rdist``).
        """
        nca = self.nearest_common_ancestor(a, b)
        up_a = self.ancestors(a, include_self=True)
        up_b = self.ancestors(b, include_self=True)
        leg_a = up_a[: up_a.index(nca) + 1]
        leg_b = up_b[: up_b.index(nca) + 1]
        # a .. nca plus reversed nca .. b, dropping the duplicate nca.
        path = leg_a + list(reversed(leg_b[:-1]))
        return [cid for cid in path if cid not in (a, b)]

    def descendants(self, cid: Cid, include_self: bool = False) -> List[Cid]:
        """All descendants of ``cid`` (pre-order)."""
        self._require(cid)
        out: List[Cid] = [cid] if include_self else []
        stack = list(reversed(self._children[cid]))
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._children[current]))
        return out

    def subtree_cids(self, cid: Cid) -> FrozenSet[Cid]:
        """The set of cids rooted at ``cid`` (inclusive)."""
        return frozenset(self.descendants(cid, include_self=True))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Cache], bool]) -> List[Cid]:
        """Cids whose caches satisfy ``predicate``, in cid order."""
        return [cid for cid, cache in self.items() if predicate(cache)]

    def max_cache(self, cids: Iterable[Cid]) -> Optional[Cid]:
        """The cid whose cache is greatest under the order ``>``.

        Ties on the order key are broken by the larger cid (the cache
        added later), which makes scenario replays deterministic.
        Returns ``None`` for an empty selection.
        """
        best: Optional[Cid] = None
        for cid in cids:
            cache = self.cache(cid)
            if best is None:
                best = cid
                continue
            best_cache = self.cache(best)
            if (order_key(cache), cid) > (order_key(best_cache), best):
                best = cid
        return best

    def ccaches(self) -> List[Cid]:
        """All commit caches, in cid order."""
        return self.select(is_ccache)

    def rcaches(self) -> List[Cid]:
        """All reconfiguration caches, in cid order."""
        return self.select(lambda c: c.kind == "R")

    def ecaches(self) -> List[Cid]:
        """All election caches, in cid order."""
        return self.select(is_ecache)

    # ------------------------------------------------------------------
    # Well-formedness (the paper's 2.3k lines of generic tree invariants)
    # ------------------------------------------------------------------

    def well_formedness_violations(self) -> List[str]:
        """Check the structural invariants of a legal cache tree.

        Returns a list of human-readable violation descriptions (empty
        when well formed).  Mirrors the generic invariants the Coq
        development proves about the tree data structure: single root at
        cid 0, parents present, acyclicity, ECaches have version 0, and
        every CCache sits directly below a committable cache with the
        same timestamp and version.
        """
        problems: List[str] = []
        if ROOT_CID not in self._entries:
            return [f"root cid {ROOT_CID} missing"]
        if self._entries[ROOT_CID].parent is not None:
            problems.append("root has a parent")
        for cid, entry in sorted(self._entries.items()):
            if cid == ROOT_CID:
                continue
            if entry.parent is None:
                problems.append(f"cache {cid} is a second root")
            elif entry.parent not in self._entries:
                problems.append(f"cache {cid} has unknown parent {entry.parent}")
        # Acyclicity: walk each parent chain with a step bound.
        bound = len(self._entries)
        for cid in self._entries:
            current: Optional[Cid] = cid
            for _ in range(bound + 1):
                if current is None:
                    break
                entry = self._entries.get(current)
                if entry is None:
                    break
                current = entry.parent
            else:
                problems.append(f"cycle reachable from cache {cid}")
        for cid, entry in sorted(self._entries.items()):
            cache = entry.cache
            if is_ecache(cache) and cache.vrsn != 0:
                problems.append(f"ECache {cid} has nonzero version {cache.vrsn}")
            if is_ccache(cache) and entry.parent is not None:
                parent_cache = self._entries[entry.parent].cache
                if not is_committable(parent_cache):
                    problems.append(
                        f"CCache {cid} parent is a {parent_cache.kind}Cache, "
                        "expected MCache or RCache"
                    )
                elif (parent_cache.time, parent_cache.vrsn) != (cache.time, cache.vrsn):
                    problems.append(
                        f"CCache {cid} time/vrsn {(cache.time, cache.vrsn)} differ "
                        f"from parent's {(parent_cache.time, parent_cache.vrsn)}"
                    )
        return problems

    def is_well_formed(self) -> bool:
        """True iff :meth:`well_formedness_violations` finds nothing."""
        return not self.well_formedness_violations()

    # ------------------------------------------------------------------
    # Equality / hashing / rendering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheTree):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __repr__(self) -> str:
        return f"CacheTree({len(self._entries)} caches)"

    def render(self) -> str:
        """ASCII rendering of the tree, one cache per line."""
        lines: List[str] = []

        def walk(cid: Cid, depth: int) -> None:
            cache = self._entries[cid].cache
            prefix = "  " * depth + ("- " if depth else "")
            lines.append(f"{prefix}[{cid}] {cache.describe()}")
            for child in self._children[cid]:
                walk(child, depth + 1)

        walk(ROOT_CID, 0)
        return "\n".join(lines)
