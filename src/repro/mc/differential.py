"""Differential bounded model checking across the seven schemes.

The safety proof is parameterized over an opaque reconfiguration
scheme, so every scheme in :mod:`repro.schemes` runs on the *same*
Adore semantics -- which makes them directly comparable: give each one
an identical exploration budget, ablate each design rule in turn, and
record who survives what.  The result is a comparison the paper itself
does not have: an **ablation-survival matrix** showing which of Adore's
rules (R2, R3, OVERLAP, the ``insertBtw`` commit placement) each design
actually leans on, plus **violation frontiers** (the depth of the first
counterexample the hunt finds when a scheme dies) and reachable-state
counts on the shared budgets.

The interesting separation is the logless scheme
(:class:`~repro.schemes.logless.LoglessReconfigScheme`): because
MongoDB's protocol carries its own analogues of R2/R3 as *enabling
conditions* inside the reconfiguration step (the Q1 config quorum check
and Q2 oplog commitment check, evaluated by its candidate generator),
ablating Adore's R2 or R3 leaves it SAFE while Raft single-node falls
to the Fig. 4 counterexample.  Ablating OVERLAP kills both -- quorum
intersection is the one assumption nobody can carry for themselves.

Determinism: with ``workers=1`` every run is a sequential exploration
with a fixed expansion order ("bfs" FIFO, or the "guided" best-first
heap whose ties break on an insertion counter), so the same budgets
produce the identical report -- state counts, frontier depths, and
survival matrix -- on every invocation.  ``workers > 1`` routes through
:class:`repro.mc.parallel.ParallelExplorer` (bfs only; verdicts are
unchanged but guided-order state counts differ), and ``checkpoint_dir``
makes each per-(scheme, ablation) run resumable.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme
from ..core.state import AdoreState
from ..schemes.dynamic_quorum import DynamicQuorumScheme, SizedConfig
from ..schemes.joint import JointConfig, JointConsensusScheme
from ..schemes.logless import (
    LoglessConfig,
    LoglessReconfigScheme,
    logless_jump_candidates,
    logless_reconfig_candidates,
)
from ..schemes.primary_backup import PrimaryBackupConfig, PrimaryBackupScheme
from ..schemes.single_node import RaftSingleNodeScheme
from ..schemes.unanimous import UnanimousScheme
from ..schemes.weighted import WeightedConfig, WeightedMajorityScheme
from .ablations import FIG4_BUDGET, FIG4_NODES, _leaf_push
from .explorer import (
    ExplorationResult,
    Explorer,
    OpBudget,
    jump_reconfig_candidates,
    set_reconfig_candidates,
)
from .parallel import explore

#: The ablation axis of the matrix, in rendering order.
ABLATIONS: Tuple[str, ...] = (
    "intact",
    "no-r2",
    "no-r3",
    "no-overlap",
    "leaf-commit",
)

#: Shared per-ablation budgets (identical across schemes -- that is the
#: point).  Each matches the schedule class the corresponding
#: single-scheme ablation in :mod:`repro.mc.ablations` needs to exhibit
#: its counterexample: Fig. 4 shaped for ``no-r3``/``intact``, the
#: stacked-reconfiguration class for ``no-r2``, the one-jump class for
#: ``no-overlap``, and the tiny single-branch class for ``leaf-commit``.
DEFAULT_BUDGETS: Dict[str, OpBudget] = {
    "intact": FIG4_BUDGET,
    "no-r2": OpBudget(pulls=2, invokes=2, reconfigs=3, pushes=3),
    "no-r3": FIG4_BUDGET,
    "no-overlap": OpBudget(pulls=3, invokes=2, reconfigs=1, pushes=3),
    "leaf-commit": OpBudget(pulls=1, invokes=2, reconfigs=0, pushes=2),
}

#: Scaled-down budgets for smoke runs (CI artifact, ``--differential``
#: zoo mode, unit tests).  Deaths still show up for the grossest
#: ablations but the Fig. 4-depth separations need
#: :data:`DEFAULT_BUDGETS`.
SMOKE_BUDGETS: Dict[str, OpBudget] = {
    "intact": OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2),
    "no-r2": OpBudget(pulls=1, invokes=1, reconfigs=2, pushes=2),
    "no-r3": OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2),
    "no-overlap": OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=3),
    "leaf-commit": OpBudget(pulls=1, invokes=2, reconfigs=0, pushes=2),
}


ReconfigCandidates = Callable[[AdoreState, NodeId, Config], Iterable[Config]]


@dataclass(frozen=True)
class SchemeScenario:
    """One scheme's entry in the differential matrix.

    Besides the scheme and its initial configuration, a scenario
    carries three reconfiguration-move generators: the scheme's normal
    protocol moves (``candidates``), a removal-biased variant for the
    ``no-r2`` hunt (``shrink_candidates`` -- the R2 counterexample
    stacks configuration *shrinks*, and removal-only moves keep the
    branching comparable across schemes), and arbitrary-jump moves for
    the ``no-overlap`` hunt (``jump_candidates``, run under
    :class:`OverlapAblation` so R1⁺ accepts them).
    """

    scheme: ReconfigScheme
    conf0: Config
    candidates: ReconfigCandidates
    shrink_candidates: ReconfigCandidates
    jump_candidates: ReconfigCandidates

    @property
    def name(self) -> str:
        return self.scheme.name


class OverlapAblation(ReconfigScheme):
    """A scheme with OVERLAP ablated: R1⁺ accepts *any* valid config.

    Wraps a base scheme, delegating membership and quorums, but lets a
    single reconfiguration jump to an arbitrary valid configuration --
    the generalization of the existing ``UnsafeMultiNodeScheme`` to
    every config representation.  REFLEXIVE still holds; OVERLAP is the
    assumption under test.
    """

    def __init__(self, base: ReconfigScheme) -> None:
        self.base = base
        self.name = f"{base.name}+no-overlap"

    def members(self, conf: Config) -> FrozenSet[NodeId]:
        return self.base.members(conf)

    def is_quorum(self, group: Iterable[NodeId], conf: Config) -> bool:
        return self.base.is_quorum(group, conf)

    def r1_plus(self, old: Config, new: Config) -> bool:
        return self.base.is_valid_config(new)

    def is_valid_config(self, conf: Config) -> bool:
        return self.base.is_valid_config(conf)

    def describe_config(self, conf: Config) -> str:
        return self.base.describe_config(conf)


# ----------------------------------------------------------------------
# Per-scheme reconfiguration move generators
# ----------------------------------------------------------------------

def _set_removals(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
    conf_set = frozenset(conf)
    if len(conf_set) > 1:
        for node in sorted(conf_set):
            yield conf_set - {node}


def _logless_shrinking(inner: ReconfigCandidates) -> ReconfigCandidates:
    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        base = len(LoglessReconfigScheme().members(conf))
        for cand in inner(state, nid, conf):
            if len(cand.members) < base:
                yield cand

    return candidates


def joint_reconfig_candidates(
    universe: Iterable[NodeId], removals_only: bool = False
) -> ReconfigCandidates:
    """Joint-consensus moves: enter a joint config one member away, or
    leave the current joint config by promoting its new half."""
    universe_sorted = tuple(sorted(frozenset(universe)))

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        cf = conf if isinstance(conf, JointConfig) else JointConfig.stable(conf)
        if cf.is_joint:
            yield JointConfig.stable(cf.new)
            return
        if len(cf.old) > 1:
            for node in sorted(cf.old):
                yield JointConfig.transition(cf.old, cf.old - {node})
        if not removals_only:
            for node in universe_sorted:
                if node not in cf.old:
                    yield JointConfig.transition(cf.old, cf.old | {node})

    return candidates


def joint_jump_candidates(universe: Iterable[NodeId]) -> ReconfigCandidates:
    """Direct stable-to-stable jumps (no joint phase) for the OVERLAP
    ablation."""
    jumps = jump_reconfig_candidates(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        cf = conf if isinstance(conf, JointConfig) else JointConfig.stable(conf)
        for members in jumps(state, nid, cf.old):
            yield JointConfig.stable(members)

    return candidates


def pb_reconfig_candidates(
    universe: Iterable[NodeId], removals_only: bool = False
) -> ReconfigCandidates:
    """Primary-backup moves: same primary, backups change by one."""
    universe_set = frozenset(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        pb = (
            conf
            if isinstance(conf, PrimaryBackupConfig)
            else PrimaryBackupConfig.of(*conf)
        )
        if not removals_only:
            for node in sorted(universe_set - pb.all_members()):
                yield PrimaryBackupConfig.of(pb.primary, pb.backups | {node})
        for node in sorted(pb.backups):
            yield PrimaryBackupConfig.of(pb.primary, pb.backups - {node})

    return candidates


def pb_jump_candidates(universe: Iterable[NodeId]) -> ReconfigCandidates:
    """Primary *changes* -- the jump that breaks primary-backup's
    trivial quorum overlap."""
    universe_sorted = tuple(sorted(frozenset(universe)))

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        pb = (
            conf
            if isinstance(conf, PrimaryBackupConfig)
            else PrimaryBackupConfig.of(*conf)
        )
        for primary in universe_sorted:
            rest = frozenset(universe_sorted) - {primary}
            for backups in (frozenset(), rest):
                cand = PrimaryBackupConfig.of(primary, backups)
                if cand != pb:
                    yield cand

    return candidates


def sized_reconfig_candidates(
    universe: Iterable[NodeId], removals_only: bool = False
) -> ReconfigCandidates:
    """Dynamic-quorum moves: one member in or out, majority-sized
    quorums (every such move satisfies the ``|C| < q + q'`` side
    condition)."""
    universe_set = frozenset(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        cf = conf if isinstance(conf, SizedConfig) else SizedConfig.of(*conf)
        if not removals_only:
            for node in sorted(universe_set - cf.members):
                yield SizedConfig.majority(cf.members | {node})
        if len(cf.members) > 1:
            for node in sorted(cf.members):
                yield SizedConfig.majority(cf.members - {node})

    return candidates


def sized_jump_candidates(universe: Iterable[NodeId]) -> ReconfigCandidates:
    jumps = jump_reconfig_candidates(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        cf = conf if isinstance(conf, SizedConfig) else SizedConfig.of(*conf)
        for members in jumps(state, nid, cf.members):
            yield SizedConfig.majority(members)

    return candidates


def weighted_reconfig_candidates(
    universe: Iterable[NodeId], removals_only: bool = False
) -> ReconfigCandidates:
    """Uniform-weight moves: one member in or out (weights stay 1, so
    the pigeonhole side condition of R1⁺ holds for every move)."""
    universe_set = frozenset(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        cf = (
            conf
            if isinstance(conf, WeightedConfig)
            else WeightedConfig.uniform(conf)
        )
        members = cf.member_set()
        if not removals_only:
            for node in sorted(universe_set - members):
                yield WeightedConfig.uniform(members | {node})
        if len(members) > 1:
            for node in sorted(members):
                yield WeightedConfig.uniform(members - {node})

    return candidates


def weighted_jump_candidates(universe: Iterable[NodeId]) -> ReconfigCandidates:
    jumps = jump_reconfig_candidates(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        cf = (
            conf
            if isinstance(conf, WeightedConfig)
            else WeightedConfig.uniform(conf)
        )
        for members in jumps(state, nid, cf.member_set()):
            yield WeightedConfig.uniform(members)

    return candidates


def default_scenarios(
    universe: FrozenSet[NodeId] = FIG4_NODES,
) -> List[SchemeScenario]:
    """The seven schemes over a shared node universe.

    Every scenario starts from the full-universe configuration (for
    primary-backup, node ``min(universe)`` is the primary) and moves
    one membership step at a time, so the compared state spaces are the
    same shape wherever the config representations allow it.
    """
    universe = frozenset(universe)
    primary = min(universe)
    backups = universe - {primary}
    return [
        SchemeScenario(
            scheme=RaftSingleNodeScheme(),
            conf0=universe,
            candidates=set_reconfig_candidates(universe),
            shrink_candidates=_set_removals,
            jump_candidates=jump_reconfig_candidates(universe),
        ),
        SchemeScenario(
            scheme=JointConsensusScheme(),
            conf0=JointConfig.stable(universe),
            candidates=joint_reconfig_candidates(universe),
            shrink_candidates=joint_reconfig_candidates(
                universe, removals_only=True
            ),
            jump_candidates=joint_jump_candidates(universe),
        ),
        SchemeScenario(
            scheme=PrimaryBackupScheme(),
            conf0=PrimaryBackupConfig.of(primary, backups),
            candidates=pb_reconfig_candidates(universe),
            shrink_candidates=pb_reconfig_candidates(
                universe, removals_only=True
            ),
            jump_candidates=pb_jump_candidates(universe),
        ),
        SchemeScenario(
            scheme=DynamicQuorumScheme(),
            conf0=SizedConfig.majority(universe),
            candidates=sized_reconfig_candidates(universe),
            shrink_candidates=sized_reconfig_candidates(
                universe, removals_only=True
            ),
            jump_candidates=sized_jump_candidates(universe),
        ),
        SchemeScenario(
            scheme=UnanimousScheme(),
            conf0=universe,
            candidates=set_reconfig_candidates(universe),
            shrink_candidates=_set_removals,
            jump_candidates=jump_reconfig_candidates(universe),
        ),
        SchemeScenario(
            scheme=WeightedMajorityScheme(),
            conf0=WeightedConfig.uniform(universe),
            candidates=weighted_reconfig_candidates(universe),
            shrink_candidates=weighted_reconfig_candidates(
                universe, removals_only=True
            ),
            jump_candidates=weighted_jump_candidates(universe),
        ),
        SchemeScenario(
            scheme=LoglessReconfigScheme(),
            conf0=LoglessConfig.initial(universe),
            candidates=logless_reconfig_candidates(universe),
            shrink_candidates=_logless_shrinking(
                logless_reconfig_candidates(universe)
            ),
            jump_candidates=logless_jump_candidates(universe),
        ),
    ]


# ----------------------------------------------------------------------
# One run of the matrix
# ----------------------------------------------------------------------

def explorer_for(
    scenario: SchemeScenario,
    ablation: str,
    budget: Optional[OpBudget] = None,
    max_states: int = 200_000,
    strategy: str = "guided",
) -> Explorer:
    """The configured :class:`Explorer` for one matrix cell.

    All cells share the hunt configuration of
    :mod:`repro.mc.ablations` (callers {1, 2}, quorum pulls, minimal
    quorums, replicated-state safety -- plus well-formedness for the
    ``leaf-commit`` cell, whose violation is structural).
    """
    if ablation not in ABLATIONS:
        raise ValueError(f"unknown ablation {ablation!r}")
    params = dict(
        scheme=scenario.scheme,
        conf0=scenario.conf0,
        callers=[1, 2],
        budget=budget or DEFAULT_BUDGETS[ablation],
        reconfig_candidates=scenario.candidates,
        quorum_pulls_only=True,
        minimal_quorums_only=True,
        invariants=["safety"],
        strategy=strategy,
        max_states=max_states,
        stop_at_first_violation=True,
    )
    if ablation == "no-r2":
        params["enforce_r2"] = False
        params["reconfig_candidates"] = scenario.shrink_candidates
    elif ablation == "no-r3":
        params["enforce_r3"] = False
    elif ablation == "no-overlap":
        params["scheme"] = OverlapAblation(scenario.scheme)
        params["reconfig_candidates"] = scenario.jump_candidates
    elif ablation == "leaf-commit":
        params["push_step"] = _leaf_push
        params["invariants"] = ["safety", "well-formedness"]
    return Explorer(**params)


@dataclass(frozen=True)
class RunRecord:
    """The outcome of one (scheme, ablation) cell."""

    scheme: str
    ablation: str
    safe: bool
    #: True when the frontier emptied below the state cap: the verdict
    #: covers the whole budgeted schedule class, not a truncation.
    complete: bool
    states: int
    transitions: int
    max_depth: int
    #: Depth of the first violation under the harness's fixed
    #: deterministic search order (``None`` when safe).  With
    #: ``strategy="bfs"`` this is the *minimal* counterexample depth.
    first_violation_depth: Optional[int]
    first_violation_labels: Tuple[str, ...]
    elapsed_seconds: float

    @property
    def survival(self) -> str:
        """The matrix cell: ``dies@d``, ``survives``, or ``survives?``
        (safe but truncated by the state cap)."""
        if not self.safe:
            return f"dies@{self.first_violation_depth}"
        return "survives" if self.complete else "survives?"

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "ablation": self.ablation,
            "safe": self.safe,
            "complete": self.complete,
            "states": self.states,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "first_violation_depth": self.first_violation_depth,
            "first_violation_labels": list(self.first_violation_labels),
            "survival": self.survival,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def _record(
    scenario: SchemeScenario,
    ablation: str,
    result: ExplorationResult,
    max_states: int,
) -> RunRecord:
    violation = result.violations[0] if result.violations else None
    labels: Tuple[str, ...] = ()
    if violation is not None:
        labels = tuple(
            sorted({v.split("]")[0].strip("[") for v in
                    violation.report.all_violations()})
        )
    return RunRecord(
        scheme=scenario.name,
        ablation=ablation,
        safe=result.safe,
        # A found violation is a definitive verdict; for safe runs,
        # ``exhausted`` is only set for bfs, but a guided run that
        # emptied its frontier below the cap is complete all the same.
        complete=(not result.safe)
        or result.exhausted
        or result.states_visited < max_states,
        states=result.states_visited,
        transitions=result.transitions,
        max_depth=result.max_depth,
        first_violation_depth=(
            len(violation.trace) if violation is not None else None
        ),
        first_violation_labels=labels,
        elapsed_seconds=result.elapsed_seconds,
    )


@dataclass
class DifferentialReport:
    """The machine-readable comparison across schemes and ablations."""

    universe: Tuple[NodeId, ...]
    strategy: str
    max_states: int
    budgets: Dict[str, OpBudget]
    records: List[RunRecord] = field(default_factory=list)

    def schemes(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.scheme not in seen:
                seen.append(record.scheme)
        return seen

    def ablations(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.ablation not in seen:
                seen.append(record.ablation)
        return seen

    def record(self, scheme: str, ablation: str) -> Optional[RunRecord]:
        for rec in self.records:
            if rec.scheme == scheme and rec.ablation == ablation:
                return rec
        return None

    def survival_matrix(self) -> List[List[str]]:
        """Rows ``[scheme, cell...]``, one cell per ablation."""
        rows = []
        for scheme in self.schemes():
            row = [scheme]
            for ablation in self.ablations():
                rec = self.record(scheme, ablation)
                row.append(rec.survival if rec is not None else "-")
            rows.append(row)
        return rows

    def frontier(self) -> Dict[str, Dict[str, Optional[int]]]:
        """``scheme -> ablation -> first-violation depth`` (None = safe)."""
        return {
            scheme: {
                ablation: (
                    self.record(scheme, ablation).first_violation_depth
                    if self.record(scheme, ablation) is not None
                    else None
                )
                for ablation in self.ablations()
            }
            for scheme in self.schemes()
        }

    def separations(self, scheme_a: str, scheme_b: str) -> List[str]:
        """Ablations on which the two schemes' fates differ (one dies,
        the other survives, or they die at different depths)."""
        out = []
        for ablation in self.ablations():
            rec_a = self.record(scheme_a, ablation)
            rec_b = self.record(scheme_b, ablation)
            if rec_a is None or rec_b is None:
                continue
            if (rec_a.safe, rec_a.first_violation_depth) != (
                rec_b.safe,
                rec_b.first_violation_depth,
            ):
                out.append(ablation)
        return out

    def determinism_key(self) -> tuple:
        """Everything that must be identical across repeat runs
        (timings excluded)."""
        return tuple(
            (
                rec.scheme,
                rec.ablation,
                rec.safe,
                rec.complete,
                rec.states,
                rec.transitions,
                rec.max_depth,
                rec.first_violation_depth,
                rec.first_violation_labels,
            )
            for rec in self.records
        )

    def to_dict(self) -> dict:
        return {
            "universe": list(self.universe),
            "strategy": self.strategy,
            "max_states": self.max_states,
            "budgets": {
                ablation: {
                    "pulls": budget.pulls,
                    "invokes": budget.invokes,
                    "reconfigs": budget.reconfigs,
                    "pushes": budget.pushes,
                }
                for ablation, budget in self.budgets.items()
            },
            "records": [rec.to_dict() for rec in self.records],
            "survival_matrix": self.survival_matrix(),
            "frontier": self.frontier(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """The three comparison tables as aligned text."""
        from ..analysis.render import render_table

        ablations = self.ablations()
        sections = []
        budget_line = ", ".join(
            f"{ablation}=({b.pulls}p/{b.invokes}i/{b.reconfigs}r/{b.pushes}c)"
            for ablation, b in self.budgets.items()
            if ablation in ablations
        )
        sections.append(
            f"differential check: universe {list(self.universe)}, "
            f"strategy {self.strategy}, max_states {self.max_states}\n"
            f"budgets: {budget_line}"
        )
        sections.append(
            "ablation survival\n"
            + render_table(["scheme"] + list(ablations), self.survival_matrix())
        )
        frontier_rows = [
            [scheme]
            + [
                "-" if depth is None else str(depth)
                for depth in self.frontier()[scheme].values()
            ]
            for scheme in self.schemes()
        ]
        sections.append(
            "violation frontier (first-violation depth; - = safe)\n"
            + render_table(["scheme"] + list(ablations), frontier_rows)
        )
        state_rows = []
        for scheme in self.schemes():
            row = [scheme]
            for ablation in ablations:
                rec = self.record(scheme, ablation)
                if rec is None:
                    row.append("-")
                else:
                    row.append(
                        f"{rec.states}{'' if rec.complete else '+'}"
                    )
            state_rows.append(row)
        sections.append(
            "reachable states explored (+ = truncated at the cap)\n"
            + render_table(["scheme"] + list(ablations), state_rows)
        )
        return "\n\n".join(sections)


def run_differential(
    scenarios: Optional[Sequence[SchemeScenario]] = None,
    budgets: Optional[Dict[str, OpBudget]] = None,
    ablations: Sequence[str] = ABLATIONS,
    max_states: int = 200_000,
    strategy: str = "guided",
    workers: int = 1,
    checkpoint_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> DifferentialReport:
    """Run every (scheme, ablation) cell on identical budgets.

    ``strategy="guided"`` (the default) is required to reach the
    deep Fig. 4-class counterexamples within a practical state cap;
    pure bfs truncates at 300k+ states before depth 8.  Runs remain
    deterministic either way (see the module docstring).  ``workers``
    > 1 parallelizes each cell through
    :func:`repro.mc.parallel.explore` (bfs only, so guided is demoted
    -- verdicts unchanged, state counts differ); ``checkpoint_dir``
    stores one resumable checkpoint per cell.
    """
    scenario_list = (
        list(scenarios) if scenarios is not None else default_scenarios()
    )
    budget_map = dict(DEFAULT_BUDGETS)
    if budgets:
        budget_map.update(budgets)
    unknown = [a for a in ablations if a not in ABLATIONS]
    if unknown:
        raise ValueError(f"unknown ablations {unknown}")
    universe: FrozenSet[NodeId] = frozenset()
    for scenario in scenario_list:
        universe |= scenario.scheme.members(scenario.conf0)
    # The parallel engine (used for workers > 1 *or* checkpointing) is
    # bfs-only, so those paths demote guided runs.
    parallel = workers != 1 or checkpoint_dir is not None
    run_strategy = "bfs" if parallel else strategy
    report = DifferentialReport(
        universe=tuple(sorted(universe)),
        strategy=run_strategy,
        max_states=max_states,
        budgets={a: budget_map[a] for a in ablations},
    )
    for scenario in scenario_list:
        for ablation in ablations:
            explorer = explorer_for(
                scenario,
                ablation,
                budget=budget_map[ablation],
                max_states=max_states,
                strategy=run_strategy,
            )
            checkpoint = None
            if checkpoint_dir:
                checkpoint = os.path.join(
                    checkpoint_dir, f"{scenario.name}--{ablation}.ckpt"
                )
            result = explore(explorer, workers=workers, checkpoint=checkpoint)
            record = _record(scenario, ablation, result, max_states)
            report.records.append(record)
            if progress is not None:
                progress(
                    f"{record.scheme} / {record.ablation}: "
                    f"{record.survival} ({record.states} states, "
                    f"{record.elapsed_seconds:.1f}s)"
                )
    return report
