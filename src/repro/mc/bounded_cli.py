"""Bounded-memory model-checking harness: ``python -m repro.mc.bounded_cli``.

Runs the Fig. 4 intact verification twice -- once unbounded in RAM,
once under an address-space rlimit with the bounded cache policy and
the disk-spilled frontier/visited set -- and asserts the two runs agree
exactly (states, transitions, verdict, first violation).  This is the
CI gate proving that bounding memory changes *resource usage only*,
never the answer.

Exit status 0 means the bounded run completed under the cap with exact
parity; anything else is a failure.  A JSON summary goes to stdout for
the CI log.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from ..core import cachemgr
from .ablations import verify_intact_explorer
from .explorer import OpBudget
from .parallel import ParallelExplorer

#: CI-sized budgets: ``small`` finishes in seconds, ``fig4`` is the
#: full paper budget (minutes).
BUDGETS = {
    "small": OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2),
    "fig4": None,  # factory default == the Fig. 4 budget
}


def signature(result) -> dict:
    first = None
    if result.violations:
        violation = result.violations[0]
        first = [
            [repr(op) for op in violation.trace],
            list(violation.report.all_violations()),
        ]
    return {
        "states": result.states_visited,
        "transitions": result.transitions,
        "verdict": result.safe,
        "violations": len(result.violations),
        "first_violation": first,
    }


def apply_address_space_cap(limit_mb: int) -> bool:
    """Cap this process's virtual address space (soft limit).

    Returns ``False`` (with a note on stderr) on platforms without
    ``RLIMIT_AS`` instead of failing: the parity check still runs, it
    just is not resource-enforced.

    ``RLIMIT_AS`` charges *reservations*, not residency, so glibc's
    defaults are actively hostile to it: every new thread costs a
    64 MiB malloc arena reservation plus an 8 MiB stack -- the worker
    pool's two handler threads alone would eat ~140 MiB of a cap
    without a byte of data behind it.  Pin the allocator to the main
    arena and shrink stacks for threads created from here on.
    """
    try:
        import resource
    except ImportError:
        print("bounded_cli: no resource module; cap not enforced", file=sys.stderr)
        return False
    limit = limit_mb * 1024 * 1024
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    try:
        import ctypes

        M_ARENA_MAX = -8  # glibc malloc.h
        ctypes.CDLL(None).mallopt(M_ARENA_MAX, 1)
    except Exception:
        pass  # non-glibc: arenas either don't exist or aren't tunable
    try:
        import threading

        threading.stack_size(1 << 20)
    except (ImportError, ValueError):
        pass
    return True


def _reference_leg(args, overrides) -> dict:
    """The unbounded reference run: returns its signature."""
    reference = signature(verify_intact_explorer(**overrides).run())
    cachemgr.flush()
    return reference


def _bounded_leg(args, overrides) -> tuple:
    """The capped run: returns ``(signature, flushes, rss_kb, capped)``.

    Runs in a fresh forked child when possible (see :func:`main`): the
    address-space cap must be applied before the process grows.
    """
    capped = args.limit_mb > 0 and apply_address_space_cap(args.limit_mb)
    with tempfile.TemporaryDirectory(prefix="bounded-mc-") as spill_dir:
        with cachemgr.bounded(
            tree_cap=args.tree_cap,
            cache_cap=max(args.tree_cap * 2, 64),
            wipe=args.wipe,
        ):
            explorer = verify_intact_explorer(
                spill_dir=spill_dir,
                spill_window=args.window,
                **overrides,
            )
            if args.workers > 1:
                result = ParallelExplorer(explorer, workers=args.workers).run()
            else:
                # The sequential engine has the smaller footprint (no
                # per-window batching buffers); use it unless worker
                # parallelism was explicitly requested.
                result = explorer.run()
            stats = cachemgr.stats()
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:
        rss_kb = None
    return signature(result), stats["tree_interns"]["flushes"], rss_kb, capped


def _in_child(leg, args, overrides, what):
    """Run one leg in a forked child and return its payload (or None).

    Forking from the still-slim parent matters twice over: the bounded
    leg's ``RLIMIT_AS`` caps *virtual* size, which CPython never really
    returns to the OS (so a child forked after the reference run would
    inherit a too-big address space), and each leg's ``ru_maxrss`` stays
    a clean per-leg high-water mark.
    """
    import multiprocessing

    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)

    def runner():
        child_conn.send(leg(args, overrides))
        child_conn.close()

    process = context.Process(target=runner)
    process.start()
    child_conn.close()
    # Join before reading: the payload is small enough to sit in the
    # pipe buffer, and a child that died mid-run may have left pool
    # workers holding the write end open -- blocking on recv() first
    # would then hang forever instead of reporting the death.
    process.join()
    if not parent_conn.poll():
        print(
            f"bounded_cli: {what} run died "
            f"(exit code {process.exitcode})",
            file=sys.stderr,
        )
        return None
    return parent_conn.recv()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc.bounded_cli",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--budget", choices=sorted(BUDGETS), default="small",
        help="workload size (default: small; fig4 = full paper budget)",
    )
    parser.add_argument(
        "--limit-mb", type=int, default=256,
        help="RLIMIT_AS cap for the bounded run, in MiB (default: 256; "
        "0 disables the cap, e.g. when embedding in a larger process)",
    )
    parser.add_argument(
        "--wipe", choices=sorted(cachemgr.WIPE_POLICIES),
        default=cachemgr.WIPE_SUBNODES,
        help="cache eviction policy for the bounded run",
    )
    parser.add_argument(
        "--tree-cap", type=int, default=4096,
        help="interned-tree cache cap for the bounded run (default: 4096)",
    )
    parser.add_argument(
        "--window", type=int, default=1024,
        help="frontier RAM window for the bounded run (default: 1024)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel engine worker count (default: 1)",
    )
    args = parser.parse_args(argv)
    budget = BUDGETS[args.budget]
    overrides = {} if budget is None else {"budget": budget}

    # Each leg runs in its own forked child (see _in_child) when a cap
    # is requested; without fork, or with --limit-mb 0 (no cap), both
    # legs run in this process.
    use_fork = args.limit_mb > 0 and hasattr(os, "fork")
    if use_fork:
        reference = _in_child(_reference_leg, args, overrides, "reference")
        if reference is None:
            return 1
        payload = _in_child(_bounded_leg, args, overrides,
                            f"bounded ({args.limit_mb} MiB cap)")
        if payload is None:
            return 1
    else:
        reference = _reference_leg(args, overrides)
        payload = _bounded_leg(args, overrides)
    bounded, cache_flushes, peak_rss_kb, capped = payload
    summary = {
        "budget": args.budget,
        "wipe": args.wipe,
        "tree_cap": args.tree_cap,
        "window": args.window,
        "workers": args.workers,
        "limit_mb": args.limit_mb if capped else None,
        "peak_rss_kb": peak_rss_kb,
        "cache_flushes": cache_flushes,
        "reference": reference,
        "bounded": bounded,
        "parity": bounded == reference,
    }
    print(json.dumps(summary, indent=2))
    if not summary["parity"]:
        print("bounded_cli: PARITY FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
