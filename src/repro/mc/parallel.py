"""TLC-style parallel, resumable bounded model checking.

:class:`ParallelExplorer` runs the same transition semantics as the
sequential :class:`~repro.mc.explorer.Explorer` -- both engines call the
explorer's pure ``expand`` step API -- but partitions each BFS frontier
level across a pool of ``multiprocessing`` workers.  Successor
generation, symmetry canonicalization and invariant checking (the three
hot operations) happen in the workers; the master keeps the shared
seen-set and merges worker results **in deterministic frontier order**,
so for any worker count the engine visits exactly the states the
sequential breadth-first search visits, reports the same verdict, and
finds the identical first violation.

The search is level-synchronized: a barrier between BFS depths is what
makes the merge order (and therefore the result) independent of worker
scheduling.  Between levels the engine can write a
:class:`~repro.mc.checkpoint.Checkpoint` to disk, so an interrupted run
-- a killed process, or a CI job that deliberately stops at
``max_seconds`` -- resumes from the last completed level instead of
restarting.

Worker processes are created with the ``fork`` start method so that
explorer configurations containing closures (reconfiguration candidate
generators, the insertBtw ablation's push override) are inherited
rather than pickled.  On platforms without ``fork`` the engine degrades
to in-process execution with a warning; results are identical, only the
speedup is lost.

Parallel exploration supports the ``bfs`` strategy only: best-first
("guided") search orders its global priority queue by previously
expanded states, which a frontier partition cannot reproduce
deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.metrics import NULL_METRICS, MetricsRegistry
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .explorer import ExplorationResult, Explorer, OpBudget, Violation
from .fpset import FingerprintSet

#: One frontier entry: ``(state, remaining_budget, trace)``.
FrontierEntry = Tuple[Any, OpBudget, Tuple]

#: Refuse to place the shared visited table in a SharedMemory segment
#: larger than this; bigger runs fall back to a master-private table.
_SHARED_VISITED_MAX_BYTES = 256 * 1024 * 1024

#: Explorer used by pool workers; populated by :func:`_init_worker`
#: (inherited through ``fork``, never pickled).
_WORKER_EXPLORER: Optional[Explorer] = None

#: Fork-inherited view of the master's shared-memory visited table
#: (``None`` when the run has no shared table).  Workers only read it;
#: the master writes between levels, when no worker is running.
_WORKER_VISITED: Optional[FingerprintSet] = None


def _init_worker(
    explorer: Explorer, shared_visited: Optional[FingerprintSet] = None
) -> None:
    global _WORKER_EXPLORER, _WORKER_VISITED
    _WORKER_EXPLORER = explorer
    _WORKER_VISITED = shared_visited


def _expand_batch(payload):
    """Expand one contiguous slice of the frontier (runs in a worker).

    ``payload`` is ``(base_index, [(state, budget), ...])``.  Returns
    ``(worker_name, produced, [(index, succs), ...])`` where ``succs``
    preserves expansion order and each element is either

    * ``None`` -- a successor whose dedup key is a guaranteed global
      duplicate: it already appeared earlier in this batch, or it is in
      the fork-shared visited table from a previous level.  It still
      counts as a transition but needs no state shipping or safety
      check, and in the shared-table case does not even travel back to
      the master as a key; or
    * ``(op_desc, next_state, next_budget, key, report)`` with
      ``report`` being ``None`` for a clean state and the full
      :class:`~repro.core.safety.SafetyReport` otherwise.

    The batch-local dedup is sound because batches are contiguous
    frontier slices merged in order: the first occurrence inside the
    batch is also the first occurrence the sequential search would see
    within this level segment.  The shared-table probe is sound because
    the level barrier (``pool.map``) means the master only inserts
    fingerprints while no worker runs: a worker always observes a
    consistent snapshot holding exactly the states visited up to the
    previous level, and a hit is exactly the master's own
    ``key in visited`` verdict.
    """
    base_index, items = payload
    explorer = _WORKER_EXPLORER
    shared = _WORKER_VISITED
    batch_seen = set()
    produced = 0
    results = []
    # Under the "subnodes" wipe policy (inherited through fork) a cache
    # flush inside this batch must keep the trees the batch is working
    # from; the provider costs two calls per batch and is consulted
    # only at flush time.
    from ..core.tree import set_tree_pin_provider

    previous_provider = set_tree_pin_provider(
        lambda: [state.tree.fingerprint() for state, _ in items]
    )
    try:
        return _expand_batch_inner(
            base_index, items, explorer, shared, batch_seen, results
        )
    finally:
        set_tree_pin_provider(previous_provider)


def _expand_batch_inner(base_index, items, explorer, shared, batch_seen, results):
    produced = 0
    for offset, (state, budget) in enumerate(items):
        succs: List[Optional[Tuple]] = []
        for op_desc, next_state, next_budget, key in explorer.expand(
            state, budget
        ):
            produced += 1
            if (shared is not None and key in shared) or key in batch_seen:
                succs.append(None)
                continue
            batch_seen.add(key)
            report = explorer.check(next_state)
            succs.append((
                op_desc,
                next_state,
                next_budget,
                key,
                None if report.ok else report,
            ))
        results.append((base_index + offset, succs))
    return multiprocessing.current_process().name, produced, results


@dataclass
class EngineStats:
    """Aggregate throughput counters for one engine run (one slice)."""

    workers: int
    levels: int = 0
    batches: int = 0
    #: Successor states produced by workers (== transitions this slice).
    produced: int = 0
    #: Successors dropped as duplicates (batch-local or in the shared
    #: seen-set).
    dedup_hits: int = 0
    checkpoints_written: int = 0
    #: Successors produced per pool worker, by process name.
    per_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of produced successors that were duplicates."""
        if self.produced == 0:
            return 0.0
        return self.dedup_hits / self.produced

    def describe(self) -> str:
        workers = ", ".join(
            f"{name}={count}" for name, count in sorted(self.per_worker.items())
        )
        return (
            f"{self.workers} worker(s), {self.levels} level(s), "
            f"{self.batches} batch(es), dedup hit-rate "
            f"{self.dedup_hit_rate:.0%}, {self.checkpoints_written} "
            f"checkpoint(s) [{workers}]"
        )


@dataclass(frozen=True)
class ProgressSnapshot:
    """Observability record emitted after every completed BFS level."""

    level: int
    #: Entries expanded at this level (the queue depth going in).
    frontier: int
    #: Entries queued for the next level (the queue depth going out).
    next_frontier: int
    states_visited: int
    transitions: int
    dedup_hits: int
    elapsed_seconds: float
    states_per_second: float
    per_worker: Tuple[Tuple[str, int], ...]

    def describe(self) -> str:
        return (
            f"level {self.level}: frontier {self.frontier} -> "
            f"{self.next_frontier}, {self.states_visited} states, "
            f"{self.transitions} transitions, "
            f"{self.states_per_second:,.0f} states/s, "
            f"dedup {self.dedup_hits}"
        )


def print_progress(snapshot: ProgressSnapshot) -> None:
    """A ready-made ``progress=`` callback that prints to stdout."""
    print("  " + snapshot.describe(), flush=True)


class ParallelExplorer:
    """Work-queue engine running an :class:`Explorer` across processes.

    Parameters
    ----------
    explorer:
        A configured sequential explorer (``strategy="bfs"``).  Its
        ``expand``/``check`` step API defines the semantics; this class
        only schedules it.
    workers:
        Pool size; ``None`` or ``0`` means ``os.cpu_count()``.
        ``workers=1`` runs in-process (no pool) but keeps every other
        engine feature -- checkpointing, time slicing, progress
        counters.
    checkpoint:
        Path for the resumable snapshot.  When the file already exists
        and matches the explorer's configuration fingerprint, the run
        resumes from it; on successful completion the file is removed.
    checkpoint_interval:
        Minimum seconds between checkpoint writes (checked at level
        boundaries).  ``0`` checkpoints after every level.
    batch_size:
        Upper bound on frontier entries per worker task.  Within a
        level, batches are contiguous slices, so the merged result is
        independent of this value.
    max_seconds / max_levels:
        Stop cleanly (checkpointing first) once the slice has run this
        long / processed this many levels.  The returned result has
        ``interrupted=True``; re-running with the same ``checkpoint=``
        path continues the search.
    progress:
        Optional callback receiving a :class:`ProgressSnapshot` after
        each level (see :func:`print_progress`).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  After
        every level the engine updates ``mc.levels`` / ``mc.states`` /
        ``mc.transitions`` / ``mc.frontier`` / ``mc.dedup_hit_rate``
        and the per-level throughput histogram
        ``mc.level_states_per_second`` -- the structured version of
        what ``print_progress`` prints.
    """

    def __init__(
        self,
        explorer: Explorer,
        workers: Optional[int] = None,
        checkpoint: Optional[str] = None,
        checkpoint_interval: float = 30.0,
        batch_size: int = 32,
        max_seconds: Optional[float] = None,
        max_levels: Optional[int] = None,
        progress: Optional[Callable[[ProgressSnapshot], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if explorer.strategy != "bfs":
            raise ValueError(
                "parallel exploration requires strategy='bfs'; best-first "
                "('guided') search has no deterministic frontier partition"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU core)")
        self.explorer = explorer
        self.workers = workers if workers else (os.cpu_count() or 1)
        self.checkpoint = checkpoint
        self.checkpoint_interval = checkpoint_interval
        self.batch_size = batch_size
        self.max_seconds = max_seconds
        self.max_levels = max_levels
        self.progress = progress
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------

    def _batches(self, frontier: Sequence[FrontierEntry]):
        """Contiguous ``(base_index, [(state, budget), ...])`` slices.

        The slice size balances scheduling overhead against pool
        utilization; correctness does not depend on it.
        """
        per_worker = -(-len(frontier) // (self.workers * 4)) or 1
        size = max(1, min(self.batch_size, per_worker))
        for start in range(0, len(frontier), size):
            chunk = frontier[start:start + size]
            yield start, [(state, budget) for state, budget, _ in chunk]

    def _run_level(self, pool, frontier: Sequence[FrontierEntry], stats):
        """Expand one full level, returning per-entry successor lists
        ordered by frontier index."""
        payloads = list(self._batches(frontier))
        stats.batches += len(payloads)
        if pool is None:
            outputs = [_expand_batch(payload) for payload in payloads]
        else:
            outputs = pool.map(_expand_batch, payloads, chunksize=1)
        merged: List[Tuple[int, List]] = []
        for worker_name, produced, results in outputs:
            stats.produced += produced
            stats.per_worker[worker_name] = (
                stats.per_worker.get(worker_name, 0) + produced
            )
            merged.extend(results)
        merged.sort(key=lambda item: item[0])
        return merged

    @staticmethod
    def _fork_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    def _make_pool(self, shared_visited: Optional[FingerprintSet] = None):
        if self.workers <= 1:
            _init_worker(self.explorer)
            return None
        context = self._fork_context()
        if context is None:
            warnings.warn(
                "the 'fork' start method is unavailable on this platform; "
                "running the parallel engine in-process (results are "
                "identical, the speedup is lost)",
                stacklevel=2,
            )
            _init_worker(self.explorer)
            return None
        return context.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.explorer, shared_visited),
        )

    def _make_shared_visited(self, current):
        """Move the visited table into a SharedMemory segment so pool
        workers can probe it directly (pre-filtering duplicates without
        shipping states back to the master).

        Returns ``(shm, visited)``: the segment to clean up (``None``
        when shared memory is not used) and the table to use as the
        authoritative visited set.  Only applies when a real fork pool
        will exist and the table fits the size cap; everything else
        keeps the master-private table and just loses the pre-filter.

        A *spilled* visited table needs no segment at all: its
        ``MAP_SHARED`` file mapping is inherited through ``fork``, so
        workers probe the master's table directly -- the caller passes
        it to the pool as-is.
        """
        if (
            self.workers <= 1
            or not self.explorer.fingerprints
            or self._fork_context() is None
            or getattr(current, "spill_path", None) is not None
        ):
            return None, current
        nbytes = FingerprintSet.buffer_bytes(self.explorer.max_states)
        if nbytes > _SHARED_VISITED_MAX_BYTES:
            return None, current
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=nbytes)
        except (ImportError, OSError):
            return None, current
        shared = FingerprintSet.attach(shm.buf, clear=True)
        for fp in current:
            shared.add(fp)
        return shm, shared

    # ------------------------------------------------------------------

    def run(self, resume: bool = True) -> ExplorationResult:
        """Explore to completion, a violation, or a slice limit.

        Semantics are identical to ``Explorer.run()`` with
        ``strategy="bfs"``: same visited states, same transition count,
        same verdict, same first violation -- for any worker count.
        """
        explorer = self.explorer
        start = _time.monotonic()
        stats = EngineStats(workers=self.workers)
        base_elapsed = 0.0
        level = 0
        transitions = 0
        max_depth = 0
        exhausted = True
        violations: List[Violation] = []

        # Bounded-memory mode: the frontier lives in SpillDeques (only
        # the active window in RAM; levels processed window-by-window)
        # and the visited set in an mmap'd file.  Requires fingerprint
        # dedup -- legacy full-state keys have no packed form.
        spill = explorer.spill_dir is not None and explorer.fingerprints
        spill_dir = explorer.spill_dir
        spill_deques: List[Any] = []

        def _new_level_deque(tag: int):
            from .spill import SpillDeque

            deque_ = SpillDeque(
                os.path.join(spill_dir, f"frontier-{tag}.spill"),
                explorer.spill_window,
            )
            spill_deques.append(deque_)
            return deque_

        if spill:
            os.makedirs(spill_dir, exist_ok=True)

        loaded = None
        if self.checkpoint and resume:
            loaded = load_checkpoint(
                self.checkpoint, explorer.config_fingerprint()
            )
        if loaded is not None:
            if spill:
                frontier = _new_level_deque(loaded.level % 2)
                for entry in loaded.restore_frontier(self.checkpoint):
                    frontier.append(entry)
                visited = loaded.restore_visited(
                    self.checkpoint,
                    spill_to=os.path.join(spill_dir, "visited.fps"),
                )
                if getattr(visited, "spill_path", None) is None:
                    # v2 / unspilled-v3 checkpoint resumed in spill
                    # mode: migrate its embedded visited set to disk.
                    ram = visited
                    visited = FingerprintSet.spilled(
                        os.path.join(spill_dir, "visited.fps"),
                        expected=max(explorer.max_states, len(ram)),
                    )
                    for fp in ram:
                        visited.add(fp)
            else:
                frontier = list(loaded.restore_frontier(self.checkpoint))
                visited = loaded.restore_visited(self.checkpoint)
            level = loaded.level
            transitions = loaded.transitions
            max_depth = loaded.max_depth
            exhausted = loaded.exhausted
            violations = list(loaded.violations)
            base_elapsed = loaded.elapsed_seconds
        else:
            init = explorer.initial()
            visited = explorer.new_visited_set()
            visited.add(explorer.state_key(init))
            if spill:
                frontier = _new_level_deque(0)
                frontier.append((init, explorer.budget, ()))
            else:
                frontier = [(init, explorer.budget, ())]
            report = explorer.check(init)
            if not report.ok:
                violations.append(Violation(init, (), report))

        def elapsed() -> float:
            return base_elapsed + (_time.monotonic() - start)

        def result(**overrides) -> ExplorationResult:
            values = dict(
                states_visited=len(visited),
                transitions=transitions,
                max_depth=max_depth,
                exhausted=exhausted,
                violations=violations,
                elapsed_seconds=elapsed(),
                budget=explorer.budget,
                interrupted=False,
                stats=stats,
            )
            values.update(overrides)
            return ExplorationResult(**values)

        def write_checkpoint() -> None:
            if spill:
                # v3 sidecars: snapshot the frontier and the visited
                # table to files next to the checkpoint (the *working*
                # spill files keep mutating after this point, so the
                # checkpoint must reference copies, not the live files)
                # and record their content fingerprints.
                import shutil

                from .spill import file_sha256

                frontier_file = self.checkpoint + ".frontier"
                sha_frontier = frontier.snapshot_to(frontier_file)
                visited.sync()
                visited_file = self.checkpoint + ".visited"
                tmp = visited_file + ".tmp"
                shutil.copyfile(visited.spill_path, tmp)
                os.replace(tmp, visited_file)
                checkpoint = Checkpoint(
                    fingerprint=explorer.config_fingerprint(),
                    level=level,
                    frontier=[],
                    visited_keys=set(),
                    transitions=transitions,
                    max_depth=max_depth,
                    exhausted=exhausted,
                    violations=list(violations),
                    elapsed_seconds=elapsed(),
                    visited_fps=None,
                    frontier_ref={
                        "file": os.path.basename(frontier_file),
                        "sha256": sha_frontier,
                        "count": len(frontier),
                    },
                    visited_ref={
                        "file": os.path.basename(visited_file),
                        "sha256": file_sha256(visited_file),
                        "count": len(visited),
                    },
                )
            else:
                if isinstance(visited, FingerprintSet):
                    visited_keys: set = set()
                    visited_fps = visited.to_bytes()
                else:
                    visited_keys = set(visited)
                    visited_fps = None
                checkpoint = Checkpoint(
                    fingerprint=explorer.config_fingerprint(),
                    level=level,
                    frontier=list(frontier),
                    visited_keys=visited_keys,
                    transitions=transitions,
                    max_depth=max_depth,
                    exhausted=exhausted,
                    violations=list(violations),
                    elapsed_seconds=elapsed(),
                    visited_fps=visited_fps,
                )
            save_checkpoint(self.checkpoint, checkpoint)
            stats.checkpoints_written += 1

        shm, visited = self._make_shared_visited(visited)
        # A spilled visited table fork-shares for free: its MAP_SHARED
        # mapping is inherited by pool workers, and the level barrier
        # means the master only writes while no worker runs.  (A master
        # growth swaps in a *new* file; workers then keep their stale,
        # smaller mapping -- a subset of visited, which is sound for a
        # pre-filter: it can only miss, never wrongly hit.)
        share_visited = shm is not None or (
            getattr(visited, "spill_path", None) is not None
            and self.workers > 1
            and self._fork_context() is not None
        )
        pool = self._make_pool(visited if share_visited else None)

        # Under the "subnodes" wipe policy a master-side cache flush
        # must keep the trees of the states still pending in this
        # window and the RAM head of the next frontier; spilled tails
        # are deliberately *not* pinned (walking them would re-intern
        # the very trees a flush is shedding).
        from ..core.tree import set_tree_pin_provider

        current_window: List[Sequence[FrontierEntry]] = [()]
        next_frontier_ref: List[Any] = [None]

        def _pinned_tree_fps():
            fps = [
                entry[0].tree.fingerprint() for entry in current_window[0]
            ]
            pending = next_frontier_ref[0]
            if pending is not None:
                ram_entries = pending._head if spill else pending
                fps.extend(
                    entry[0].tree.fingerprint() for entry in ram_entries
                )
            return fps

        previous_provider = set_tree_pin_provider(_pinned_tree_fps)
        # Single-probe dedup: FingerprintSet.add reports newness; for
        # plain sets one insert plus a length check does the same.
        if isinstance(visited, set):
            def add_if_new(key, _add=visited.add, _visited=visited):
                before = len(_visited)
                _add(key)
                return len(_visited) != before
        else:
            add_if_new = visited.add
        last_checkpoint = _time.monotonic()
        levels_this_slice = 0
        try:
            while frontier:
                max_depth = max(max_depth, level)
                level_started = _time.monotonic()
                if spill:
                    next_frontier: Any = _new_level_deque((level + 1) % 2)
                else:
                    next_frontier = []
                next_frontier_ref[0] = next_frontier
                queue_next = next_frontier.append
                level_entries = 0
                # In spill mode a level is processed one RAM window at
                # a time; the barrier/merge discipline is per-window,
                # which preserves sequential BFS order because windows
                # are contiguous frontier slices processed in order.
                while True:
                    if spill:
                        window = frontier.pop_window(explorer.spill_window)
                        if not window:
                            break
                    else:
                        window = frontier
                    current_window[0] = window
                    expanded = self._run_level(pool, window, stats)
                    level_entries += len(window)
                    for index, succs in expanded:
                        trace = window[index][2]
                        for entry in succs:
                            transitions += 1
                            if entry is None:  # batch-local duplicate
                                stats.dedup_hits += 1
                                continue
                            op_desc, next_state, next_budget, key, report = entry
                            if len(visited) >= explorer.max_states:
                                if key in visited:
                                    stats.dedup_hits += 1
                                else:
                                    exhausted = False
                                continue
                            if not add_if_new(key):
                                stats.dedup_hits += 1
                                continue
                            next_trace = trace + (op_desc,)
                            if report is not None and not report.ok:
                                violations.append(
                                    Violation(next_state, next_trace, report)
                                )
                                if explorer.stop_at_first_violation:
                                    self._discard_checkpoint()
                                    return result(
                                        max_depth=len(next_trace),
                                        exhausted=False,
                                    )
                                continue
                            queue_next(
                                (next_state, next_budget, next_trace)
                            )
                    if not spill:
                        break
                current_window[0] = ()
                if spill:
                    frontier.close(unlink=True)
                    spill_deques.remove(frontier)
                frontier = next_frontier
                next_frontier_ref[0] = None
                level += 1
                levels_this_slice += 1
                stats.levels = levels_this_slice
                if self.metrics.enabled:
                    self.metrics.counter("mc.levels").inc()
                    self.metrics.gauge("mc.frontier").set(len(frontier))
                    self.metrics.gauge("mc.states").set(len(visited))
                    self.metrics.gauge("mc.transitions").set(transitions)
                    self.metrics.gauge("mc.dedup_hit_rate").set(
                        stats.dedup_hit_rate
                    )
                    level_seconds = _time.monotonic() - level_started
                    if level_seconds > 0:
                        self.metrics.histogram(
                            "mc.level_states_per_second"
                        ).observe(level_entries / level_seconds)
                if self.progress is not None:
                    now_elapsed = elapsed()
                    self.progress(ProgressSnapshot(
                        level=level,
                        frontier=level_entries,
                        next_frontier=len(frontier),
                        states_visited=len(visited),
                        transitions=transitions,
                        dedup_hits=stats.dedup_hits,
                        elapsed_seconds=now_elapsed,
                        states_per_second=(
                            len(visited) / now_elapsed if now_elapsed > 0
                            else 0.0
                        ),
                        per_worker=tuple(sorted(stats.per_worker.items())),
                    ))
                out_of_time = (
                    self.max_seconds is not None
                    and _time.monotonic() - start >= self.max_seconds
                )
                out_of_levels = (
                    self.max_levels is not None
                    and levels_this_slice >= self.max_levels
                )
                if frontier and (out_of_time or out_of_levels):
                    if self.checkpoint:
                        write_checkpoint()
                    return result(interrupted=True, exhausted=False)
                if self.checkpoint and frontier and (
                    self.checkpoint_interval <= 0
                    or _time.monotonic() - last_checkpoint
                    >= self.checkpoint_interval
                ):
                    write_checkpoint()
                    last_checkpoint = _time.monotonic()
        except KeyboardInterrupt:
            # A mid-level interrupt has no consistent frontier to
            # checkpoint (the merge may be half-applied), so keep the
            # last interval checkpoint and stop the workers immediately
            # -- close()+join() would block on the abandoned map call.
            if pool is not None:
                pool.terminate()
                pool.join()
                pool = None
            raise
        finally:
            set_tree_pin_provider(previous_provider)
            if pool is not None:
                pool.close()
                pool.join()
            if shm is not None:
                # The pool is gone, so no process maps the segment but
                # this one; release our view, then free the segment.
                visited.release()
                shm.close()
                shm.unlink()
            # Working spill files are scratch: checkpointed state lives
            # in sidecar *snapshots*, so these are always safe to drop.
            for deque_ in spill_deques:
                deque_.close(unlink=True)
            visited_path = getattr(visited, "spill_path", None)
            if visited_path is not None:
                visited.close()
                try:
                    os.unlink(visited_path)
                except OSError:
                    pass

        self._discard_checkpoint()
        return result()

    def _discard_checkpoint(self) -> None:
        """Remove the checkpoint of a run that reached a final verdict,
        along with any v3 sidecar snapshots it referenced."""
        if not self.checkpoint:
            return
        for path in (
            self.checkpoint,
            self.checkpoint + ".frontier",
            self.checkpoint + ".visited",
        ):
            if os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass


# ----------------------------------------------------------------------


def explore(
    explorer: Explorer,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    **engine_options: Any,
) -> ExplorationResult:
    """Run ``explorer`` with the engine the options call for.

    ``workers=1`` with no checkpoint and no engine options is exactly
    ``explorer.run()`` (any strategy); anything else routes through
    :class:`ParallelExplorer` (``bfs`` only).  This is the single entry
    point :func:`~repro.mc.ablations.verify_intact`, the ablations, the
    examples and the benchmarks all share.
    """
    if workers == 1 and checkpoint is None and not engine_options:
        return explorer.run()
    return ParallelExplorer(
        explorer, workers=workers, checkpoint=checkpoint, **engine_options
    ).run()


def merge_results(
    results: Iterable[ExplorationResult],
    budget: Optional[OpBudget] = None,
) -> ExplorationResult:
    """Combine :class:`ExplorationResult`s from disjoint partitions.

    Counters add up (callers guarantee the partitions share no states),
    coverage degrades pessimistically (``exhausted`` only if every part
    was), and the first violation is chosen deterministically: minimal
    schedule depth, ties broken by the lexicographically least trace --
    the same violation the sequential search would report first,
    independent of partition order.
    """
    results = list(results)
    if not results:
        raise ValueError("merge_results needs at least one result")
    violations = [v for res in results for v in res.violations]
    violations.sort(key=lambda v: (len(v.trace), v.trace))
    return ExplorationResult(
        states_visited=sum(r.states_visited for r in results),
        transitions=sum(r.transitions for r in results),
        max_depth=max(r.max_depth for r in results),
        exhausted=all(r.exhausted for r in results),
        violations=violations,
        elapsed_seconds=max(r.elapsed_seconds for r in results),
        budget=budget or results[0].budget,
        interrupted=any(r.interrupted for r in results),
    )
