"""Symmetry reduction for the explicit-state model checker.

Adore's semantics is equivariant under renaming of node ids: permuting
the replicas of a reachable state yields a reachable state with an
isomorphic future.  The checker can therefore identify states up to
node permutation, which divides the state space by up to ``|G|`` where
``G`` is the usable symmetry group.

``G`` must respect everything the exploration setup distinguishes:

* the initial configuration (a permutation must map ``conf0``'s member
  set to itself), and
* the restricted caller set, when one is used (``callers=[1, 2]`` means
  only permutations fixing ``{1, 2}`` setwise are sound).

Canonicalization picks the lexicographically least serialization over
the group -- the standard "canonical representative" construction.
Only set-based configurations (frozensets of node ids) are supported;
richer config types would need a scheme-specific renaming hook.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..core.cache import Cache, NodeId, is_ccache, is_ecache, is_mcache
from ..core.state import AdoreState


def symmetry_group(
    universe: Iterable[NodeId],
    fixed_sets: Sequence[FrozenSet[NodeId]] = (),
) -> List[Dict[NodeId, NodeId]]:
    """All permutations of ``universe`` fixing each of ``fixed_sets``
    setwise, as mapping dicts (identity included)."""
    nodes = sorted(frozenset(universe))
    groups: List[Dict[NodeId, NodeId]] = []
    constraints = [frozenset(s) for s in fixed_sets]
    for perm in itertools.permutations(nodes):
        mapping = dict(zip(nodes, perm))
        if all(
            frozenset(mapping[n] for n in constraint) == constraint
            for constraint in constraints
        ):
            groups.append(mapping)
    return groups


def _map_conf(conf, mapping: Dict[NodeId, NodeId]):
    if conf is None:
        return None
    try:
        return tuple(sorted(mapping.get(n, n) for n in conf))
    except TypeError:
        raise TypeError(
            f"symmetry reduction supports set-based configs only, got "
            f"{conf!r}"
        ) from None


def _serialize_cache(cache: Cache, mapping: Dict[NodeId, NodeId]) -> Tuple:
    kind = cache.kind
    base = (
        kind,
        mapping.get(cache.caller, cache.caller),
        cache.time,
        cache.vrsn,
        _map_conf(cache.conf, mapping),
    )
    if is_ecache(cache) or is_ccache(cache):
        return base + (
            tuple(sorted(mapping.get(v, v) for v in cache.voters)),
        )
    if is_mcache(cache):
        return base + (cache.method,)
    return base


def serialize_state(state: AdoreState, mapping: Dict[NodeId, NodeId]) -> Tuple:
    """A total, renaming-aware serialization of an Adore state.

    Cids are position-stable under our deterministic exploration
    (caches are appended in operation order), so serializing in cid
    order with renamed node ids is a faithful isomorphism certificate.
    """
    tree_part = tuple(
        (cid, state.tree.parent(cid), _serialize_cache(cache, mapping))
        for cid, cache in state.tree.items()
    )
    times_part = tuple(
        sorted(
            (mapping.get(nid, nid), t) for nid, t in state.times.items()
        )
    )
    return (tree_part, times_part)


def canonical_key(
    state: AdoreState, group: Sequence[Dict[NodeId, NodeId]]
) -> Tuple:
    """The least serialization of ``state`` over the symmetry group."""
    return min(serialize_state(state, mapping) for mapping in group)
