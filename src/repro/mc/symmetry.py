"""Symmetry reduction for the explicit-state model checker.

Adore's semantics is equivariant under renaming of node ids: permuting
the replicas of a reachable state yields a reachable state with an
isomorphic future.  The checker can therefore identify states up to
node permutation, which divides the state space by up to ``|G|`` where
``G`` is the usable symmetry group.

``G`` must respect everything the exploration setup distinguishes:

* the initial configuration (a permutation must map ``conf0``'s member
  set to itself), and
* the restricted caller set, when one is used (``callers=[1, 2]`` means
  only permutations fixing ``{1, 2}`` setwise are sound).

Canonicalization picks the lexicographically least serialization over
the group -- the standard "canonical representative" construction.
Only set-based configurations (frozensets of node ids) are supported;
richer config types would need a scheme-specific renaming hook.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..core.cache import Cache, NodeId, is_ccache, is_ecache, is_mcache
from ..core.state import AdoreState


def symmetry_group(
    universe: Iterable[NodeId],
    fixed_sets: Sequence[FrozenSet[NodeId]] = (),
) -> List[Dict[NodeId, NodeId]]:
    """All permutations of ``universe`` fixing each of ``fixed_sets``
    setwise, as mapping dicts (identity included)."""
    nodes = sorted(frozenset(universe))
    groups: List[Dict[NodeId, NodeId]] = []
    constraints = [frozenset(s) for s in fixed_sets]
    for perm in itertools.permutations(nodes):
        mapping = dict(zip(nodes, perm))
        if all(
            frozenset(mapping[n] for n in constraint) == constraint
            for constraint in constraints
        ):
            groups.append(mapping)
    return groups


def _map_conf(conf, mapping: Dict[NodeId, NodeId]):
    if conf is None:
        return None
    try:
        return tuple(sorted(mapping.get(n, n) for n in conf))
    except TypeError:
        raise TypeError(
            f"symmetry reduction supports set-based configs only, got "
            f"{conf!r}"
        ) from None


def _serialize_cache(cache: Cache, mapping: Dict[NodeId, NodeId]) -> Tuple:
    kind = cache.kind
    base = (
        kind,
        mapping.get(cache.caller, cache.caller),
        cache.time,
        cache.vrsn,
        _map_conf(cache.conf, mapping),
    )
    if is_ecache(cache) or is_ccache(cache):
        return base + (
            tuple(sorted(mapping.get(v, v) for v in cache.voters)),
        )
    if is_mcache(cache):
        return base + (cache.method,)
    return base


def serialize_state(state: AdoreState, mapping: Dict[NodeId, NodeId]) -> Tuple:
    """A total, renaming-aware serialization of an Adore state.

    Cids are position-stable under our deterministic exploration
    (caches are appended in operation order), so serializing in cid
    order with renamed node ids is a faithful isomorphism certificate.
    """
    tree_part = tuple(
        (cid, state.tree.parent(cid), _serialize_cache(cache, mapping))
        for cid, cache in state.tree.items()
    )
    times_part = tuple(
        sorted(
            (mapping.get(nid, nid), t) for nid, t in state.times.items()
        )
    )
    return (tree_part, times_part)


def canonical_key(
    state: AdoreState, group: Sequence[Dict[NodeId, NodeId]]
) -> Tuple:
    """The least serialization of ``state`` over the symmetry group."""
    return min(serialize_state(state, mapping) for mapping in group)


def apply_renaming(state: AdoreState, mapping: Dict[NodeId, NodeId]) -> AdoreState:
    """The state obtained by renaming every node id through ``mapping``.

    Used by tests to check that canonicalization is constant on orbits;
    the exploration itself never materializes renamed states.
    """
    from dataclasses import replace

    from ..core.state import TimeMap
    from ..core.tree import CacheTree, TreeEntry

    def m(n):
        return mapping.get(n, n)

    entries = {}
    for cid, cache in state.tree.items():
        fields: Dict[str, object] = {"caller": m(cache.caller)}
        if cache.conf is not None:
            try:
                fields["conf"] = frozenset(m(n) for n in cache.conf)
            except TypeError:
                raise TypeError(
                    f"symmetry reduction supports set-based configs only, "
                    f"got {cache.conf!r}"
                ) from None
        if is_ecache(cache) or is_ccache(cache):
            fields["voters"] = frozenset(m(v) for v in cache.voters)
        entries[cid] = TreeEntry(
            parent=state.tree.parent(cid), cache=replace(cache, **fields)
        )
    tree = CacheTree(entries)
    times = TimeMap({m(n): t for n, t in state.times.items()})
    return AdoreState(tree=tree, times=times)


class SymmetryReducer:
    """Orbit-signature canonicalization: same equivalence classes as
    :func:`canonical_key`, without sweeping the whole group per state.

    ``canonical_key`` serializes a state once per group element --
    ``|G|`` can be ``k!`` for ``k`` interchangeable replicas, and that
    cost is paid for *every* generated state.  This reducer instead:

    1. Partitions the universe into **atoms**: nodes with the same
       membership vector across the ``fixed_sets`` constraints.  The
       usable group is exactly the product of the symmetric groups on
       the atoms, so any relabeling that permutes within atoms is sound.
    2. Computes a per-node **signature** from the state: the node's
       local time plus its role (caller / voter / config member) in each
       cache, in cid order.  Signatures are *equivariant*: renaming the
       state by ``pi`` maps the signature of ``n`` to that of ``pi(n)``
       unchanged, because cids and roles are structural.
    3. Sorts each atom's nodes by signature and relabels them onto the
       atom's id slots in that order.  When all signatures in an atom
       are distinct this pins a **unique** group element -- no sweep.
    4. Only on signature **ties** does it enumerate permutations, and
       then only of the tied nodes (the product of tie-class symmetric
       groups, not all of ``G``), taking the least serialization.

    Soundness: the candidate set ``R(s)`` (signature-sorted relabelings)
    satisfies ``R(pi . s) = R(s) . pi^-1`` by equivariance, so
    ``min(serialize(s, m) for m in R(s))`` is constant on orbits; and it
    is the serialization of *some* orbit member, so distinct orbits get
    distinct keys.  The induced partition is therefore identical to the
    full-sweep partition -- only the representative differs.

    ``sweep_invocations`` counts how many canonicalizations hit the tie
    path; tests assert it stays 0 on signature-distinct states.
    """

    def __init__(
        self,
        universe: Iterable[NodeId],
        fixed_sets: Sequence[FrozenSet[NodeId]] = (),
    ) -> None:
        self.universe: Tuple[NodeId, ...] = tuple(sorted(frozenset(universe)))
        self.fixed_sets: Tuple[FrozenSet[NodeId], ...] = tuple(
            frozenset(s) for s in fixed_sets
        )
        by_vector: Dict[Tuple[bool, ...], List[NodeId]] = {}
        for n in self.universe:
            vec = tuple(n in s for s in self.fixed_sets)
            by_vector.setdefault(vec, []).append(n)
        #: Atom member lists, each sorted; atoms ordered by first member.
        self.atoms: Tuple[Tuple[NodeId, ...], ...] = tuple(
            sorted((tuple(v) for v in by_vector.values()), key=lambda a: a[0])
        )
        #: Number of canonicalizations that needed a permutation sweep.
        self.sweep_invocations = 0

    def group_size(self) -> int:
        size = 1
        for atom in self.atoms:
            for k in range(2, len(atom) + 1):
                size *= k
        return size

    def _signatures(self, state: AdoreState) -> Dict[NodeId, Tuple]:
        sig: Dict[NodeId, List] = {n: [] for n in self.universe}
        for cid, cache in state.tree.items():
            caller = cache.caller
            if caller in sig:
                sig[caller].append((cid, 0))
            if is_ecache(cache) or is_ccache(cache):
                for v in cache.voters:
                    if v in sig:
                        sig[v].append((cid, 1))
            conf = cache.conf
            if conf is not None:
                try:
                    members = iter(conf)
                except TypeError:
                    raise TypeError(
                        f"symmetry reduction supports set-based configs "
                        f"only, got {conf!r}"
                    ) from None
                for n in members:
                    if n in sig:
                        sig[n].append((cid, 2))
        times_get = state.times.get
        return {n: (times_get(n, 0), tuple(events)) for n, events in sig.items()}

    def _candidate_mappings(
        self, state: AdoreState
    ) -> List[Dict[NodeId, NodeId]]:
        sig = self._signatures(state)
        base: Dict[NodeId, NodeId] = {}
        tie_classes: List[Tuple[List[NodeId], Tuple[NodeId, ...]]] = []
        for atom in self.atoms:
            ranked = sorted(atom, key=lambda n: sig[n])
            i = 0
            while i < len(ranked):
                j = i + 1
                while j < len(ranked) and sig[ranked[j]] == sig[ranked[i]]:
                    j += 1
                slots = atom[i:j]
                if j - i == 1:
                    base[ranked[i]] = slots[0]
                else:
                    tie_classes.append((ranked[i:j], slots))
                i = j
        if not tie_classes:
            return [base]
        self.sweep_invocations += 1
        mappings: List[Dict[NodeId, NodeId]] = []
        per_class = [
            list(itertools.permutations(nodes)) for nodes, _ in tie_classes
        ]
        for choice in itertools.product(*per_class):
            mapping = dict(base)
            for (nodes, slots), ordering in zip(tie_classes, choice):
                mapping.update(zip(ordering, slots))
            mappings.append(mapping)
        return mappings

    def canonical_serialization(self, state: AdoreState) -> Tuple:
        """The canonical-representative serialization of ``state``'s
        orbit (equal for two states iff :func:`canonical_key` is)."""
        candidates = self._candidate_mappings(state)
        if len(candidates) == 1:
            return serialize_state(state, candidates[0])
        return min(serialize_state(state, m) for m in candidates)

    def canonical_fingerprint(self, state: AdoreState) -> int:
        """128-bit fingerprint of the canonical serialization."""
        from ..core.fingerprint import canonical_encode, fp128

        return fp128(canonical_encode(self.canonical_serialization(state)))
