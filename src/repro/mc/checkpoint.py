"""Durable checkpoints for interruptible model-checking runs.

A checkpoint captures everything the level-synchronized BFS engine
(:mod:`repro.mc.parallel`) needs to continue exactly where it stopped:
the current frontier (states with their remaining budgets and traces),
the visited-key set, the aggregate counters, and a fingerprint of the
exploration configuration so a resume against a *different* model is
detected instead of silently merging incompatible state spaces.

The on-disk format is a pickled :class:`Checkpoint` written atomically
(temp file + ``os.replace``), so a run killed mid-write never corrupts
an existing checkpoint.  Checkpoints are an internal engine format --
they are only guaranteed to resume under the same code version that
wrote them, which is all a CI time-slice needs.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

#: Bumped whenever the pickled layout changes; a loader seeing a
#: different version discards the checkpoint rather than guessing.
#:
#: Version history:
#:
#: 1. Pickled full state objects in ``visited_keys`` -- by far the
#:    largest part of a checkpoint.
#: 2. Fingerprint-mode runs store the visited set as packed sorted
#:    128-bit fingerprints in ``visited_fps`` (16 bytes per state,
#:    canonical byte form of :class:`repro.mc.fpset.FingerprintSet`);
#:    ``visited_keys`` stays for legacy exact-equality runs.
CHECKPOINT_VERSION = 2


@dataclass
class Checkpoint:
    """A resumable snapshot of one bounded exploration."""

    #: :meth:`repro.mc.explorer.Explorer.config_fingerprint` of the run.
    fingerprint: str
    #: BFS level the frontier sits at (== depth of every frontier trace).
    level: int
    #: ``(state, remaining_budget, trace)`` triples, in deterministic
    #: frontier order.
    frontier: List[Tuple[Any, Any, Tuple]]
    #: Dedup keys of every visited state.
    visited_keys: Set[Any]
    transitions: int
    max_depth: int
    exhausted: bool
    #: Violations found so far (normally empty: with
    #: ``stop_at_first_violation`` the run finalizes instead of
    #: checkpointing).
    violations: List[Any] = field(default_factory=list)
    #: Wall-clock seconds already spent across previous slices.
    elapsed_seconds: float = 0.0
    version: int = CHECKPOINT_VERSION
    #: Fingerprint-mode visited set: sorted 16-byte little-endian
    #: records (:meth:`repro.mc.fpset.FingerprintSet.to_bytes`).
    #: ``None`` for legacy exact-equality runs, which keep using
    #: ``visited_keys``.
    visited_fps: Optional[bytes] = None

    @property
    def states_visited(self) -> int:
        if self.visited_fps is not None:
            return len(self.visited_fps) // 16
        return len(self.visited_keys)

    def restore_visited(self):
        """The live visited-set this checkpoint describes: a
        :class:`repro.mc.fpset.FingerprintSet` for fingerprint-mode
        checkpoints, a plain ``set`` otherwise."""
        if self.visited_fps is not None:
            from .fpset import FingerprintSet

            return FingerprintSet.from_packed(self.visited_fps)
        return set(self.visited_keys)


def save_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Atomically persist ``checkpoint`` to ``path``.

    The temp file lives in the destination directory so ``os.replace``
    stays a same-filesystem atomic rename.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: str, fingerprint: Optional[str] = None
) -> Optional[Checkpoint]:
    """Load the checkpoint at ``path``, or ``None`` when unusable.

    Unusable means: missing file, unreadable/truncated pickle, a layout
    version mismatch, or -- when ``fingerprint`` is given -- a
    checkpoint written by a differently configured exploration.  Each
    non-missing rejection warns, because the caller is about to redo
    work the checkpoint was supposed to save.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except (
        OSError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        # Corrupt pickle streams surface more than UnpicklingError:
        # flipped bytes raise ValueError (bad opcode arguments; its
        # UnicodeDecodeError subclass from mangled strings),
        # OverflowError (absurd lengths), IndexError (a damaged mark
        # stack), or ImportError / ModuleNotFoundError (a damaged
        # GLOBAL opcode naming a module that does not exist).  All mean
        # the same thing here: redo the work the checkpoint was
        # supposed to save.
        ValueError,
        ImportError,
        IndexError,
        OverflowError,
    ) as exc:
        warnings.warn(
            f"ignoring unreadable checkpoint {path!r}: {exc}", stacklevel=2
        )
        return None
    if not isinstance(checkpoint, Checkpoint):
        warnings.warn(
            f"ignoring {path!r}: not a model-checker checkpoint", stacklevel=2
        )
        return None
    if checkpoint.version != CHECKPOINT_VERSION:
        if checkpoint.version == 1:
            # v1 checkpoints predate the compact visited set; their
            # visited_keys pickles full state objects from the old
            # engine and cannot be mapped onto fingerprint-mode dedup.
            warnings.warn(
                f"ignoring checkpoint {path!r}: version 1 checkpoints "
                "(pre-compact-visited-set) cannot be resumed by this "
                f"engine (version {CHECKPOINT_VERSION}); delete it and "
                "re-run from scratch",
                stacklevel=2,
            )
        else:
            warnings.warn(
                f"ignoring checkpoint {path!r}: version "
                f"{checkpoint.version} != {CHECKPOINT_VERSION}",
                stacklevel=2,
            )
        return None
    if fingerprint is not None and checkpoint.fingerprint != fingerprint:
        warnings.warn(
            f"ignoring checkpoint {path!r}: it was written by a "
            "differently configured exploration (fingerprint mismatch); "
            "starting fresh",
            stacklevel=2,
        )
        return None
    return checkpoint
