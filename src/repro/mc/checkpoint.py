"""Durable checkpoints for interruptible model-checking runs.

A checkpoint captures everything the level-synchronized BFS engine
(:mod:`repro.mc.parallel`) needs to continue exactly where it stopped:
the current frontier (states with their remaining budgets and traces),
the visited-key set, the aggregate counters, and a fingerprint of the
exploration configuration so a resume against a *different* model is
detected instead of silently merging incompatible state spaces.

The on-disk format is a pickled :class:`Checkpoint` written atomically
(temp file + ``os.replace``), so a run killed mid-write never corrupts
an existing checkpoint.  Checkpoints are an internal engine format --
they are only guaranteed to resume under the same code version that
wrote them, which is all a CI time-slice needs.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

#: Bumped whenever the pickled layout changes; a loader seeing a
#: different version discards the checkpoint rather than guessing.
#:
#: Version history:
#:
#: 1. Pickled full state objects in ``visited_keys`` -- by far the
#:    largest part of a checkpoint.
#: 2. Fingerprint-mode runs store the visited set as packed sorted
#:    128-bit fingerprints in ``visited_fps`` (16 bytes per state,
#:    canonical byte form of :class:`repro.mc.fpset.FingerprintSet`);
#:    ``visited_keys`` stays for legacy exact-equality runs.
#: 3. Spill-aware: a disk-spilled run references its frontier/visited
#:    snapshots as *sidecar files* (``<checkpoint>.frontier`` in packed
#:    spill-record format, ``<checkpoint>.visited`` as a raw
#:    FingerprintSet table) via ``frontier_ref``/``visited_ref`` --
#:    ``{"file": basename, "sha256": hex, "count": n}`` -- instead of
#:    re-pickling gigabytes into the checkpoint itself.  The sha256 is
#:    verified at load, so a mutated or corrupt sidecar is rejected
#:    like a corrupt checkpoint.  Unspilled runs keep the embedded v2
#:    fields; v2 files still load.
CHECKPOINT_VERSION = 3

#: Versions this loader can resume.  v2 lacks the sidecar fields, whose
#: dataclass defaults (``None``) apply -- exactly the meaning a v2
#: checkpoint had.
_LOADABLE_VERSIONS = (2, 3)


@dataclass
class Checkpoint:
    """A resumable snapshot of one bounded exploration."""

    #: :meth:`repro.mc.explorer.Explorer.config_fingerprint` of the run.
    fingerprint: str
    #: BFS level the frontier sits at (== depth of every frontier trace).
    level: int
    #: ``(state, remaining_budget, trace)`` triples, in deterministic
    #: frontier order.
    frontier: List[Tuple[Any, Any, Tuple]]
    #: Dedup keys of every visited state.
    visited_keys: Set[Any]
    transitions: int
    max_depth: int
    exhausted: bool
    #: Violations found so far (normally empty: with
    #: ``stop_at_first_violation`` the run finalizes instead of
    #: checkpointing).
    violations: List[Any] = field(default_factory=list)
    #: Wall-clock seconds already spent across previous slices.
    elapsed_seconds: float = 0.0
    version: int = CHECKPOINT_VERSION
    #: Fingerprint-mode visited set: sorted 16-byte little-endian
    #: records (:meth:`repro.mc.fpset.FingerprintSet.to_bytes`).
    #: ``None`` for legacy exact-equality runs, which keep using
    #: ``visited_keys``.
    visited_fps: Optional[bytes] = None
    #: v3 spill-mode sidecar references (see the version history);
    #: ``None`` for unspilled checkpoints.
    frontier_ref: Optional[dict] = None
    visited_ref: Optional[dict] = None

    @property
    def states_visited(self) -> int:
        if self.visited_ref is not None:
            return self.visited_ref["count"]
        if self.visited_fps is not None:
            return len(self.visited_fps) // 16
        return len(self.visited_keys)

    @property
    def frontier_len(self) -> int:
        if self.frontier_ref is not None:
            return self.frontier_ref["count"]
        return len(self.frontier)

    def restore_frontier(self, checkpoint_path: Optional[str] = None):
        """Iterate the frontier entries, embedded or from the sidecar."""
        if self.frontier_ref is None:
            return iter(self.frontier)
        from .spill import iter_packed_records

        return iter_packed_records(sidecar_path(checkpoint_path, self.frontier_ref))

    def restore_visited(
        self,
        checkpoint_path: Optional[str] = None,
        spill_to: Optional[str] = None,
    ):
        """The live visited-set this checkpoint describes.

        A :class:`repro.mc.fpset.FingerprintSet` for fingerprint-mode
        checkpoints, a plain ``set`` otherwise.  For a v3 sidecar
        checkpoint, ``spill_to`` names the working spill file to copy
        the snapshot into (the snapshot itself stays untouched, so a
        second resume from the same checkpoint still verifies); without
        it the snapshot is loaded into RAM.
        """
        if self.visited_ref is not None:
            from .fpset import FingerprintSet

            src = sidecar_path(checkpoint_path, self.visited_ref)
            if spill_to is not None:
                import shutil

                os.makedirs(os.path.dirname(os.path.abspath(spill_to)), exist_ok=True)
                shutil.copyfile(src, spill_to)
                return FingerprintSet.spilled(spill_to, clear=False)
            with open(src, "rb") as handle:
                snapshot = FingerprintSet.attach(bytearray(handle.read()))
            live = FingerprintSet(capacity=max(64, snapshot.capacity))
            for fp in snapshot:
                live.add(fp)
            snapshot.release()
            return live
        if self.visited_fps is not None:
            from .fpset import FingerprintSet

            return FingerprintSet.from_packed(self.visited_fps)
        return set(self.visited_keys)


def sidecar_path(checkpoint_path: Optional[str], ref: dict) -> str:
    """Resolve a sidecar reference next to its checkpoint file."""
    if checkpoint_path is None:
        raise ValueError("sidecar checkpoint needs the checkpoint path to resolve files")
    directory = os.path.dirname(os.path.abspath(checkpoint_path))
    return os.path.join(directory, ref["file"])


def save_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Atomically persist ``checkpoint`` to ``path``.

    The temp file lives in the destination directory so ``os.replace``
    stays a same-filesystem atomic rename.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: str, fingerprint: Optional[str] = None
) -> Optional[Checkpoint]:
    """Load the checkpoint at ``path``, or ``None`` when unusable.

    Unusable means: missing file, unreadable/truncated pickle, a layout
    version mismatch, or -- when ``fingerprint`` is given -- a
    checkpoint written by a differently configured exploration.  Each
    non-missing rejection warns, because the caller is about to redo
    work the checkpoint was supposed to save.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except (
        OSError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        # Corrupt pickle streams surface more than UnpicklingError:
        # flipped bytes raise ValueError (bad opcode arguments; its
        # UnicodeDecodeError subclass from mangled strings),
        # OverflowError (absurd lengths), IndexError (a damaged mark
        # stack), or ImportError / ModuleNotFoundError (a damaged
        # GLOBAL opcode naming a module that does not exist).  All mean
        # the same thing here: redo the work the checkpoint was
        # supposed to save.
        ValueError,
        ImportError,
        IndexError,
        OverflowError,
    ) as exc:
        warnings.warn(
            f"ignoring unreadable checkpoint {path!r}: {exc}", stacklevel=2
        )
        return None
    if not isinstance(checkpoint, Checkpoint):
        warnings.warn(
            f"ignoring {path!r}: not a model-checker checkpoint", stacklevel=2
        )
        return None
    if checkpoint.version not in _LOADABLE_VERSIONS:
        if checkpoint.version == 1:
            # v1 checkpoints predate the compact visited set; their
            # visited_keys pickles full state objects from the old
            # engine and cannot be mapped onto fingerprint-mode dedup.
            warnings.warn(
                f"ignoring checkpoint {path!r}: version 1 checkpoints "
                "(pre-compact-visited-set) cannot be resumed by this "
                f"engine (version {CHECKPOINT_VERSION}); delete it and "
                "re-run from scratch",
                stacklevel=2,
            )
        else:
            warnings.warn(
                f"ignoring checkpoint {path!r}: version "
                f"{checkpoint.version} != {CHECKPOINT_VERSION}",
                stacklevel=2,
            )
        return None
    if fingerprint is not None and checkpoint.fingerprint != fingerprint:
        warnings.warn(
            f"ignoring checkpoint {path!r}: it was written by a "
            "differently configured exploration (fingerprint mismatch); "
            "starting fresh",
            stacklevel=2,
        )
        return None
    # v3 sidecars: the checkpoint is only as good as the spill files it
    # references -- verify each by content fingerprint before trusting
    # it, exactly like a corrupt pickle.
    for label, ref in (
        ("frontier", checkpoint.frontier_ref),
        ("visited", checkpoint.visited_ref),
    ):
        if ref is None:
            continue
        from .spill import file_sha256

        try:
            side = sidecar_path(path, ref)
            actual = file_sha256(side)
        except (OSError, KeyError, ValueError) as exc:
            warnings.warn(
                f"ignoring checkpoint {path!r}: its {label} spill file "
                f"is missing or unreadable ({exc}); starting fresh",
                stacklevel=2,
            )
            return None
        if actual != ref.get("sha256"):
            warnings.warn(
                f"ignoring checkpoint {path!r}: its {label} spill file "
                f"{ref.get('file')!r} does not match the recorded content "
                "fingerprint (corrupt or overwritten); starting fresh",
                stacklevel=2,
            )
            return None
    return checkpoint
