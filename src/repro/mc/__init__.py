"""Explicit-state bounded model checking of Adore (the proof substitute).

:class:`Explorer` exhaustively enumerates reachable states within a
bounded schedule class and checks replicated state safety plus every
Appendix-B invariant at each state; :mod:`repro.mc.ablations` re-runs it
with each design rule (R2, R3, OVERLAP, ``insertBtw``) disabled and
exhibits concrete counterexample schedules.
"""

from .ablations import (
    FIG4_BUDGET,
    FIG4_NODES,
    ablate_insert_btw,
    ablate_overlap,
    ablate_r2,
    ablate_r3,
    verify_intact,
)
from .symmetry import canonical_key, symmetry_group
from .explorer import (
    ExplorationResult,
    Explorer,
    OpBudget,
    Violation,
    jump_reconfig_candidates,
    set_reconfig_candidates,
)

__all__ = [
    "FIG4_BUDGET",
    "FIG4_NODES",
    "ExplorationResult",
    "Explorer",
    "OpBudget",
    "Violation",
    "ablate_insert_btw",
    "ablate_overlap",
    "ablate_r2",
    "ablate_r3",
    "canonical_key",
    "symmetry_group",
    "jump_reconfig_candidates",
    "set_reconfig_candidates",
    "verify_intact",
]
