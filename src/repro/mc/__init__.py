"""Explicit-state bounded model checking of Adore (the proof substitute).

:class:`Explorer` exhaustively enumerates reachable states within a
bounded schedule class and checks replicated state safety plus every
Appendix-B invariant at each state; :mod:`repro.mc.ablations` re-runs it
with each design rule (R2, R3, OVERLAP, ``insertBtw``) disabled and
exhibits concrete counterexample schedules.

:class:`ParallelExplorer` (and the :func:`explore` dispatcher) run the
same semantics across a ``multiprocessing`` worker pool with periodic
checkpoints, so large schedule classes can be certified on all cores
and interrupted runs resume instead of restarting.
"""

from .ablations import (
    FIG4_BUDGET,
    FIG4_NODES,
    ablate_insert_btw,
    ablate_overlap,
    ablate_r2,
    ablate_r3,
    insert_btw_explorer,
    overlap_explorer,
    r2_explorer,
    r3_explorer,
    verify_intact,
    verify_intact_explorer,
)
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .differential import (
    ABLATIONS,
    DEFAULT_BUDGETS,
    SMOKE_BUDGETS,
    DifferentialReport,
    OverlapAblation,
    RunRecord,
    SchemeScenario,
    default_scenarios,
    explorer_for,
    run_differential,
)
from .fpset import FingerprintSet
from .explorer import (
    ExplorationResult,
    Explorer,
    OpBudget,
    Violation,
    jump_reconfig_candidates,
    set_reconfig_candidates,
)
from .parallel import (
    EngineStats,
    ParallelExplorer,
    ProgressSnapshot,
    explore,
    merge_results,
    print_progress,
)
from .spill import (
    SpillDeque,
    SpilledMinHeap,
    iter_packed_records,
    write_packed_records,
)
from .symmetry import (
    SymmetryReducer,
    apply_renaming,
    canonical_key,
    symmetry_group,
)

__all__ = [
    "ABLATIONS",
    "DEFAULT_BUDGETS",
    "FIG4_BUDGET",
    "FIG4_NODES",
    "SMOKE_BUDGETS",
    "Checkpoint",
    "DifferentialReport",
    "EngineStats",
    "ExplorationResult",
    "Explorer",
    "FingerprintSet",
    "OpBudget",
    "OverlapAblation",
    "ParallelExplorer",
    "ProgressSnapshot",
    "RunRecord",
    "SchemeScenario",
    "SpillDeque",
    "SpilledMinHeap",
    "SymmetryReducer",
    "Violation",
    "ablate_insert_btw",
    "ablate_overlap",
    "ablate_r2",
    "ablate_r3",
    "apply_renaming",
    "canonical_key",
    "default_scenarios",
    "explore",
    "explorer_for",
    "insert_btw_explorer",
    "iter_packed_records",
    "jump_reconfig_candidates",
    "load_checkpoint",
    "merge_results",
    "overlap_explorer",
    "print_progress",
    "r2_explorer",
    "r3_explorer",
    "run_differential",
    "save_checkpoint",
    "set_reconfig_candidates",
    "symmetry_group",
    "verify_intact",
    "verify_intact_explorer",
    "write_packed_records",
]
