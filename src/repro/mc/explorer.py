"""Explicit-state bounded model checking of the Adore semantics.

This is the reproduction's substitute for the paper's Coq proof: instead
of proving Theorem 4.5 deductively, we *exhaustively enumerate* every
state reachable through valid oracle outcomes within a bounded schedule
class, and check replicated state safety plus every Appendix-B invariant
at each state.  Because method payloads are irrelevant to safety the
explorer canonicalizes them to a single symbol, and states are
de-duplicated by value, so commuting interleavings collapse.

Schedules are bounded by an :class:`OpBudget` (how many of each
operation a run may contain) and optional depth/state caps.  Within a
budget the exploration is exhaustive: a clean result means *no*
reachable state of that shape violates safety.  With the R2/R3 switches
ablated the same explorer automatically finds the minimal
counterexample schedules (e.g. the Fig. 4 violation).
"""

from __future__ import annotations

import hashlib
import os
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.aux import active_cache, r2_holds, r3_holds
from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme
from ..core.oracle import (
    enumerate_pull_outcomes,
    enumerate_push_outcomes,
)
from ..core.safety import (
    SafetyReport,
    check_state,
    validate_invariant_labels,
)
from ..core.semantics import apply_invoke, apply_pull, apply_push, apply_reconfig
from ..core.state import AdoreState, initial_state

#: A single schedule step, for counterexample traces:
#: ``(op, nid, detail)`` such as ``("pull", 1, "Q={1,2}, t=1")``.
OpDesc = Tuple[str, NodeId, str]

ReconfigCandidates = Callable[[AdoreState, NodeId, Config], Iterable[Config]]


@dataclass(frozen=True)
class OpBudget:
    """How many operations of each kind one schedule may contain.

    The Fig. 4 counterexample needs ``OpBudget(pulls=3, invokes=1,
    reconfigs=2, pushes=2)``; the default is slightly larger so clean
    verification covers a strict superset of that schedule class.
    """

    pulls: int = 3
    invokes: int = 2
    reconfigs: int = 2
    pushes: int = 2

    def spend(self, op: str) -> Optional["OpBudget"]:
        """The remaining budget after one ``op``; ``None`` if exhausted.

        Memoized per ``(budget, op)``: the explorer spends once per
        transition, but only ~(pulls+1)(invokes+1)(reconfigs+1)(pushes+1)
        distinct budgets ever exist in a run.
        """
        key = (self, op)
        hit = _SPEND_MEMO.get(key)
        if hit is not None:
            return hit[0]
        field_name = op + ("es" if op == "push" else "s")
        remaining = getattr(self, field_name)
        if remaining <= 0:
            result = None
        else:
            result = OpBudget(**{
                "pulls": self.pulls,
                "invokes": self.invokes,
                "reconfigs": self.reconfigs,
                "pushes": self.pushes,
                field_name: remaining - 1,
            })
        _SPEND_MEMO[key] = (result,)
        return result

    def total(self) -> int:
        return self.pulls + self.invokes + self.reconfigs + self.pushes


#: Process-wide ``(budget, op) -> (spent budget or None,)`` memo; the
#: 1-tuple wrapper distinguishes a memoized None from a miss.
_SPEND_MEMO: dict = {}


@dataclass
class Violation:
    """A reachable state breaking an invariant, with its schedule."""

    state: AdoreState
    trace: Tuple[OpDesc, ...]
    report: SafetyReport

    def describe(self) -> str:
        lines = ["schedule:"]
        lines.extend(
            f"  {i + 1}. {op}({nid}) {detail}"
            for i, (op, nid, detail) in enumerate(self.trace)
        )
        lines.append("violations:")
        lines.extend(f"  {v}" for v in self.report.all_violations())
        lines.append("tree:")
        lines.append(self.state.tree.render())
        return "\n".join(lines)


@dataclass
class ExplorationResult:
    """The outcome of one bounded exploration."""

    states_visited: int
    transitions: int
    max_depth: int
    exhausted: bool
    violations: List[Violation]
    elapsed_seconds: float
    budget: OpBudget
    #: True when the run stopped at a time-slice / level limit and left
    #: a checkpoint behind; resume by re-running with the same
    #: ``checkpoint=`` path (see :mod:`repro.mc.parallel`).
    interrupted: bool = False
    #: Engine throughput counters (:class:`repro.mc.parallel.EngineStats`)
    #: when the run came from the parallel engine; ``None`` otherwise.
    stats: Optional[object] = None

    @property
    def safe(self) -> bool:
        """True when no reachable state violated any checked invariant."""
        return not self.violations

    @property
    def states_per_second(self) -> float:
        """Visit throughput (0.0 for instantaneous runs)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.states_visited / self.elapsed_seconds

    def summary(self) -> str:
        status = "SAFE" if self.safe else f"{len(self.violations)} VIOLATION(S)"
        if self.exhausted:
            coverage = "exhaustive"
        elif self.interrupted:
            coverage = "interrupted (resumable)"
        else:
            coverage = "truncated"
        return (
            f"{status}: {self.states_visited} states, {self.transitions} "
            f"transitions, depth <= {self.max_depth}, {coverage}, "
            f"{self.elapsed_seconds:.2f}s"
        )


def set_reconfig_candidates(universe: Iterable[NodeId]) -> ReconfigCandidates:
    """Single-node add/remove moves over a fixed node universe.

    Suitable for set-based configurations (Raft single-node and the
    unsafe multi-node ablation, which additionally needs
    :func:`jump_reconfig_candidates`).
    """
    universe_set = frozenset(universe)

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        conf_set = frozenset(conf)
        for node in sorted(universe_set - conf_set):
            yield conf_set | {node}
        if len(conf_set) > 1:
            for node in sorted(conf_set):
                yield conf_set - {node}

    return candidates


def jump_reconfig_candidates(universe: Iterable[NodeId]) -> ReconfigCandidates:
    """Arbitrary non-empty subsets of the universe (for the OVERLAP
    ablation, where R1⁺ permits multi-node jumps)."""
    import itertools

    universe_sorted = tuple(sorted(frozenset(universe)))

    def candidates(state: AdoreState, nid: NodeId, conf: Config) -> Iterator[Config]:
        for size in range(1, len(universe_sorted) + 1):
            for combo in itertools.combinations(universe_sorted, size):
                candidate = frozenset(combo)
                if candidate != frozenset(conf):
                    yield candidate

    return candidates


class Explorer:
    """Bounded exhaustive exploration of reachable Adore states."""

    def __init__(
        self,
        scheme: ReconfigScheme,
        conf0: Config,
        callers: Optional[Sequence[NodeId]] = None,
        budget: Optional[OpBudget] = None,
        reconfig_candidates: Optional[ReconfigCandidates] = None,
        quorum_pulls_only: bool = False,
        quorum_pushes_only: bool = True,
        enforce_r2: bool = True,
        enforce_r3: bool = True,
        max_states: int = 500_000,
        lemma_rdist_bound: Optional[int] = 1,
        stop_at_first_violation: bool = True,
        invariants: Optional[Sequence[str]] = None,
        minimal_quorums_only: bool = False,
        strategy: str = "bfs",
        push_step: Optional[Callable] = None,
        symmetry: bool = False,
        fingerprints: bool = True,
        spill_dir: Optional[str] = None,
        spill_window: int = 4096,
    ) -> None:
        self.scheme = scheme
        self.conf0 = conf0
        self.callers: Tuple[NodeId, ...] = tuple(
            sorted(callers if callers is not None else scheme.members(conf0))
        )
        self.budget = budget or OpBudget()
        self.reconfig_candidates = reconfig_candidates or set_reconfig_candidates(
            scheme.members(conf0)
        )
        self.quorum_pulls_only = quorum_pulls_only
        self.quorum_pushes_only = quorum_pushes_only
        self.enforce_r2 = enforce_r2
        self.enforce_r3 = enforce_r3
        self.max_states = max_states
        self.lemma_rdist_bound = lemma_rdist_bound
        self.stop_at_first_violation = stop_at_first_violation
        #: Restrict which invariants count as violations (labels from
        #: ``SafetyReport.LABELS``); ``None`` checks all of them.
        #: Validated here so a bad label fails in the constructing
        #: process, not inside a pool worker.
        self.invariants = (
            validate_invariant_labels(invariants)
            if invariants is not None
            else None
        )
        #: Counterexample-search heuristic: only consider supporter sets
        #: that are *minimal* quorums.  Larger quorums add observers and
        #: only make divergence harder, so for violation hunting this
        #: loses nothing while cutting the branching factor sharply.
        #: For positive (exhaustive) verification leave it off.
        self.minimal_quorums_only = minimal_quorums_only
        if strategy not in ("bfs", "guided"):
            raise ValueError(f"unknown strategy {strategy!r}")
        #: "bfs" explores breadth-first (finds minimal-depth violations,
        #: exhaustive within budget).  "guided" is best-first, expanding
        #: states that already violate auxiliary lemmas before clean
        #: ones -- a Lemma 4.4/B.8 violation is exactly the precursor of
        #: a replicated-state-safety violation, so this homes in on the
        #: Fig. 4 counterexample without flooding the state space.
        self.strategy = strategy
        #: Override for the push transition (used by the insertBtw
        #: ablation, which swaps in a leaf-commit variant).
        self.push_step = push_step or apply_push
        #: Identify states up to node renaming (see repro.mc.symmetry).
        #: Sound for set-based configurations; the group respects the
        #: restricted caller set when one is given.
        self.symmetry = symmetry
        #: Deduplicate by 128-bit structural fingerprint (compact visited
        #: set, incremental hashing) instead of by full state objects.
        #: ``False`` restores the seed engine's exact-equality dedup --
        #: kept as a collision canary: fingerprint mode must visit the
        #: same states (see tests/mc/test_parity.py).
        self.fingerprints = fingerprints
        #: Bounded-memory mode: keep only ``spill_window`` frontier
        #: entries in RAM, streaming overflow to packed-record files
        #: under ``spill_dir``, and back the visited FingerprintSet with
        #: an mmap'd file there.  Pure engine concern: the explored
        #: transition system is identical (exact parity with the
        #: unspilled engine), so it is deliberately NOT part of
        #: :meth:`config_fingerprint` -- a checkpoint taken unspilled
        #: can resume spilled and vice versa.
        self.spill_dir = spill_dir
        if spill_window < 1:
            raise ValueError(f"spill window must be >= 1, got {spill_window}")
        self.spill_window = spill_window
        self._sym_group = None
        self._sym_reducer = None
        if symmetry:
            fixed = [frozenset(self.callers)] if callers is not None else []
            if fingerprints:
                from .symmetry import SymmetryReducer

                self._sym_reducer = SymmetryReducer(
                    scheme.members(conf0), fixed_sets=fixed
                )
            else:
                from .symmetry import symmetry_group

                self._sym_group = symmetry_group(
                    scheme.members(conf0), fixed_sets=fixed
                )

    # ------------------------------------------------------------------
    # The pure step API.  Everything below is side-effect free, so the
    # sequential loop in :meth:`run` and the parallel engine
    # (:mod:`repro.mc.parallel`) share one semantics path.
    # ------------------------------------------------------------------

    def initial(self) -> AdoreState:
        """The initial state of the configured instance."""
        return initial_state(self.conf0, self.scheme)

    def state_key(self, state: AdoreState) -> Hashable:
        """The deduplication key of ``state``.

        In fingerprint mode this is a 128-bit int (the state's
        structural fingerprint, or the fingerprint of its canonical
        symmetry representative); in legacy mode it is the state object
        itself (or its full canonical serialization under symmetry).
        """
        if self.fingerprints:
            if self._sym_reducer is not None:
                return self._sym_reducer.canonical_fingerprint(state)
            return state.fingerprint()
        if self._sym_group is None:
            return state
        from .symmetry import canonical_key

        return canonical_key(state, self._sym_group)

    def new_visited_set(self):
        """An empty visited-set of the kind this configuration needs:
        a :class:`repro.mc.fpset.FingerprintSet` in fingerprint mode
        (mmap-spilled under ``spill_dir`` when one is set), a plain
        ``set`` otherwise (legacy dedup keeps full states, which cannot
        spill)."""
        if self.fingerprints:
            from .fpset import FingerprintSet

            if self.spill_dir is not None:
                os.makedirs(self.spill_dir, exist_ok=True)
                return FingerprintSet.spilled(
                    os.path.join(self.spill_dir, "visited.fps"),
                    expected=self.max_states,
                )
            return FingerprintSet()
        return set()

    def check(self, state: AdoreState) -> SafetyReport:
        """The safety report for ``state`` under this exploration's
        invariant selection and rdist bound."""
        return check_state(state, self.lemma_rdist_bound, only=self.invariants)

    def config_fingerprint(self) -> str:
        """A stable digest of everything that shapes the explored
        transition system.

        Checkpoints record it so a resume against a differently
        configured exploration is detected instead of silently merging
        incompatible state spaces.  Callable hooks contribute their
        qualified names (the best a fingerprint can do for code).
        """
        try:
            conf0 = tuple(sorted(self.conf0))
        except TypeError:
            conf0 = repr(self.conf0)
        parts = (
            type(self.scheme).__name__,
            conf0,
            self.callers,
            (self.budget.pulls, self.budget.invokes,
             self.budget.reconfigs, self.budget.pushes),
            self.quorum_pulls_only,
            self.quorum_pushes_only,
            self.enforce_r2,
            self.enforce_r3,
            self.max_states,
            self.lemma_rdist_bound,
            self.stop_at_first_violation,
            self.invariants,
            self.minimal_quorums_only,
            self.strategy,
            self.symmetry,
            self.fingerprints,
            getattr(self.reconfig_candidates, "__qualname__",
                    type(self.reconfig_candidates).__name__),
            getattr(self.push_step, "__qualname__",
                    type(self.push_step).__name__),
        )
        return hashlib.sha256(repr(parts).encode()).hexdigest()

    def successors(
        self, state: AdoreState, ops: Optional[frozenset] = None
    ) -> Iterator[Tuple[OpDesc, AdoreState]]:
        """Every distinct state one valid operation away from ``state``.

        ``ops`` optionally restricts which operation kinds are
        *generated* (names as in :class:`OpBudget`: "pull", "invoke",
        "reconfig", "push").  Relative order of the remaining successors
        is unchanged, so budget-gated generation is observationally
        identical to generating everything and filtering afterwards --
        without constructing the successor trees the filter would drop,
        which used to be most of them.
        """
        for nid in self.callers:
            if ops is None or "pull" in ops:
                yield from self._pull_successors(state, nid)
            if ops is None or "invoke" in ops:
                yield from self._invoke_successors(state, nid)
            if ops is None or "reconfig" in ops:
                yield from self._reconfig_successors(state, nid)
            if ops is None or "push" in ops:
                yield from self._push_successors(state, nid)

    def expand(
        self, state: AdoreState, budget: OpBudget
    ) -> Iterator[Tuple[OpDesc, AdoreState, OpBudget, Hashable]]:
        """Budget-respecting expansion of one frontier entry.

        Yields ``(op_desc, next_state, remaining_budget, dedup_key)``
        for every successor the budget still allows, in the same
        deterministic order :meth:`successors` produces.  This is the
        unit of work both engines execute; each yielded tuple counts as
        one transition.
        """
        ops = frozenset(
            op
            for op, left in (
                ("pull", budget.pulls),
                ("invoke", budget.invokes),
                ("reconfig", budget.reconfigs),
                ("push", budget.pushes),
            )
            if left > 0
        )
        for op_desc, next_state in self.successors(state, ops):
            next_budget = budget.spend(op_desc[0])
            if next_budget is None:
                continue
            yield op_desc, next_state, next_budget, self.state_key(next_state)

    def _is_minimal_quorum(self, group, conf, nid) -> bool:
        if not self.scheme.is_quorum(group, conf):
            return True  # non-quorum outcomes are already minimal moves
        return not any(
            self.scheme.is_quorum(group - {member}, conf)
            for member in group
            if member != nid
        )

    def _pull_successors(self, state, nid):
        outcomes = enumerate_pull_outcomes(
            state,
            nid,
            self.scheme,
            include_non_quorum=not self.quorum_pulls_only,
        )
        if self.minimal_quorums_only:
            from ..core.aux import most_recent

            outcomes = [
                o
                for o in outcomes
                if self._is_minimal_quorum(
                    o.group,
                    state.tree.cache(most_recent(state.tree, o.group)).conf,
                    nid,
                )
            ]
        for outcome in outcomes:
            new_state, _, reason = apply_pull(state, nid, outcome, self.scheme)
            if new_state != state:
                detail = f"Q={sorted(outcome.group)}, t={outcome.time} [{reason}]"
                yield ("pull", nid, detail), new_state

    def _invoke_successors(self, state, nid):
        # A single canonical method symbol: payloads are irrelevant to
        # safety, and distinct names would only blow up the state space.
        new_state, cid, reason = apply_invoke(state, nid, "m")
        if cid is not None:
            yield ("invoke", nid, "m"), new_state

    def _reconfig_successors(self, state, nid):
        active = active_cache(state.tree, nid)
        if active is None:
            return
        cache = state.tree.cache(active)
        # The leader / R2 / R3 gates of apply_reconfig depend only on
        # (tree, active), not the candidate: when any fails, *every*
        # candidate is a NoOp, so hoist them out of the loop.
        if not state.is_leader(nid, cache.time):
            return
        if self.enforce_r2 and not r2_holds(state.tree, active):
            return
        if self.enforce_r3 and not r3_holds(state.tree, active):
            return
        conf = cache.conf
        seen = set()
        for candidate in self.reconfig_candidates(state, nid, conf):
            if candidate in seen:
                continue
            seen.add(candidate)
            new_state, cid, reason = apply_reconfig(
                state,
                nid,
                candidate,
                self.scheme,
                enforce_r2=self.enforce_r2,
                enforce_r3=self.enforce_r3,
            )
            if cid is not None:
                detail = self.scheme.describe_config(candidate)
                yield ("reconfig", nid, detail), new_state

    def _push_successors(self, state, nid):
        outcomes = enumerate_push_outcomes(
            state,
            nid,
            self.scheme,
            include_non_quorum=not self.quorum_pushes_only,
        )
        if self.minimal_quorums_only:
            outcomes = [
                o
                for o in outcomes
                if self._is_minimal_quorum(
                    o.group, state.tree.cache(o.target).conf, nid
                )
            ]
        for outcome in outcomes:
            new_state, _, reason = self.push_step(state, nid, outcome, self.scheme)
            if new_state != state:
                detail = f"Q={sorted(outcome.group)}, target={outcome.target} [{reason}]"
                yield ("push", nid, detail), new_state

    # ------------------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Explore up to the budget and state cap.

        With ``strategy="bfs"`` this is exhaustive breadth-first search
        (complete within the budget; finds minimal-depth violations).
        ``strategy="guided"`` is best-first: states with more auxiliary
        invariant violations are expanded first, then deeper states --
        effective for hunting deep counterexamples in ablated models.
        """
        import heapq

        start = _time.monotonic()
        init = self.initial()
        visited = self.new_visited_set()
        visited.add(self.state_key(init))
        # One probe per successor instead of two: FingerprintSet.add
        # reports whether the key was new, and for plain sets a length
        # comparison gives the same answer after one C-level insert.
        if isinstance(visited, set):
            def add_if_new(key, _add=visited.add, _visited=visited):
                before = len(_visited)
                _add(key)
                return len(_visited) != before
        else:
            add_if_new = visited.add
        violations: List[Violation] = []
        transitions = 0
        max_depth = 0
        exhausted = True
        guided = self.strategy == "guided"

        # Guided search scores states by how strongly they smell of a
        # nearby safety violation: violations of the precursor lemmas
        # (Lemma 4.4/B.8 RCache forks, election-commit order) weigh
        # most, and *uncommitted* RCaches -- the speculative
        # configuration changes every counterexample is built from --
        # add to the scent.
        scent_labels = ("ccache-in-rcache-fork", "election-commit-order")

        def aux_score(state: AdoreState) -> int:
            full = check_state(state, self.lemma_rdist_bound, only=scent_labels)
            uncommitted_r = sum(
                1
                for cid in state.tree.rcaches()
                if not any(
                    state.tree.cache(d).kind == "C"
                    for d in state.tree.descendants(cid)
                )
            )
            return 3 * len(full.all_violations()) + uncommitted_r

        counter = 0
        spill = self.spill_dir is not None
        if guided:
            if spill:
                from .spill import SpilledMinHeap

                frontier = SpilledMinHeap(
                    os.path.join(self.spill_dir, "frontier.spill"),
                    self.spill_window,
                )
                fpush, fpop = frontier.push, frontier.pop
            else:
                frontier: List = []

                def fpush(item, _heap=frontier):
                    heapq.heappush(_heap, item)

                def fpop(_heap=frontier):
                    return heapq.heappop(_heap)

            fpush((0, 0, 0, counter, init, self.budget, ()))
        else:
            if spill:
                from .spill import SpillDeque

                frontier = SpillDeque(
                    os.path.join(self.spill_dir, "frontier.spill"),
                    self.spill_window,
                )
            else:
                frontier = deque()
            frontier.append((init, self.budget, ()))
            fpop = frontier.popleft

        # The "subnodes" wipe policy evicts trees unreachable from the
        # engine's working set; tell the cache manager what that set is.
        # Only the in-RAM window is pinned -- walking a spilled tail
        # would unpickle (and re-intern!) the very trees a flush is
        # trying to shed.
        from ..core.tree import set_tree_pin_provider

        expanding: List[Optional[AdoreState]] = [None]
        state_index = 4 if guided else 0

        def _pinned_tree_fps():
            if spill:
                entries = frontier._heap if guided else frontier._head
            else:
                entries = frontier
            fps = [entry[state_index].tree.fingerprint() for entry in entries]
            current = expanding[0]
            if current is not None:
                fps.append(current.tree.fingerprint())
            return fps

        previous_provider = set_tree_pin_provider(_pinned_tree_fps)

        report = self.check(init)
        if not report.ok:
            violations.append(Violation(init, (), report))

        try:
            while frontier:
                if guided:
                    *_, state, budget, trace = fpop()
                else:
                    state, budget, trace = fpop()
                expanding[0] = state
                max_depth = max(max_depth, len(trace))
                for op_desc, next_state, next_budget, key in self.expand(
                    state, budget
                ):
                    transitions += 1
                    if len(visited) >= self.max_states:
                        if key not in visited:
                            exhausted = False
                        continue
                    if not add_if_new(key):
                        continue
                    next_trace = trace + (op_desc,)
                    report = self.check(next_state)
                    if not report.ok:
                        violations.append(Violation(next_state, next_trace, report))
                        if self.stop_at_first_violation:
                            return ExplorationResult(
                                states_visited=len(visited),
                                transitions=transitions,
                                max_depth=len(next_trace),
                                exhausted=False,
                                violations=violations,
                                elapsed_seconds=_time.monotonic() - start,
                                budget=self.budget,
                            )
                        continue
                    if guided:
                        counter += 1
                        # Additive combination: scent and depth trade off,
                        # so a deep clean state (the tail of a
                        # counterexample whose reconfigurations already
                        # committed) still outranks shallow smelly ones.
                        priority = (
                            -(2 * aux_score(next_state) + len(next_trace)),
                            0,
                            0,
                        )
                        fpush(
                            (*priority, counter, next_state, next_budget, next_trace),
                        )
                    else:
                        frontier.append((next_state, next_budget, next_trace))
        finally:
            set_tree_pin_provider(previous_provider)
            if spill:
                frontier.close(unlink=True)
                visited_path = getattr(visited, "spill_path", None)
                if visited_path:
                    visited.close()
                    try:
                        os.unlink(visited_path)
                    except OSError:
                        pass

        return ExplorationResult(
            states_visited=len(visited),
            transitions=transitions,
            max_depth=max_depth,
            exhausted=exhausted and self.strategy == "bfs",
            violations=violations,
            elapsed_seconds=_time.monotonic() - start,
            budget=self.budget,
        )
