"""Disk-spilled frontier containers for the bounded model checker.

A deep BFS level (or a wide guided-search heap) can dwarf the visited
set: every frontier entry pins a full ``(state, budget, trace)`` triple.
The containers here keep only a bounded *working window* of entries in
RAM and stream the overflow to an append-only spill file of packed
records, so frontier size is bounded by disk, not RAM:

* :class:`SpillDeque` -- FIFO, for BFS.  Exactly preserves deque order:
  once anything has spilled, appends keep going to disk until the disk
  tail has drained back through the RAM window.
* :class:`SpilledMinHeap` -- for guided search.  Exactly preserves heap
  pop order: overflow sheds the *worst* half of the heap to disk, and a
  pop reloads the spilled records whenever the disk might hold the
  global minimum (tracked via the spilled minimum).

Record format: ``<u32 little-endian length><pickle bytes>``, one record
per entry, appended in order.  The same format serves the checkpoint-v3
frontier snapshot (:meth:`SpillDeque.snapshot_to`), which is referenced
from the checkpoint by content digest instead of being re-pickled into
it.

Entries round-trip through pickle: trees re-intern on load (see
``CacheTree.__reduce__``), so a reloaded entry usually rebinds to the
already-interned tree -- memo scratch included -- and only pays the
re-intern when cache eviction has dropped it.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import pickle
import struct
from collections import deque
from typing import Any, Iterator, List, Optional

__all__ = [
    "SpillDeque",
    "SpilledMinHeap",
    "file_sha256",
    "iter_packed_records",
    "write_packed_records",
]

_LEN = struct.Struct("<I")


def write_packed_records(path: str, records: Iterator[Any]) -> str:
    """Write ``records`` to ``path`` in spill format; return its sha256.

    Written to a temp sibling and atomically renamed, like checkpoints.
    """
    tmp = path + ".tmp"
    digest = hashlib.sha256()
    with open(tmp, "wb") as handle:
        for record in records:
            data = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            chunk = _LEN.pack(len(data)) + data
            handle.write(chunk)
            digest.update(chunk)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return digest.hexdigest()


def file_sha256(path: str) -> str:
    """The sha256 of ``path``'s contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def iter_packed_records(path: str) -> Iterator[Any]:
    """Yield the records of a spill-format file in order."""
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_LEN.size)
            if not header:
                return
            if len(header) != _LEN.size:
                raise ValueError(f"truncated record header in {path}")
            (length,) = _LEN.unpack(header)
            data = handle.read(length)
            if len(data) != length:
                raise ValueError(f"truncated record body in {path}")
            yield pickle.loads(data)


class _SpillFile:
    """An append-only packed-record file with an independent read cursor.

    One buffered handle; reads and appends each seek to their own
    position.  When every appended record has been read the file is
    truncated and both cursors reset, so a frontier that repeatedly
    drains reuses the same disk space.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle = open(path, "w+b")
        self._read_pos = 0
        self._write_pos = 0

    @property
    def path(self) -> str:
        return self._path

    def append(self, record: Any) -> None:
        data = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        handle = self._handle
        handle.seek(self._write_pos)
        handle.write(_LEN.pack(len(data)))
        handle.write(data)
        self._write_pos = handle.tell()

    def read(self) -> Any:
        handle = self._handle
        handle.seek(self._read_pos)
        (length,) = _LEN.unpack(handle.read(_LEN.size))
        record = pickle.loads(handle.read(length))
        self._read_pos = handle.tell()
        return record

    def iter_unread(self) -> Iterator[Any]:
        """Yield every unread record without advancing the read cursor."""
        handle = self._handle
        pos = self._read_pos
        while pos < self._write_pos:
            handle.seek(pos)
            (length,) = _LEN.unpack(handle.read(_LEN.size))
            yield pickle.loads(handle.read(length))
            pos = handle.tell()

    def reset(self) -> None:
        self._handle.seek(0)
        self._handle.truncate()
        self._read_pos = 0
        self._write_pos = 0

    def close(self, *, unlink: bool = True) -> None:
        self._handle.close()
        if unlink:
            try:
                os.unlink(self._path)
            except OSError:
                pass


class SpillDeque:
    """A FIFO of frontier entries with a bounded in-RAM head window.

    Append/popleft-compatible with ``collections.deque`` for the
    explorer's BFS loop.  Order invariant: every RAM entry precedes
    every disk entry, so ``popleft`` order is exactly deque order.
    """

    def __init__(self, path: str, window: int) -> None:
        self._window = max(int(window), 1)
        self._head: deque = deque()
        self._file = _SpillFile(path)
        self._disk_len = 0

    def append(self, item: Any) -> None:
        # Once anything has spilled, later appends must follow it to
        # disk regardless of RAM headroom, or FIFO order would break.
        if self._disk_len or len(self._head) >= self._window:
            self._file.append(item)
            self._disk_len += 1
        else:
            self._head.append(item)

    def popleft(self) -> Any:
        if not self._head:
            self._refill()
        return self._head.popleft()

    def pop_window(self, limit: int) -> List[Any]:
        """Up to ``limit`` entries off the front, in order (may hit disk)."""
        out: List[Any] = []
        while len(out) < limit and self:
            out.append(self.popleft())
        return out

    def _refill(self) -> None:
        if not self._disk_len:
            raise IndexError("pop from an empty SpillDeque")
        take = min(self._disk_len, self._window)
        head = self._head
        for _ in range(take):
            head.append(self._file.read())
        self._disk_len -= take
        if not self._disk_len:
            self._file.reset()

    def __len__(self) -> int:
        return len(self._head) + self._disk_len

    def __bool__(self) -> bool:
        return bool(self._head) or bool(self._disk_len)

    def __iter__(self) -> Iterator[Any]:
        """All pending entries in order, non-destructively."""
        yield from self._head
        yield from self._file.iter_unread()

    @property
    def spilled(self) -> int:
        """How many pending entries currently live on disk."""
        return self._disk_len

    def snapshot_to(self, path: str) -> str:
        """Write all pending entries to ``path``; return the sha256."""
        return write_packed_records(path, iter(self))

    def close(self, *, unlink: bool = True) -> None:
        self._head.clear()
        self._disk_len = 0
        self._file.close(unlink=unlink)


class SpilledMinHeap:
    """A min-heap of comparable entries with a bounded in-RAM window.

    When a push overflows the window, the *largest* half of the heap is
    shed to the spill file and the minimum shed key is remembered; a
    pop reloads the spilled records only when the disk could hold the
    global minimum.  Pop order is therefore exactly ``heapq`` order --
    entries must be totally ordered (the explorer's carry a unique
    tie-break counter ahead of the state).
    """

    def __init__(self, path: str, window: int) -> None:
        self._window = max(int(window), 2)
        self._heap: List[Any] = []
        self._file = _SpillFile(path)
        self._spilled = 0
        self._spill_min: Optional[Any] = None

    def push(self, item: Any) -> None:
        heapq.heappush(self._heap, item)
        if len(self._heap) > self._window:
            self._shed()

    def _shed(self) -> None:
        keep = max(self._window // 2, 1)
        heap = self._heap
        # Popping in order leaves `best` ascending -- itself a valid heap.
        best = [heapq.heappop(heap) for _ in range(keep)]
        spill_min = self._spill_min
        for item in heap:
            self._file.append(item)
            if spill_min is None or item < spill_min:
                spill_min = item
        self._spilled += len(heap)
        self._spill_min = spill_min
        self._heap = best

    def _reload(self) -> None:
        items = [self._file.read() for _ in range(self._spilled)]
        self._spilled = 0
        self._spill_min = None
        self._file.reset()
        heap = self._heap
        heap.extend(items)
        heapq.heapify(heap)

    def pop(self) -> Any:
        heap = self._heap
        if self._spilled and (not heap or self._spill_min < heap[0]):
            self._reload()
        return heapq.heappop(heap)

    def __len__(self) -> int:
        return len(self._heap) + self._spilled

    def __bool__(self) -> bool:
        return bool(self._heap) or bool(self._spilled)

    def __iter__(self) -> Iterator[Any]:
        """All pending entries (unordered), non-destructively."""
        yield from self._heap
        yield from self._file.iter_unread()

    @property
    def spilled(self) -> int:
        return self._spilled

    def close(self, *, unlink: bool = True) -> None:
        self._heap.clear()
        self._spilled = 0
        self._file.close(unlink=unlink)
