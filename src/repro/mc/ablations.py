"""Fault-injection ablations: each design rule of Adore, removed.

The paper argues that R1⁺'s OVERLAP, R2, R3, and the ``insertBtw``
commit placement are each load-bearing.  These functions demonstrate it
mechanically: the same model checker that certifies the intact model
SAFE finds a concrete counterexample schedule the moment one rule is
dropped.

Each ablation returns an :class:`~repro.mc.explorer.ExplorationResult`
whose first violation carries the full schedule and tree.

Every run here is built from a ``*_explorer()`` factory returning the
configured :class:`Explorer`, so callers (tests, the parallel engine's
equivalence suite, CI smoke jobs) can run the *same* instance under
either engine.  The ``ablate_*``/``verify_intact`` entry points accept
``workers=`` and ``checkpoint=``: with ``workers=1`` and no checkpoint
they behave exactly as before; otherwise they route through
:func:`repro.mc.parallel.explore`.  The parallel engine supports only
breadth-first search, so hunts that default to the ``guided`` strategy
switch to ``bfs`` when parallelized (same verdict; the hunt order, and
hence the states-explored count, differs from the guided run).
"""

from __future__ import annotations

from typing import Optional

from ..core.cache import CCache
from ..core.oracle import Fail
from ..schemes.single_node import RaftSingleNodeScheme, UnsafeMultiNodeScheme
from .explorer import (
    ExplorationResult,
    Explorer,
    OpBudget,
    jump_reconfig_candidates,
)
from .parallel import explore

#: The four-node universe the Fig. 4 counterexample needs.
FIG4_NODES = frozenset({1, 2, 3, 4})

#: Schedule class of the historical counterexamples: three elections,
#: one regular command, two reconfigurations, two commits.
FIG4_BUDGET = OpBudget(pulls=3, invokes=1, reconfigs=2, pushes=2)


def _hunt_explorer(**overrides) -> Explorer:
    """The shared counterexample-hunt configuration (Fig. 4 shaped)."""
    params = dict(
        scheme=RaftSingleNodeScheme(),
        conf0=FIG4_NODES,
        callers=[1, 2],
        budget=FIG4_BUDGET,
        quorum_pulls_only=True,
        minimal_quorums_only=True,
        invariants=["safety"],
        strategy="guided",
    )
    params.update(overrides)
    return Explorer(**params)


def _run(
    explorer: Explorer,
    workers: int,
    checkpoint: Optional[str],
    **engine_options,
) -> ExplorationResult:
    return explore(
        explorer, workers=workers, checkpoint=checkpoint, **engine_options
    )


def _hunt_overrides(workers: int, overrides: dict) -> dict:
    """Force ``bfs`` when a guided hunt is parallelized."""
    if workers != 1 and overrides.get("strategy", "guided") == "guided":
        overrides = dict(overrides, strategy="bfs")
    return overrides


def verify_intact_explorer(
    budget: Optional[OpBudget] = None,
    conf0: frozenset = frozenset({1, 2, 3}),
    max_states: int = 500_000,
    **overrides,
) -> Explorer:
    """The positive-verification instance behind :func:`verify_intact`."""
    params = dict(
        scheme=RaftSingleNodeScheme(),
        conf0=conf0,
        budget=budget or OpBudget(pulls=2, invokes=2, reconfigs=2, pushes=2),
        max_states=max_states,
        stop_at_first_violation=True,
        strategy="bfs",
    )
    params.update(overrides)
    return Explorer(**params)


def verify_intact(
    budget: Optional[OpBudget] = None,
    conf0: frozenset = frozenset({1, 2, 3}),
    max_states: int = 500_000,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    **engine_options,
) -> ExplorationResult:
    """Exhaustive BFS over the *intact* model: must report SAFE.

    This is the positive half of the reproduction of Theorem 4.5: every
    reachable state of the bounded instance satisfies replicated state
    safety and all Appendix-B invariants.  ``workers`` > 1 partitions
    each frontier level across processes; ``checkpoint`` makes the run
    resumable (see :mod:`repro.mc.parallel`); both leave the verdict
    and state count identical to the sequential run.
    """
    explorer = verify_intact_explorer(budget, conf0, max_states)
    return _run(explorer, workers, checkpoint, **engine_options)


def r3_explorer(max_states: int = 300_000, **overrides) -> Explorer:
    """The R3-ablated hunt instance behind :func:`ablate_r3`."""
    return _hunt_explorer(enforce_r3=False, max_states=max_states, **overrides)


def ablate_r3(
    max_states: int = 300_000,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    **engine_options,
) -> ExplorationResult:
    """Drop R3: the model checker rediscovers the Fig. 4 violation.

    Without the committed-entry-at-current-term requirement, two leaders
    reconfigure concurrently, end up with configurations two changes
    apart, and commit with disjoint quorums on divergent branches.
    """
    overrides = _hunt_overrides(workers, {})
    return _run(
        r3_explorer(max_states, **overrides),
        workers, checkpoint, **engine_options,
    )


def _removals_only(state, nid, conf):
    """Removal-only reconfiguration moves (the R2 counterexample
    shrinks the configuration, so this halves the branching)."""
    conf_set = frozenset(conf)
    if len(conf_set) > 1:
        for node in sorted(conf_set):
            yield conf_set - {node}


def r2_explorer(max_states: int = 300_000, **overrides) -> Explorer:
    """The R2-ablated hunt instance behind :func:`ablate_r2`."""
    params = dict(
        enforce_r2=False,
        max_states=max_states,
        budget=OpBudget(pulls=2, invokes=2, reconfigs=3, pushes=3),
        reconfig_candidates=_removals_only,
    )
    params.update(overrides)
    return _hunt_explorer(**params)


def ablate_r2(
    max_states: int = 300_000,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    **engine_options,
) -> ExplorationResult:
    """Drop R2 (keep R3): stacked uncommitted reconfigurations.

    R3 alone does not stop a single leader from piling up multiple
    uncommitted RCaches; the configuration can then change twice within
    one commit and consecutive-overlap (R1⁺) no longer protects the
    election quorums.  A slightly larger schedule class is needed than
    for the R3 ablation because the leader must first commit a command
    of its own term: one leader commits at its term, stacks three
    reconfigurations down to a singleton configuration and commits them
    alone; a second leader, elected under the original configuration
    (which it can still see), commits on the main branch.  pulls=2,
    invokes=2, reconfigs=3, pushes=3 is exactly that schedule class.
    """
    overrides = _hunt_overrides(workers, {})
    return _run(
        r2_explorer(max_states, **overrides),
        workers, checkpoint, **engine_options,
    )


def overlap_explorer(max_states: int = 300_000, **overrides) -> Explorer:
    """The OVERLAP-ablated hunt instance behind :func:`ablate_overlap`."""
    params = dict(
        scheme=UnsafeMultiNodeScheme(),
        reconfig_candidates=jump_reconfig_candidates(FIG4_NODES),
        max_states=max_states,
        budget=OpBudget(pulls=3, invokes=2, reconfigs=1, pushes=3),
    )
    params.update(overrides)
    return _hunt_explorer(**params)


def ablate_overlap(
    max_states: int = 300_000,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    **engine_options,
) -> ExplorationResult:
    """Break OVERLAP: R1⁺ permits multi-node configuration jumps.

    With :class:`UnsafeMultiNodeScheme` a single legal reconfiguration
    can move to a configuration with a disjoint majority, so even R2 and
    R3 cannot save safety.
    """
    overrides = _hunt_overrides(workers, {})
    return _run(
        overlap_explorer(max_states, **overrides),
        workers, checkpoint, **engine_options,
    )


def _leaf_push(state, nid, outcome, scheme):
    """The ablated push: commit as a leaf (``addLeaf``) instead of
    ``insertBtw``, detaching partial-failure children from the
    committed branch."""
    if isinstance(outcome, Fail):
        return state, None, "oracle-fail"
    target = state.tree.cache(outcome.target)
    state = state.set_times(outcome.group, target.time)
    if not scheme.is_quorum(outcome.group, target.conf):
        return state, None, "no-quorum"
    new_cache = CCache(
        caller=nid,
        time=target.time,
        vrsn=target.vrsn,
        conf=target.conf,
        voters=outcome.group,
    )
    tree, cid = state.tree.add_leaf(outcome.target, new_cache)
    return state.with_tree(tree), cid, "ok"


def insert_btw_explorer(max_states: int = 100_000, **overrides) -> Explorer:
    """The insertBtw-ablated instance behind :func:`ablate_insert_btw`.

    With leaf commits even a single leader on a single branch violates
    the invariants (the second commit's CCache no longer dominates the
    first's successors), so a small budget suffices.
    """
    params = dict(
        budget=OpBudget(pulls=1, invokes=2, reconfigs=0, pushes=2),
        invariants=["safety", "well-formedness"],
        enforce_r3=True,
        max_states=max_states,
        strategy="bfs",
        push_step=_leaf_push,
    )
    params.update(overrides)
    return _hunt_explorer(**params)


def ablate_insert_btw(
    max_states: int = 100_000,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    **engine_options,
) -> ExplorationResult:
    """Replace ``insertBtw`` by ``addLeaf`` for CCaches.

    The paper's append-only trick places a commit *between* the
    committed cache and its children so partial failures stay viable.
    Committing as a leaf instead detaches those children from the
    committed branch: a later push of such a child produces a CCache
    whose branch does not contain the earlier commit -- replicated
    state safety breaks immediately.
    """
    return _run(
        insert_btw_explorer(max_states),
        workers, checkpoint, **engine_options,
    )
