"""Fault-injection ablations: each design rule of Adore, removed.

The paper argues that R1⁺'s OVERLAP, R2, R3, and the ``insertBtw``
commit placement are each load-bearing.  These functions demonstrate it
mechanically: the same model checker that certifies the intact model
SAFE finds a concrete counterexample schedule the moment one rule is
dropped.

Each ablation returns an :class:`~repro.mc.explorer.ExplorationResult`
whose first violation carries the full schedule and tree.
"""

from __future__ import annotations

from typing import Optional

from ..schemes.single_node import RaftSingleNodeScheme, UnsafeMultiNodeScheme
from .explorer import (
    ExplorationResult,
    Explorer,
    OpBudget,
    jump_reconfig_candidates,
)

#: The four-node universe the Fig. 4 counterexample needs.
FIG4_NODES = frozenset({1, 2, 3, 4})

#: Schedule class of the historical counterexamples: three elections,
#: one regular command, two reconfigurations, two commits.
FIG4_BUDGET = OpBudget(pulls=3, invokes=1, reconfigs=2, pushes=2)


def _hunt(**overrides) -> ExplorationResult:
    params = dict(
        scheme=RaftSingleNodeScheme(),
        conf0=FIG4_NODES,
        callers=[1, 2],
        budget=FIG4_BUDGET,
        quorum_pulls_only=True,
        minimal_quorums_only=True,
        invariants=["safety"],
        strategy="guided",
    )
    params.update(overrides)
    return Explorer(**params).run()


def verify_intact(
    budget: Optional[OpBudget] = None,
    conf0: frozenset = frozenset({1, 2, 3}),
    max_states: int = 500_000,
) -> ExplorationResult:
    """Exhaustive BFS over the *intact* model: must report SAFE.

    This is the positive half of the reproduction of Theorem 4.5: every
    reachable state of the bounded instance satisfies replicated state
    safety and all Appendix-B invariants.
    """
    explorer = Explorer(
        RaftSingleNodeScheme(),
        conf0,
        budget=budget or OpBudget(pulls=2, invokes=2, reconfigs=2, pushes=2),
        max_states=max_states,
        stop_at_first_violation=True,
        strategy="bfs",
    )
    return explorer.run()


def ablate_r3(max_states: int = 300_000) -> ExplorationResult:
    """Drop R3: the model checker rediscovers the Fig. 4 violation.

    Without the committed-entry-at-current-term requirement, two leaders
    reconfigure concurrently, end up with configurations two changes
    apart, and commit with disjoint quorums on divergent branches.
    """
    return _hunt(enforce_r3=False, max_states=max_states)


def ablate_r2(max_states: int = 300_000) -> ExplorationResult:
    """Drop R2 (keep R3): stacked uncommitted reconfigurations.

    R3 alone does not stop a single leader from piling up multiple
    uncommitted RCaches; the configuration can then change twice within
    one commit and consecutive-overlap (R1⁺) no longer protects the
    election quorums.  A slightly larger schedule class is needed than
    for the R3 ablation because the leader must first commit a command
    of its own term.
    """
    # Counterexample shape: one leader commits at its term, stacks three
    # reconfigurations down to a singleton configuration and commits
    # them alone; a second leader, elected under the original
    # configuration (which it can still see), commits on the main
    # branch.  pulls=2, invokes=2, reconfigs=3, pushes=3 is exactly that
    # schedule class.  Removal-only reconfiguration moves suffice (the
    # counterexample shrinks the configuration) and halve the branching.
    def removals_only(state, nid, conf):
        conf_set = frozenset(conf)
        if len(conf_set) > 1:
            for node in sorted(conf_set):
                yield conf_set - {node}

    return _hunt(
        enforce_r2=False,
        max_states=max_states,
        budget=OpBudget(pulls=2, invokes=2, reconfigs=3, pushes=3),
        reconfig_candidates=removals_only,
    )


def ablate_overlap(max_states: int = 300_000) -> ExplorationResult:
    """Break OVERLAP: R1⁺ permits multi-node configuration jumps.

    With :class:`UnsafeMultiNodeScheme` a single legal reconfiguration
    can move to a configuration with a disjoint majority, so even R2 and
    R3 cannot save safety.
    """
    return _hunt(
        scheme=UnsafeMultiNodeScheme(),
        reconfig_candidates=jump_reconfig_candidates(FIG4_NODES),
        max_states=max_states,
        budget=OpBudget(pulls=3, invokes=2, reconfigs=1, pushes=3),
    )


def ablate_insert_btw(max_states: int = 100_000) -> ExplorationResult:
    """Replace ``insertBtw`` by ``addLeaf`` for CCaches.

    The paper's append-only trick places a commit *between* the
    committed cache and its children so partial failures stay viable.
    Committing as a leaf instead detaches those children from the
    committed branch: a later push of such a child produces a CCache
    whose branch does not contain the earlier commit -- replicated
    state safety breaks immediately.
    """
    from ..core.cache import CCache
    from ..core.oracle import Fail

    def leaf_push(state, nid, outcome, scheme):
        if isinstance(outcome, Fail):
            return state, None, "oracle-fail"
        target = state.tree.cache(outcome.target)
        state = state.set_times(outcome.group, target.time)
        if not scheme.is_quorum(outcome.group, target.conf):
            return state, None, "no-quorum"
        new_cache = CCache(
            caller=nid,
            time=target.time,
            vrsn=target.vrsn,
            conf=target.conf,
            voters=outcome.group,
        )
        tree, cid = state.tree.add_leaf(outcome.target, new_cache)
        return state.with_tree(tree), cid, "ok"

    # With leaf commits even a single leader on a single branch violates
    # the invariants (the second commit's CCache no longer dominates the
    # first's successors), so a small budget suffices.
    return _hunt(
        budget=OpBudget(pulls=1, invokes=2, reconfigs=0, pushes=2),
        invariants=["safety", "well-formedness"],
        enforce_r3=True,
        max_states=max_states,
        strategy="bfs",
        push_step=leaf_push,
    )
