"""A Wing–Gong style linearizability checker for the KV-store model.

Given a :class:`~repro.runtime.history.History` of client operations
against the replicated key-value store, decide whether there exists a
total order of the operations that (a) respects real-time order --
an operation linearizes somewhere between its invocation and its
response -- and (b) is legal for a per-key register with ``put``,
``add`` (counter increment), ``delete``, and ``get``.

Keys are independent, so the check decomposes per key (locality,
Herlihy & Wing Theorem 1) and each sub-history is searched with the
Wing–Gong algorithm as refined by Lowe and used by Porcupine: a DFS
over (set of linearized operations, register state) pairs with
memoization, taking only *minimal* operations -- those invoked before
every outstanding response -- as the next linearization candidate.

Operations whose outcome is unknown (the client timed out: the request
may or may not have been applied) are handled the standard Jepsen way:
they have no response constraint, so they may linearize at any point
after their invocation *or never*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .history import History, Operation


class _Absent:
    """Singleton marking an absent key (distinct from a stored None)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<absent>"


ABSENT = _Absent()

_INFINITY = float("inf")


def _apply(state: Any, op: Operation) -> Tuple[bool, Any]:
    """One register transition; ``(legal, next_state)``."""
    if op.op == "put":
        return True, op.value
    if op.op == "add":
        base = 0 if state is ABSENT else state
        return True, base + op.value
    if op.op == "delete":
        return True, ABSENT
    if op.op == "get":
        if not op.completed:
            # No response to constrain the read: any value is fine.
            return True, state
        expected = None if state is ABSENT else state
        return op.result == expected, state
    raise ValueError(f"unknown operation kind {op.op!r}")


@dataclass
class LinearizabilityResult:
    """Verdict of a whole-history check."""

    ok: bool
    checked_ops: int = 0
    states_explored: int = 0
    #: key -> human-readable reason, for keys that failed.
    failures: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        if self.ok:
            return (
                f"linearizable ({self.checked_ops} ops, "
                f"{self.states_explored} states explored)"
            )
        details = "; ".join(
            f"{key}: {why}" for key, why in sorted(self.failures.items())
        )
        return f"NOT linearizable: {details}"


def check_key(
    ops: List[Operation], max_states: int = 2_000_000
) -> Tuple[bool, int]:
    """Check one key's sub-history; ``(linearizable, states_explored)``.

    Raises :class:`RuntimeError` if the search exceeds ``max_states``
    (never observed on the nemesis workloads; the bound guards against
    pathological hand-built histories).
    """
    ordered = sorted(ops, key=lambda o: (o.invoked_ms, o.op_id))
    n = len(ordered)
    if n == 0:
        return True, 0
    completed_bits = 0
    for i, op in enumerate(ordered):
        if op.completed:
            completed_bits |= 1 << i
    responses = [
        op.completed_ms if op.completed else _INFINITY for op in ordered
    ]

    start = (0, ABSENT)
    seen = {start}
    stack = [start]
    explored = 0
    while stack:
        mask, state = stack.pop()
        explored += 1
        if explored > max_states:
            raise RuntimeError(
                f"linearizability search exceeded {max_states} states"
            )
        if mask & completed_bits == completed_bits:
            # Every operation that responded is linearized; the
            # remaining unknown-outcome operations may simply never
            # have taken effect.
            return True, explored
        min_response = min(
            responses[i] for i in range(n) if not mask >> i & 1
        )
        for i in range(n):
            if mask >> i & 1:
                continue
            op = ordered[i]
            if op.invoked_ms > min_response:
                # ops are sorted by invocation: no later op is minimal.
                break
            legal, next_state = _apply(state, op)
            if not legal:
                continue
            succ = (mask | 1 << i, next_state)
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False, explored


def check_history(
    history: History, max_states: int = 2_000_000
) -> LinearizabilityResult:
    """Check a full multi-key history (per-key decomposition)."""
    result = LinearizabilityResult(ok=True, checked_ops=len(history))
    for key, ops in sorted(history.per_key().items()):
        ok, explored = check_key(ops, max_states=max_states)
        result.states_explored += explored
        if not ok:
            result.ok = False
            completed = sum(1 for op in ops if op.completed)
            result.failures[key] = (
                f"no legal linearization of {len(ops)} ops "
                f"({completed} with responses)"
            )
    return result
