"""Workload generators, including the Fig. 16 reconfiguration workload.

The paper's experiment: "reconfigures after every 1000 client requests,
starting with five nodes, dropping to three, then increasing back to
five", with per-request latency reported as max/mean/min over eight
runs.  The single-node scheme changes one member at a time, so the
5 → 3 → 5 trajectory is 5 → 4 → 3 → 4 → 5 with one change at each
1000-request boundary, exactly as the figure's (n) annotations show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.cache import NodeId
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..schemes.single_node import RaftSingleNodeScheme
from .cluster import Cluster
from .simnet import FaultPlan, LatencyModel


@dataclass
class Fig16Config:
    """Parameters of the Fig. 16 reproduction."""

    #: Requests between reconfigurations (paper: 1000).
    requests_per_phase: int = 1000
    #: The membership trajectory; each step differs by one node.
    phases: Tuple[frozenset, ...] = (
        frozenset({1, 2, 3, 4, 5}),
        frozenset({1, 2, 3, 4}),
        frozenset({1, 2, 3}),
        frozenset({1, 2, 3, 4}),
        frozenset({1, 2, 3, 4, 5}),
    )
    leader: NodeId = 1
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Optional fault schedule threaded into the cluster's transport
    #: (drops/duplication/reordering; the externally-driven workload
    #: tolerates them through per-request retry in ``submit``).
    faults: Optional[FaultPlan] = None
    #: Optional observability sinks threaded into the cluster; the
    #: defaults are the no-op tracer/registry (see repro.obs).
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.requests_per_phase <= 0:
            raise ValueError("requests_per_phase must be positive")
        if not self.phases:
            raise ValueError("at least one phase is required")
        for before, after in zip(self.phases, self.phases[1:]):
            if len(frozenset(before) ^ frozenset(after)) != 1:
                raise ValueError(
                    f"consecutive phases must differ by exactly one node "
                    f"(single-node scheme): {sorted(before)} -> "
                    f"{sorted(after)}"
                )
        if any(self.leader not in phase for phase in self.phases):
            raise ValueError(
                f"the driving leader {self.leader} must belong to every "
                "phase of this workload"
            )


@dataclass
class Fig16Run:
    """One run's per-request latencies plus reconfiguration markers."""

    latencies_ms: List[float]
    reconfig_indices: List[int]
    reconfig_latencies_ms: List[float]
    phase_sizes: List[int]


def run_fig16_workload(seed: int, config: Optional[Fig16Config] = None) -> Fig16Run:
    """One run of the reconfiguration workload on the simulated cluster."""
    cfg = config or Fig16Config()
    scheme = RaftSingleNodeScheme()
    all_nodes = frozenset().union(*cfg.phases)
    cluster = Cluster(
        cfg.phases[0],
        scheme,
        seed=seed,
        latency=cfg.latency,
        extra_nodes=all_nodes,
        faults=cfg.faults,
        tracer=cfg.tracer,
        metrics=cfg.metrics,
    )
    if not cluster.elect(cfg.leader):
        raise RuntimeError("initial election failed")

    latencies: List[float] = []
    reconfig_indices: List[int] = []
    reconfig_latencies: List[float] = []
    counter = 0
    for phase_idx, members in enumerate(cfg.phases):
        if phase_idx > 0:
            record = cluster.submit_reconfig(members, cfg.leader)
            reconfig_indices.append(len(latencies))
            reconfig_latencies.append(record.latency_ms)
            # The reconfiguration is itself a request in the latency
            # series (the figure shows its spike inline).
            latencies.append(record.latency_ms)
        for _ in range(cfg.requests_per_phase):
            counter += 1
            record = cluster.submit(f"req-{counter}", cfg.leader)
            latencies.append(record.latency_ms)

    violations = cluster.check_safety()
    if violations:
        raise AssertionError("; ".join(violations))
    return Fig16Run(
        latencies_ms=latencies,
        reconfig_indices=reconfig_indices,
        reconfig_latencies_ms=reconfig_latencies,
        phase_sizes=[len(m) for m in cfg.phases],
    )


def run_fig16_experiment(
    runs: int = 8, config: Optional[Fig16Config] = None, seed0: int = 1
) -> List[Fig16Run]:
    """The eight-run experiment of Fig. 16 (seeded per run)."""
    return [run_fig16_workload(seed0 + i, config) for i in range(runs)]
