"""Failure injection and client-side failover.

The paper's introduction motivates reconfiguration with inevitable
server failures: a dead replica must be replaced without stopping the
system.  This module adds the missing runtime pieces to play that
scenario end to end on the simulated cluster:

* :meth:`repro.runtime.cluster.Cluster.crash` / ``restart`` -- crashed
  nodes silently drop every message (fail-stop; their persistent state
  -- the log -- survives a restart, as benign consensus assumes);
* :class:`FailoverDriver` -- a client that retries requests across
  leader failures: on a timeout it promotes the next live member of the
  current configuration and re-submits, recording how long the outage
  lasted and how many retries each request needed.

Together with hot reconfiguration this reproduces the full operational
story: crash → failover election → keep serving → reconfig the dead
node out → reconfig a fresh node in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.cache import Config, Method, NodeId
from .cluster import Cluster, RequestRecord


@dataclass
class FailoverEvent:
    """One leader change performed by the driver."""

    at_ms: float
    old_leader: Optional[NodeId]
    new_leader: NodeId
    elections_tried: int


@dataclass
class FailoverDriver:
    """A client that survives leader crashes by re-electing and retrying.

    Every submission is stamped with a ``(client_id, seq)`` request id,
    so a retry after a timeout is *at most once*: if the first attempt's
    entry survived into the new leader's log, the retry recognizes it
    and waits for it to commit instead of appending the command a
    second time.
    """

    cluster: Cluster
    leader: NodeId
    request_timeout_ms: float = 50.0
    election_timeout_ms: float = 200.0
    events: List[FailoverEvent] = field(default_factory=list)
    client_id: str = "client-0"
    #: When False the client stamps no request ids -- the historical
    #: pre-dedup client, kept as an explicit (and bundle-serializable)
    #: chaos discipline so the checkers' teeth can be demonstrated and
    #: *replayed* from a violation bundle.
    use_request_ids: bool = True
    _seq: int = field(default=0, repr=False)

    def _next_request_id(self):
        if not self.use_request_ids:
            return None
        rid = (self.client_id, self._seq)
        self._seq += 1
        return rid

    def _live_candidates(self) -> List[NodeId]:
        """Live members of the current leader's configuration, preferring
        the most up-to-date logs (they can actually win)."""
        reference = self.cluster.servers[self.leader]
        members = self.cluster.scheme.members(reference.config())
        candidates = [
            nid
            for nid in sorted(members)
            if not self.cluster.is_crashed(nid)
        ]
        from ..raft.messages import log_order_key

        candidates.sort(
            key=lambda nid: log_order_key(self.cluster.servers[nid].log),
            reverse=True,
        )
        return candidates

    def _fail_over(self) -> NodeId:
        old = self.leader
        tried = 0
        started_ms = self.cluster.sim.now
        for candidate in self._live_candidates():
            tried += 1
            if self.cluster.elect(candidate, max_wait_ms=self.election_timeout_ms):
                self.leader = candidate
                self.events.append(
                    FailoverEvent(
                        at_ms=self.cluster.sim.now,
                        old_leader=old,
                        new_leader=candidate,
                        elections_tried=tried,
                    )
                )
                metrics = self.cluster.metrics
                if metrics.enabled:
                    metrics.counter("failover.count").inc()
                    metrics.histogram("failover.elections_tried").observe(tried)
                    metrics.histogram("failover.outage_ms").observe(
                        self.cluster.sim.now - started_ms
                    )
                return candidate
        metrics = self.cluster.metrics
        if metrics.enabled:
            metrics.counter("failover.exhausted").inc()
        raise RuntimeError("no live candidate could win an election")

    def submit(self, payload: Method, max_attempts: int = 6) -> RequestRecord:
        """Submit one command at most once, failing over as needed."""
        request_id = self._next_request_id()
        for _ in range(max_attempts):
            if self.cluster.is_crashed(self.leader):
                self._fail_over()
                continue
            try:
                return self.cluster.submit(
                    payload,
                    self.leader,
                    max_wait_ms=self.request_timeout_ms,
                    request_id=request_id,
                )
            except RuntimeError:
                # Timeout: the leader may be dead or partitioned from a
                # quorum; try the next candidate.  The request id keeps
                # the retry from re-appending a command whose entry
                # already survived into the next leader's log.
                metrics = self.cluster.metrics
                if metrics.enabled:
                    metrics.counter("failover.retries").inc()
                self._fail_over()
        raise RuntimeError(f"request {payload!r} failed after retries")

    def reconfigure(self, new_conf: Config, max_attempts: int = 6) -> RequestRecord:
        """Reconfigure with the same failover discipline.

        R3 may require a committed command of the current term first;
        the driver submits a no-op to satisfy it when needed.
        """
        request_id = self._next_request_id()
        for _ in range(max_attempts):
            if self.cluster.is_crashed(self.leader):
                self._fail_over()
                continue
            server = self.cluster.servers[self.leader]
            already_appended = (
                Cluster._find_request(server, request_id) is not None
            )
            if not already_appended and not server.has_commit_at_current_time():
                self.submit(("noop",))
                continue
            try:
                return self.cluster.submit_reconfig(
                    new_conf,
                    self.leader,
                    max_wait_ms=self.request_timeout_ms,
                    request_id=request_id,
                )
            except RuntimeError:
                self._fail_over()
        raise RuntimeError(f"reconfiguration to {new_conf!r} failed")
