"""The transport-agnostic election/heartbeat driver.

The liveness policy of a Raft node -- randomized election timeouts,
epoch-guarded timer re-arming, term-scoped heartbeat chains -- is pure
scheduling logic: it reads and mutates one
:class:`~repro.raft.server.Server`, draws timeouts from an injected
RNG, and emits messages through an injected send callback.  Nothing in
it cares whether "schedule" means a discrete-event simulator heap or an
asyncio event loop, so the policy lives here, factored out of
:class:`~repro.runtime.autonomous.AutonomousCluster`, and is consumed
by exactly two transports:

* the simulator (:mod:`repro.runtime.autonomous`), which passes
  ``Simulator.schedule`` and ``Simulator.rng`` -- seeded runs are
  bit-identical to the pre-extraction implementation (asserted by
  ``tests/runtime/test_driver_equivalence.py``);
* the real asyncio TCP runtime (:mod:`repro.net.node`), which passes
  ``loop.call_later`` and a per-node seeded RNG.

Both runtimes therefore exercise *identical* election logic: a timer
that fires while the node is a non-leader member campaigns via
``Server.start_election`` and re-arms; accepted leader/candidate
traffic pushes the timer out; winning starts a heartbeat chain that
broadcasts ``Server.broadcast_commit`` every ``heartbeat_ms`` until
the node is dethroned or deactivated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.config import ReconfigScheme
from ..raft.messages import CommitReq, ElectReq, Msg
from ..raft.server import LEADER, Server


@dataclass
class TimingConfig:
    """The partial-synchrony knobs.

    Units are milliseconds of whatever clock the transport schedules
    against: simulated ms on the discrete-event simulator, wall-clock
    ms on the asyncio runtime.
    """

    #: Leader heartbeat period.
    heartbeat_ms: float = 5.0
    #: Election timeout window [min, max); each arming draws uniformly.
    election_timeout_min_ms: float = 15.0
    election_timeout_max_ms: float = 30.0


def find_request(server: Server, request_id) -> Optional[int]:
    """Log position (1-based prefix length) of ``request_id``, if a
    previous attempt's entry already survived into ``server``'s log."""
    if request_id is None:
        return None
    for i, entry in enumerate(server.log):
        if entry.request_id == request_id:
            return i + 1
    return None


class ElectionDriver:
    """Election-timeout and heartbeat policy for one server.

    Parameters
    ----------
    server, scheme:
        The spec replica being driven and its reconfiguration scheme.
    timing:
        The :class:`TimingConfig` knobs.
    rng:
        Any object with ``random() -> float in [0, 1)``; timeout draws
        come from here and from nowhere else, so sharing one seeded RNG
        across drivers makes a whole cluster's timing reproducible.
    schedule:
        ``schedule(delay_ms, fn)`` -- run ``fn`` after ``delay_ms``.
    send_all:
        ``send_all(msgs)`` -- hand a batch of emitted messages to the
        transport.
    is_active:
        Optional predicate; a crashed/stopped node's timers fire but do
        nothing (mirroring fail-stop: the policy stays silent without
        the transport having to cancel outstanding timers).
    on_leader:
        Optional ``on_leader(term)`` hook, called once per promotion,
        before the first heartbeat of that term is sent.
    """

    def __init__(
        self,
        server: Server,
        scheme: ReconfigScheme,
        timing: TimingConfig,
        rng,
        schedule: Callable[[float, Callable[[], None]], None],
        send_all: Callable[[List[Msg]], None],
        is_active: Optional[Callable[[], bool]] = None,
        on_leader: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.server = server
        self.scheme = scheme
        self.timing = timing
        self.rng = rng
        self._schedule = schedule
        self._send_all = send_all
        self._is_active = is_active if is_active is not None else lambda: True
        self._on_leader = on_leader if on_leader is not None else lambda term: None
        #: Monotone timer epoch: re-arming bumps it so a stale timer
        #: event becomes a no-op (timers are never cancelled).
        self.epoch = 0

    # ------------------------------------------------------------------
    # Election timer
    # ------------------------------------------------------------------

    def draw_timeout(self) -> float:
        lo = self.timing.election_timeout_min_ms
        hi = self.timing.election_timeout_max_ms
        return lo + self.rng.random() * (hi - lo)

    def arm(self) -> None:
        """(Re-)arm the election timer with a fresh randomized timeout."""
        self.epoch += 1
        epoch = self.epoch
        self._schedule(self.draw_timeout(), lambda: self._timer_fired(epoch))

    def _timer_fired(self, epoch: int) -> None:
        if epoch != self.epoch or not self._is_active():
            return
        server = self.server
        members = self.scheme.members(server.config())
        if server.nid in members and server.role != LEADER:
            self._send_all(server.start_election(self.scheme))
            if server.role == LEADER:
                self.became_leader()
        self.arm()

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def became_leader(self) -> None:
        """Start a heartbeat chain for the server's current term."""
        self._on_leader(self.server.time)
        self._heartbeat(self.server.time)

    def _heartbeat(self, term: int) -> None:
        server = self.server
        if (
            not self._is_active()
            or server.role != LEADER
            or server.time != term
        ):
            return  # dethroned or dead: stop this heartbeat chain
        self._send_all(server.broadcast_commit(self.scheme))
        self._schedule(self.timing.heartbeat_ms, lambda: self._heartbeat(term))

    # ------------------------------------------------------------------
    # Message delivery
    # ------------------------------------------------------------------

    def on_message(self, msg: Msg) -> Tuple[List[Msg], bool]:
        """Deliver one message through the policy.

        Returns ``(responses, accepted)`` where ``accepted`` means the
        message was valid leader/candidate traffic -- the cases that
        count as a heartbeat and push the election timer out.
        """
        server = self.server
        was_leader = server.role == LEADER
        responses = server.handle(msg, self.scheme)
        accepted = isinstance(msg, (CommitReq, ElectReq)) and bool(responses)
        if accepted:
            # Any accepted traffic from a live leader/candidate counts
            # as a heartbeat: push the election timer out.
            self.arm()
        if not was_leader and server.role == LEADER:
            self.became_leader()
        return responses, accepted
