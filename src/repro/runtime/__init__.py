"""Executable deployment on a simulated network (the Fig. 16 substrate).

The paper extracts its Coq Raft specification to OCaml and measures it
on EC2; here the Python specification is scheduled over a seeded
discrete-event simulator (:mod:`repro.runtime.simnet`), driven by a
client workload (:mod:`repro.runtime.workload`), with a replicated
key-value store as the demo application
(:mod:`repro.runtime.kvstore`).  Chaos testing lives in
:mod:`repro.runtime.nemesis`: seeded fault plans (drops, duplication,
reordering, partitions, crash/restart schedules) injected into the
transport, with client histories checked for linearizability
(:mod:`repro.runtime.linearize`) after every run.
"""

from .autonomous import AutonomousCluster, LeaderChange
from .cluster import Cluster, RequestRecord
from .driver import ElectionDriver, TimingConfig, find_request
from .failover import FailoverDriver, FailoverEvent
from .history import History, Operation
from .kvstore import ReplicatedKV, apply_command, materialize
from .linearize import LinearizabilityResult, check_history, check_key
from .nemesis import (
    FIG16_TRAJECTORY,
    NemesisConfig,
    NemesisResult,
    NemesisStats,
    duplicate_request_audit,
    fig16_chaos_config,
    run_nemesis,
)
from .simnet import (
    CrashEvent,
    FaultPlan,
    LatencyModel,
    NetworkConditions,
    Partition,
    Simulator,
)
from .workload import (
    Fig16Config,
    Fig16Run,
    run_fig16_experiment,
    run_fig16_workload,
)

__all__ = [
    "AutonomousCluster",
    "Cluster",
    "CrashEvent",
    "ElectionDriver",
    "FIG16_TRAJECTORY",
    "FailoverDriver",
    "FailoverEvent",
    "FaultPlan",
    "Fig16Config",
    "Fig16Run",
    "History",
    "LatencyModel",
    "LeaderChange",
    "LinearizabilityResult",
    "NemesisConfig",
    "NemesisResult",
    "NemesisStats",
    "NetworkConditions",
    "Operation",
    "Partition",
    "ReplicatedKV",
    "RequestRecord",
    "Simulator",
    "TimingConfig",
    "apply_command",
    "check_history",
    "check_key",
    "duplicate_request_audit",
    "fig16_chaos_config",
    "find_request",
    "materialize",
    "run_fig16_experiment",
    "run_fig16_workload",
    "run_nemesis",
]
