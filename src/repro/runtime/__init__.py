"""Executable deployment on a simulated network (the Fig. 16 substrate).

The paper extracts its Coq Raft specification to OCaml and measures it
on EC2; here the Python specification is scheduled over a seeded
discrete-event simulator (:mod:`repro.runtime.simnet`), driven by a
client workload (:mod:`repro.runtime.workload`), with a replicated
key-value store as the demo application
(:mod:`repro.runtime.kvstore`).
"""

from .autonomous import AutonomousCluster, LeaderChange, TimingConfig
from .cluster import Cluster, RequestRecord
from .failover import FailoverDriver, FailoverEvent
from .kvstore import ReplicatedKV, apply_command, materialize
from .simnet import LatencyModel, Simulator
from .workload import (
    Fig16Config,
    Fig16Run,
    run_fig16_experiment,
    run_fig16_workload,
)

__all__ = [
    "AutonomousCluster",
    "Cluster",
    "FailoverDriver",
    "LeaderChange",
    "FailoverEvent",
    "Fig16Config",
    "Fig16Run",
    "LatencyModel",
    "ReplicatedKV",
    "RequestRecord",
    "Simulator",
    "TimingConfig",
    "apply_command",
    "materialize",
    "run_fig16_experiment",
    "run_fig16_workload",
]
