"""An executable cluster: the Raft spec handlers on a simulated network.

The paper extracts its Coq specification to OCaml and runs it on EC2;
here the Python specification (:mod:`repro.raft.server`) *is* the
executable, and :class:`Cluster` schedules its messages over the
discrete-event simulator.  Client requests are processed sequentially
by the leader: append, broadcast, gather acknowledgements, complete
when the entry's index is committed.  Reconfiguration requests go
through the same path (hot reconfiguration: processing never stops).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.cache import Config, Method, NodeId
from ..core.config import ReconfigScheme
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..raft.messages import CommitReq, ElectReq, Msg
from ..raft.server import FOLLOWER, LEADER, Server
from .driver import find_request
from .simnet import FaultPlan, LatencyModel, Simulator


@dataclass
class RequestRecord:
    """Timing of one client request."""

    index: int
    payload: object
    is_reconfig: bool
    submitted_ms: float
    completed_ms: Optional[float] = None
    #: Log position (length of the prefix ending at this request's
    #: entry) in the leader that committed it; lets clients materialize
    #: the state a read observed.
    log_index: Optional[int] = None

    @property
    def latency_ms(self) -> Optional[float]:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.submitted_ms


class Cluster:
    """A running cluster of specification servers on a simulated network."""

    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        processing_ms: float = 0.05,
        extra_nodes=(),
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.conf0 = conf0
        self.scheme = scheme
        self.sim = Simulator(seed=seed)
        self.latency = latency or LatencyModel()
        self.processing_ms = processing_ms
        nodes = set(scheme.members(conf0)) | set(extra_nodes)
        self.servers: Dict[NodeId, Server] = {
            nid: Server(nid=nid, conf0=conf0) for nid in sorted(nodes)
        }
        self.records: List[RequestRecord] = []
        self.messages_sent = 0
        self._crashed: set = set()
        self.faults = faults
        # -- observability (see repro.obs) -----------------------------
        # The disabled path must stay near-free: one boolean (`_obs`)
        # guards every instrumentation block, and instruments are
        # resolved once here, never per message.  Tracing/metrics
        # consume no randomness and schedule no simulator events, so an
        # instrumented run is bit-identical to a bare one.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._obs = self.tracer.enabled or self.metrics.enabled
        registry = self.metrics
        self._m_sent = registry.counter("cluster.messages_sent")
        self._m_received = registry.counter("cluster.messages_received")
        self._m_dropped = registry.counter("cluster.messages_dropped")
        self._m_duplicated = registry.counter("cluster.messages_duplicated")
        self._m_commits = registry.counter("cluster.entries_committed")
        self._m_requests = registry.counter("cluster.requests_submitted")
        self._m_completed = registry.counter("cluster.requests_completed")
        self._m_timeouts = registry.counter("cluster.requests_timed_out")
        self._m_elections = registry.counter("cluster.elections_started")
        self._m_crashes = registry.counter("cluster.crashes")
        self._m_restarts = registry.counter("cluster.restarts")
        self._h_latency = registry.histogram("cluster.request_latency_ms")
        self._h_election = registry.histogram("cluster.election_ms")
        #: Last commit length the tracer saw, per node (commit events
        #: are emitted on the delta).
        self._commit_seen: Dict[NodeId, int] = {}
        if faults is not None:
            for event in faults.crashes:
                self.sim.schedule(
                    event.at_ms, lambda n=event.nid: self.crash(n)
                )
                if event.restart_ms is not None:
                    self.sim.schedule(
                        event.restart_ms, lambda n=event.nid: self.restart(n)
                    )

    # ------------------------------------------------------------------
    # Failure injection (fail-stop with durable logs)
    # ------------------------------------------------------------------

    def crash(self, nid: NodeId) -> None:
        """Fail-stop ``nid``: it drops every message until restarted.

        Its local state (log, commit index) persists, as benign
        consensus assumes durable storage.
        """
        if nid not in self.servers:
            raise KeyError(f"unknown node {nid}")
        self._crashed.add(nid)
        if self._obs:
            self.tracer.record("crash", self.sim.now, nid)
            self._m_crashes.inc()

    def restart(self, nid: NodeId) -> None:
        """Bring a crashed node back with its durable state intact.

        Only durable state survives: the log, the commit length, and
        (as Raft persists them) the current term and the vote.  The
        volatile role, vote tally, and replication bookkeeping are
        reset -- a restarted leader comes back as a follower, never as
        a zombie leader that :meth:`leader` would report and clients
        would submit to.
        """
        if nid not in self._crashed:
            return
        self._crashed.discard(nid)
        server = self.servers[nid]
        server.role = FOLLOWER
        server.votes = frozenset()
        server.acked = {}
        if self._obs:
            self.tracer.record(
                "restart", self.sim.now, nid,
                term=server.time, log_len=len(server.log),
            )
            self._m_restarts.inc()

    def is_crashed(self, nid: NodeId) -> bool:
        return nid in self._crashed

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------

    def _payload_size(self, msg: Msg) -> int:
        """Entries the receiver does not have yet.

        The specification ships full logs, but a real transport sends
        deltas; charging only the receiver's missing suffix keeps
        steady-state request latency flat while making the catch-up of
        a freshly (re-)added node -- an empty log receiving everything
        -- visibly expensive, which is exactly the asymmetry Fig. 16
        shows between shrinking and growing the cluster.
        """
        if isinstance(msg, (ElectReq, CommitReq)):
            receiver = self.servers.get(msg.to)
            have = len(receiver.log) if receiver is not None else 0
            return max(0, len(msg.log) - have)
        return 0

    def _send(self, msg: Msg, extra_delay: float = 0.0) -> None:
        if msg.to not in self.servers:
            return
        if msg.frm in self._crashed:
            # A dead node sends nothing: responses computed before the
            # crash (queued behind the processing delay) must not leak
            # onto the network.
            return
        self.messages_sent += 1
        copies = 1
        if self.faults is not None:
            if self.faults.should_drop(msg.frm, msg.to, self.sim.now):
                if self._obs:
                    # `partitioned` is RNG-free, so asking again for
                    # the drop reason cannot perturb the fault stream.
                    reason = (
                        "partition"
                        if self.faults.partitioned(msg.frm, msg.to, self.sim.now)
                        else "loss"
                    )
                    self.tracer.record(
                        "drop", self.sim.now, msg.frm,
                        to=msg.to, msg=type(msg).__name__, reason=reason,
                    )
                    self._m_dropped.inc()
                return
            if self.faults.should_duplicate():
                copies = 2
                if self._obs:
                    self.tracer.record(
                        "duplicate", self.sim.now, msg.frm,
                        to=msg.to, msg=type(msg).__name__,
                    )
                    self._m_duplicated.inc()
        for i in range(copies):
            # Each in-flight copy must be an independent object: both
            # fault-injected duplicates used to alias the *same* Msg, so
            # a handler mutating its received message (e.g. through a
            # mutable payload) corrupted the copy still on the wire.
            delivery = msg if i == 0 else copy.deepcopy(msg)
            delay = extra_delay + self.latency.sample(
                self.sim.rng, self._payload_size(msg)
            )
            if self.faults is not None:
                delay += self.faults.reorder_delay()
            if self._obs:
                self._m_sent.inc()
                stamp = self.tracer.send(
                    self.sim.now, msg.frm, msg.to, type(msg).__name__
                )
                self.sim.schedule(
                    delay, lambda m=delivery, s=stamp: self._receive(m, s)
                )
            else:
                self.sim.schedule(delay, lambda m=delivery: self._receive(m))

    def _send_all(self, msgs) -> None:
        msgs = list(msgs)
        # Sender-side serialization: the whole batch waits for its total
        # encoding cost, so one full-log catch-up message (to a freshly
        # added node) delays that round for everyone -- the Fig. 16
        # growth spike.
        tx_cost = self.latency.tx_per_entry_ms * sum(
            self._payload_size(m) for m in msgs
        )
        for msg in msgs:
            self._send(msg, extra_delay=tx_cost)

    def _receive(self, msg: Msg, sent_lamport: int = 0) -> None:
        if msg.to in self._crashed:
            return  # dropped on the floor: the recipient is down
        server = self.servers[msg.to]
        if self._obs:
            self.tracer.receive(
                self.sim.now, msg.to, msg.frm,
                type(msg).__name__, sent_lamport,
            )
            self._m_received.inc()
            role_before = server.role
        responses = server.handle(msg, self.scheme)
        if self._obs:
            self._note_progress(server, role_before)
        self.sim.schedule(self.processing_ms, lambda: self._send_all(responses))

    def _note_progress(self, server: Server, role_before: str) -> None:
        """Trace state transitions a message handler just caused:
        commit-index advancement and promotions to leader."""
        seen = self._commit_seen.get(server.nid, 0)
        if server.commit_len > seen:
            self._commit_seen[server.nid] = server.commit_len
            self.tracer.record(
                "commit", self.sim.now, server.nid,
                commit_len=server.commit_len, term=server.time,
            )
            self._m_commits.inc(server.commit_len - seen)
        if role_before != LEADER and server.role == LEADER:
            self.tracer.record(
                "leader_elected", self.sim.now, server.nid, term=server.time
            )

    # ------------------------------------------------------------------
    # Cluster operations
    # ------------------------------------------------------------------

    def elect(self, nid: NodeId, max_wait_ms: float = 1_000.0) -> bool:
        """Run an election by ``nid`` and wait for it to resolve."""
        if nid in self._crashed:
            return False
        server = self.servers[nid]
        started_ms = self.sim.now
        if self._obs:
            self.tracer.record(
                "election_start", started_ms, nid, term=server.time + 1
            )
            self._m_elections.inc()
        self._send_all(server.start_election(self.scheme))
        if self._obs and server.role == LEADER:
            # Immediate win (single-member electorate): no ack will
            # arrive to trigger the transition in _receive.
            self.tracer.record(
                "leader_elected", self.sim.now, nid, term=server.time
            )
        deadline = self.sim.now + max_wait_ms
        self.sim.run_until(
            lambda: server.role == LEADER or self.sim.now >= deadline
            or self.sim.pending() == 0
        )
        won = server.role == LEADER
        if self._obs and won:
            self._h_election.observe(self.sim.now - started_ms)
        return won

    def leader(self) -> Optional[NodeId]:
        """The highest-term current *live* leader, if any."""
        best: Optional[NodeId] = None
        for nid, server in self.servers.items():
            if nid in self._crashed or server.role != LEADER:
                continue
            if best is None or server.time > self.servers[best].time:
                best = nid
        return best

    def submit(
        self,
        payload: Method,
        leader: NodeId,
        max_wait_ms: float = 10_000.0,
        request_id=None,
    ) -> RequestRecord:
        """Submit one regular command and wait until it is committed.

        ``request_id`` (a ``(client, seq)`` pair) makes the submission
        idempotent: if an entry carrying the same id is already in the
        leader's log -- a previous attempt that survived a failover --
        the command is *not* appended again; the call just waits for
        the existing entry to commit.
        """
        return self._submit(payload, leader, False, max_wait_ms, request_id)

    def submit_reconfig(
        self,
        new_conf: Config,
        leader: NodeId,
        max_wait_ms: float = 10_000.0,
        request_id=None,
    ) -> RequestRecord:
        """Submit a reconfiguration command and wait for commit."""
        return self._submit(new_conf, leader, True, max_wait_ms, request_id)

    @staticmethod
    def _find_request(server: Server, request_id) -> Optional[int]:
        """Log position (1-based prefix length) of ``request_id``."""
        return find_request(server, request_id)

    def _submit(
        self,
        payload,
        leader_id: NodeId,
        is_reconfig: bool,
        max_wait_ms: float,
        request_id=None,
    ) -> RequestRecord:
        if leader_id in self._crashed:
            raise RuntimeError(f"leader S{leader_id} is down")
        server = self.servers[leader_id]
        record = RequestRecord(
            index=len(self.records),
            payload=payload,
            is_reconfig=is_reconfig,
            submitted_ms=self.sim.now,
        )
        self.records.append(record)
        if self._obs:
            self.tracer.record(
                "client_invoke", self.sim.now, leader_id,
                request=record.index, reconfig=is_reconfig,
                payload=repr(payload),
            )
            self._m_requests.inc()
        existing = self._find_request(server, request_id)
        if existing is not None:
            # At-most-once: a previous attempt already appended this
            # request and the entry survived into this leader's log.
            # Don't append again -- but a leader elected after the
            # append can only commit entries of its own term by
            # counting (Raft's commit rule), so lay down a no-op
            # barrier at the current term if none exists yet.
            target_len = existing
            if all(e.time != server.time for e in server.log):
                server.invoke(("noop",))
        elif is_reconfig:
            ok, reason = server.reconfig(
                payload, self.scheme, request_id=request_id
            )
            if not ok:
                raise RuntimeError(f"reconfig denied: {reason}")
            target_len = len(server.log)
        else:
            if not server.invoke(payload, request_id=request_id):
                raise RuntimeError("invoke refused: not leader")
            target_len = len(server.log)
        if self._obs and is_reconfig:
            try:
                members = sorted(payload)
            except TypeError:
                members = repr(payload)
            self.tracer.record(
                "reconfig", self.sim.now, leader_id,
                members=members, term=server.time,
            )
        self._send_all(server.broadcast_commit(self.scheme))
        if self._obs:
            # broadcast_commit re-evaluates the commit rule, so the
            # leader's index can advance here without any message
            # arriving (e.g. a single-member quorum).
            self._note_progress(server, server.role)
        deadline = self.sim.now + max_wait_ms
        self.sim.run_until(
            lambda: server.commit_len >= target_len
            or self.sim.now >= deadline
            or self.sim.pending() == 0
        )
        if server.commit_len < target_len:
            if self._obs:
                self._m_timeouts.inc()
            raise RuntimeError(
                f"request {record.index} did not commit within "
                f"{max_wait_ms}ms (commit_len={server.commit_len}, "
                f"target={target_len}, pending={self.sim.pending()})"
            )
        record.completed_ms = self.sim.now
        record.log_index = target_len
        if self._obs:
            self.tracer.record(
                "client_response", self.sim.now, leader_id,
                request=record.index, latency_ms=record.latency_ms,
            )
            self._m_completed.inc()
            self._h_latency.observe(record.latency_ms)
        return record

    def sync_followers(self, leader_id: NodeId, max_wait_ms: float = 1_000.0):
        """One extra broadcast so followers learn the commit index."""
        server = self.servers[leader_id]
        self._send_all(server.broadcast_commit(self.scheme))
        deadline = self.sim.now + max_wait_ms
        self.sim.run_until(
            lambda: self.sim.now >= deadline or self.sim.pending() == 0
        )

    # ------------------------------------------------------------------

    def committed_entries(self, nid: NodeId):
        return self.servers[nid].committed_log()

    def check_safety(self) -> List[str]:
        """The network-level safety check over the live cluster."""
        problems: List[str] = []
        items = sorted(
            (nid, s.committed_log()) for nid, s in self.servers.items()
        )
        for i, (nid_a, log_a) in enumerate(items):
            for nid_b, log_b in items[i + 1 :]:
                upto = min(len(log_a), len(log_b))
                if log_a[:upto] != log_b[:upto]:
                    problems.append(
                        f"S{nid_a}/S{nid_b} committed prefixes disagree"
                    )
        # The same engine the streaming monitor runs live: fold every
        # node's full log and commit point into one cache tree and
        # evaluate the core invariants.  This sees past the committed
        # prefixes -- e.g. two reconfig entries forked without an
        # intervening commit (Lemma B.8) are flagged here even though
        # no committed entry disagrees yet.
        from ..core.safety import IncrementalTreeChecker

        engine = IncrementalTreeChecker(
            frozenset(self.conf0), nodes=frozenset(self.servers)
        )
        for nid, server in sorted(self.servers.items()):
            engine.observe(nid, 0, list(server.log), server.commit_len)
        problems.extend(engine.violations())
        return problems

    def latencies(self) -> List[float]:
        """Latencies of completed requests, in submission order."""
        return [r.latency_ms for r in self.records if r.latency_ms is not None]
