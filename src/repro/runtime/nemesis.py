"""An autonomous chaos ("nemesis") driver over the simulated cluster.

Jepsen's architecture on the discrete-event simulator: a generator
produces client operations against the replicated KV store while a
nemesis process injects faults -- message drops/duplication/reordering
(via the :class:`~repro.runtime.simnet.FaultPlan` threaded through the
cluster's transport), leader crashes with delayed restarts, network
partitions with scheduled heals, and membership churn along a
reconfiguration trajectory (the Fig. 16 5→3→5 walk, under fire).

Every run records a client :class:`~repro.runtime.history.History` and
ends with the two checks the paper's safety story calls for:

* ``check_safety()`` -- committed prefixes agree across replicas, plus
  an at-most-once audit (no client request committed twice);
* the Wing–Gong linearizability check of the recorded history
  (:mod:`repro.runtime.linearize`).

Everything is deterministic per seed: the simulator, the fault plan,
and the operation generator each own a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.bundle import write_bundle
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..raft.server import LEADER
from ..schemes.single_node import RaftSingleNodeScheme
from .cluster import Cluster
from .failover import FailoverDriver
from .history import History
from .kvstore import materialize
from .linearize import LinearizabilityResult, check_history
from .simnet import FaultPlan, LatencyModel, NetworkConditions


#: The Fig. 16 membership walk (single-node scheme: one change per step).
FIG16_TRAJECTORY: Tuple[frozenset, ...] = (
    frozenset({1, 2, 3, 4}),
    frozenset({1, 2, 3}),
    frozenset({1, 2, 3, 4}),
    frozenset({1, 2, 3, 4, 5}),
)


@dataclass
class NemesisConfig:
    """One chaos run: workload mix, fault schedule, timeouts."""

    seed: int = 0
    ops: int = 500
    keys: int = 4
    initial_members: frozenset = frozenset({1, 2, 3})
    #: Nodes instantiated beyond the initial members (needed when the
    #: reconfiguration trajectory grows the cluster).
    extra_nodes: frozenset = frozenset()

    #: Operation mix (the remainder after reads/adds/deletes is puts).
    read_fraction: float = 0.3
    add_fraction: float = 0.35
    delete_fraction: float = 0.05

    #: Stochastic link faults, applied to every message.
    conditions: NetworkConditions = field(default_factory=NetworkConditions)
    latency: Optional[LatencyModel] = None

    #: Op indices at which the nemesis crashes the current leader.
    crash_leader_at: Tuple[int, ...] = ()
    #: Ops until a crashed node is restarted.
    restart_after_ops: int = 25
    #: Op index at which the current leader is partitioned away from
    #: the rest of the cluster (None = no partition).
    partition_at: Optional[int] = None
    #: How long the partition lasts, in simulated ms.
    partition_ms: float = 40.0
    partition_symmetric: bool = True

    #: Membership configurations to walk through, evenly spaced over
    #: the run; each must differ from its predecessor by one node.
    reconfig_trajectory: Tuple[frozenset, ...] = ()

    request_timeout_ms: float = 30.0
    election_timeout_ms: float = 200.0

    #: When False the driver runs without ``(client, seq)`` request ids
    #: -- the historical at-most-once bug, selectable as an explicit
    #: chaos discipline (and recorded in violation bundles, so a bundle
    #: of the resulting violation replays faithfully).
    client_request_ids: bool = True
    #: Ring-buffer capacity of the run's event tracer; 0 disables
    #: tracing entirely (the null tracer).
    trace_capacity: int = 200_000
    #: When set, a run that fails either checker writes a replayable
    #: violation bundle (config, verdicts, stats, metrics, trace,
    #: history) under this directory.
    bundle_dir: Optional[str] = None


@dataclass
class NemesisStats:
    """What actually happened during a run."""

    ops_attempted: int = 0
    ops_completed: int = 0
    ops_unknown: int = 0
    failovers: int = 0
    crashes_injected: int = 0
    restarts_injected: int = 0
    partitions_injected: int = 0
    reconfigs_done: int = 0
    reconfigs_failed: int = 0
    sim_ms: float = 0.0
    messages_sent: int = 0
    faults: str = ""

    def describe(self) -> str:
        return (
            f"{self.ops_completed}/{self.ops_attempted} ops ok "
            f"({self.ops_unknown} unknown), {self.failovers} failovers, "
            f"{self.crashes_injected} crashes, "
            f"{self.partitions_injected} partitions, "
            f"{self.reconfigs_done} reconfigs "
            f"({self.reconfigs_failed} failed), "
            f"{self.sim_ms:.1f} sim-ms, {self.messages_sent} msgs, "
            f"{self.faults}"
        )


@dataclass
class NemesisResult:
    """A finished chaos run, with both checkers' verdicts."""

    config: NemesisConfig
    history: History
    safety_violations: List[str]
    linearizability: LinearizabilityResult
    stats: NemesisStats
    #: The run's tracer (its ring buffer holds the event trace).
    tracer: Optional[Tracer] = None
    #: ``MetricsRegistry.snapshot()`` taken at the end of the run.
    metrics: Optional[dict] = None
    #: Where the violation bundle was written, when one was.
    bundle_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.safety_violations and self.linearizability.ok

    def describe(self) -> str:
        verdict = "OK" if self.ok else "VIOLATIONS FOUND"
        lines = [
            f"nemesis seed={self.config.seed}: {verdict}",
            f"  {self.stats.describe()}",
            f"  safety: {self.safety_violations or 'clean'}",
            f"  {self.linearizability.describe()}",
        ]
        if self.bundle_path is not None:
            lines.append(f"  violation bundle: {self.bundle_path}")
        return "\n".join(lines)


def duplicate_request_audit(cluster: Cluster) -> List[str]:
    """At-most-once audit: no request id committed more than once."""
    problems: List[str] = []
    for nid, server in sorted(cluster.servers.items()):
        counts: Dict[Tuple[str, int], int] = {}
        for entry in server.committed_log():
            if entry.request_id is not None:
                counts[entry.request_id] = counts.get(entry.request_id, 0) + 1
        for rid, count in sorted(counts.items()):
            if count > 1:
                problems.append(
                    f"S{nid} committed request {rid} {count} times"
                )
    return problems


def run_nemesis(config: NemesisConfig) -> NemesisResult:
    """Run one seeded chaos schedule; returns history plus verdicts.

    Every run is traced and metered (:mod:`repro.obs`); neither
    consumes randomness nor schedules simulator events, so results are
    identical to an uninstrumented run.  On a failed check the trace,
    metrics, config, and history are persisted as a replayable
    violation bundle when ``config.bundle_dir`` is set.
    """
    plan = FaultPlan(seed=config.seed + 1, conditions=config.conditions)
    tracer = (
        Tracer(capacity=config.trace_capacity)
        if config.trace_capacity > 0
        else NULL_TRACER
    )
    metrics = MetricsRegistry()
    nemesis_faults = metrics.counter("nemesis.fault_activations")
    all_nodes = (
        set(config.initial_members)
        | set(config.extra_nodes)
        | {nid for conf in config.reconfig_trajectory for nid in conf}
    )
    cluster = Cluster(
        config.initial_members,
        RaftSingleNodeScheme(),
        seed=config.seed,
        latency=config.latency,
        extra_nodes=all_nodes,
        faults=plan,
        tracer=tracer,
        metrics=metrics,
    )
    leader0 = min(config.initial_members)
    if not cluster.elect(leader0):
        cluster.elect(leader0)  # retry once; drops may eat a round
    driver = FailoverDriver(
        cluster,
        leader=leader0,
        request_timeout_ms=config.request_timeout_ms,
        election_timeout_ms=config.election_timeout_ms,
        use_request_ids=config.client_request_ids,
    )
    history = History()
    stats = NemesisStats()
    rng = random.Random(config.seed + 0xC0FFEE)

    crash_at = set(config.crash_leader_at)
    restarts_due: List[Tuple[int, int]] = []  # (op index, nid)
    reconfig_at: Dict[int, frozenset] = {}
    if config.reconfig_trajectory:
        spacing = max(1, config.ops // (len(config.reconfig_trajectory) + 1))
        for step, conf in enumerate(config.reconfig_trajectory):
            reconfig_at[(step + 1) * spacing] = frozenset(conf)

    def current_victim() -> Optional[int]:
        leader = cluster.leader()
        if leader is not None:
            return leader
        if not cluster.is_crashed(driver.leader):
            return driver.leader
        return None

    for i in range(config.ops):
        # -- nemesis actions scheduled for this op index ----------------
        for due, nid in list(restarts_due):
            if i >= due:
                cluster.restart(nid)
                stats.restarts_injected += 1
                nemesis_faults.inc()
                restarts_due.remove((due, nid))
        if i in crash_at:
            victim = current_victim()
            if victim is not None:
                cluster.crash(victim)
                stats.crashes_injected += 1
                nemesis_faults.inc()
                restarts_due.append((i + config.restart_after_ops, victim))
        if config.partition_at is not None and i == config.partition_at:
            victim = current_victim()
            if victim is None:
                # No live leader right now: partition around any live
                # node so the scheduled fault still happens.
                live = [
                    nid
                    for nid in sorted(cluster.servers)
                    if not cluster.is_crashed(nid)
                ]
                victim = live[0] if live else None
            if victim is not None:
                others = set(cluster.servers) - {victim}
                plan.add_partition(
                    cluster.sim.now,
                    cluster.sim.now + config.partition_ms,
                    {victim},
                    others,
                    symmetric=config.partition_symmetric,
                )
                stats.partitions_injected += 1
                nemesis_faults.inc()
                tracer.record(
                    "partition_start", cluster.sim.now, victim,
                    others=sorted(others),
                    heal_ms=cluster.sim.now + config.partition_ms,
                    symmetric=config.partition_symmetric,
                )
        if i in reconfig_at:
            try:
                driver.reconfigure(reconfig_at[i])
                stats.reconfigs_done += 1
            except RuntimeError:
                stats.reconfigs_failed += 1

        # -- one client operation ---------------------------------------
        stats.ops_attempted += 1
        key = f"k{rng.randrange(config.keys)}"
        draw = rng.random()
        try:
            if draw < config.read_fraction:
                op = history.invoke(
                    driver.client_id, "get", key, None, cluster.sim.now
                )
                record = driver.submit(("get", key))
                observed = materialize(
                    cluster.servers[driver.leader].log[: record.log_index]
                ).get(key)
                history.complete(op, cluster.sim.now, observed)
            elif draw < config.read_fraction + config.add_fraction:
                delta = rng.randrange(1, 10)
                op = history.invoke(
                    driver.client_id, "add", key, delta, cluster.sim.now
                )
                driver.submit(("add", key, delta))
                history.complete(op, cluster.sim.now, True)
            elif draw < (
                config.read_fraction
                + config.add_fraction
                + config.delete_fraction
            ):
                op = history.invoke(
                    driver.client_id, "delete", key, None, cluster.sim.now
                )
                driver.submit(("delete", key))
                history.complete(op, cluster.sim.now, True)
            else:
                value = rng.randrange(1000)
                op = history.invoke(
                    driver.client_id, "put", key, value, cluster.sim.now
                )
                driver.submit(("put", key, value))
                history.complete(op, cluster.sim.now, True)
            stats.ops_completed += 1
        except RuntimeError:
            # Timeout/unavailability: the op's outcome stays unknown.
            stats.ops_unknown += 1

    # -- wind down: heal everything, settle, and audit ------------------
    for _, nid in restarts_due:
        cluster.restart(nid)
    for nid in sorted(cluster.servers):
        if cluster.is_crashed(nid):
            cluster.restart(nid)
    try:
        if (
            cluster.is_crashed(driver.leader)
            or cluster.servers[driver.leader].role != LEADER
        ):
            driver._fail_over()
        driver.submit(("noop",))  # commit barrier at the final term
        cluster.sync_followers(driver.leader)
    except RuntimeError:
        pass

    stats.failovers = len(driver.events)
    stats.sim_ms = cluster.sim.now
    stats.messages_sent = cluster.messages_sent
    stats.faults = plan.describe()

    safety = cluster.check_safety()
    safety.extend(duplicate_request_audit(cluster))
    linearizability = check_history(history)
    gauges = metrics
    gauges.gauge("nemesis.sim_ms").set(stats.sim_ms)
    gauges.gauge("nemesis.ops_completed").set(stats.ops_completed)
    gauges.gauge("nemesis.ops_unknown").set(stats.ops_unknown)
    gauges.gauge("nemesis.reconfigs_done").set(stats.reconfigs_done)
    result = NemesisResult(
        config=config,
        history=history,
        safety_violations=safety,
        linearizability=linearizability,
        stats=stats,
        tracer=tracer,
        metrics=metrics.snapshot(),
    )
    if not result.ok and config.bundle_dir is not None:
        result.bundle_path = write_bundle(config.bundle_dir, result)
    return result


# ----------------------------------------------------------------------
# Per-shard fault schedules (the multi-group nemesis)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardFault:
    """One scheduled fault against one shard group, keyed to a global
    completed-operation count (so schedules are load-relative and
    deterministic per seed, not wall-clock flaky)."""

    at_op: int
    gid: int
    action: str  # "kill-leader" | "respawn" | "partition-leader" | "heal"

    def describe(self) -> str:
        return f"@{self.at_op} g{self.gid}:{self.action}"


def per_shard_schedule(
    seed: int,
    gids: Tuple[int, ...],
    ops: int,
    kills_per_group: int = 1,
    respawn_after_ops: int = 40,
    partition_groups: int = 1,
    partition_ops: int = 30,
) -> Tuple[ShardFault, ...]:
    """A deterministic multi-group fault schedule.

    Each group gets ``kills_per_group`` leader kills (each paired with
    a respawn ``respawn_after_ops`` later) and the first
    ``partition_groups`` groups get one leader partition (paired with a
    heal ``partition_ops`` later).  Fault points are jittered per seed
    inside the middle of the run -- the window where the shard
    scenario's split and merge migrations are in flight, which is
    exactly when losing a per-shard leader stresses the freeze/drain/
    install protocol.  Events are sorted by ``at_op``; a consumer pops
    every event whose ``at_op`` has passed its shared op counter.
    """
    if ops < 10:
        raise ValueError(f"{ops} ops leaves no room for a schedule")
    rng = random.Random(seed * 7919 + 0x5AD)
    window_lo, window_hi = ops // 5, (4 * ops) // 5
    events: List[ShardFault] = []
    for gid in sorted(gids):
        for _ in range(kills_per_group):
            at = rng.randrange(window_lo, window_hi)
            events.append(ShardFault(at, gid, "kill-leader"))
            events.append(
                ShardFault(at + respawn_after_ops, gid, "respawn")
            )
    for gid in sorted(gids)[:partition_groups]:
        at = rng.randrange(window_lo, window_hi)
        events.append(ShardFault(at, gid, "partition-leader"))
        events.append(ShardFault(at + partition_ops, gid, "heal"))
    return tuple(sorted(events, key=lambda e: (e.at_op, e.gid, e.action)))


def fig16_chaos_config(seed: int = 0, ops: int = 500) -> NemesisConfig:
    """The Fig. 16 5→3→5 trajectory under churn: drops, duplication,
    reordering, two leader crashes, and one mid-run partition."""
    return NemesisConfig(
        seed=seed,
        ops=ops,
        initial_members=frozenset({1, 2, 3, 4, 5}),
        reconfig_trajectory=FIG16_TRAJECTORY,
        conditions=NetworkConditions(
            drop_prob=0.01,
            duplicate_prob=0.01,
            reorder_prob=0.05,
            reorder_window_ms=2.0,
        ),
        crash_leader_at=(ops // 4, (5 * ops) // 8),
        partition_at=(3 * ops) // 8,
        partition_ms=40.0,
    )
