"""Client operation histories, Jepsen-style.

A history records every client invocation and response against the
replicated key-value store, with (simulated) wall-clock timestamps.
It is the input to the linearizability checker
(:mod:`repro.runtime.linearize`): an operation that received a
response *must* appear to take effect atomically between its
invocation and its response; an operation whose outcome is unknown (a
timeout -- the request may or may not have been applied) *may* take
effect at any point after its invocation, or never.

Operations use the kvstore command vocabulary: ``put``/``add``/
``delete`` are writes; ``get`` is a read whose ``result`` is the value
it observed (``None`` for an absent key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


#: Kinds of operations a history may contain.
WRITE_OPS = ("put", "add", "delete")
READ_OP = "get"


@dataclass
class Operation:
    """One client invocation and (maybe) its response."""

    op_id: int
    client: str
    op: str  # "put" | "add" | "delete" | "get"
    key: str
    #: put: the written value; add: the delta; get: unused on invoke.
    value: Any
    invoked_ms: float
    completed_ms: Optional[float] = None
    #: get: the observed value (None = key absent).  Writes: True.
    result: Any = None

    @property
    def completed(self) -> bool:
        return self.completed_ms is not None

    @property
    def is_read(self) -> bool:
        return self.op == READ_OP

    def describe(self) -> str:
        span = (
            f"[{self.invoked_ms:.2f}, {self.completed_ms:.2f}]"
            if self.completed
            else f"[{self.invoked_ms:.2f}, ?]"
        )
        return f"{self.client}#{self.op_id} {self.op}({self.key}) {span} -> {self.result!r}"


class History:
    """An append-only record of client operations."""

    def __init__(self) -> None:
        self.operations: List[Operation] = []

    def invoke(
        self, client: str, op: str, key: str, value: Any, now: float
    ) -> Operation:
        operation = Operation(
            op_id=len(self.operations),
            client=client,
            op=op,
            key=key,
            value=value,
            invoked_ms=now,
        )
        self.operations.append(operation)
        return operation

    def complete(self, operation: Operation, now: float, result: Any = True) -> None:
        operation.completed_ms = now
        operation.result = result

    # A failed operation simply never gets complete() called: its
    # outcome stays unknown and the checker treats it as optional.

    def completed(self) -> List[Operation]:
        return [op for op in self.operations if op.completed]

    def pending(self) -> List[Operation]:
        return [op for op in self.operations if not op.completed]

    def per_key(self) -> Dict[str, List[Operation]]:
        """Split by key (keys are independent sub-histories, so
        linearizability decomposes per key -- the standard locality
        property)."""
        split: Dict[str, List[Operation]] = {}
        for op in self.operations:
            split.setdefault(op.key, []).append(op)
        return split

    def __len__(self) -> int:
        return len(self.operations)
