"""An autonomous cluster: timeouts, heartbeats, self-driven elections.

The paper's conclusion points at liveness as the natural next step:
"This requires introducing a notion of time and an assumption of a
partially synchronous network."  The discrete-event simulator provides
exactly that, so this module builds the missing operational layer the
externally-driven :class:`~repro.runtime.cluster.Cluster` leaves out:

* every node runs a randomized **election timeout**; if no heartbeat
  arrives in time it campaigns on its own (and campaigns again, with a
  fresh randomized timeout, if the election splits);
* the leader broadcasts **heartbeats** (empty ``CommitReq`` rounds) on a
  fixed interval, which also carries the commit index to followers;
* crashes silence a node; restarts resume it with durable state.

The policy itself -- when to campaign, when to heartbeat, when a
received message counts as a heartbeat -- lives in the
transport-agnostic :class:`~repro.runtime.driver.ElectionDriver`; this
module supplies the simulated-network transport around one driver per
node.  The real-TCP runtime (:mod:`repro.net.node`) wraps the *same*
driver around an asyncio loop, so both runtimes exercise identical
election logic (``tests/runtime/test_driver_equivalence.py`` pins the
extraction: seeded runs are bit-identical to the pre-driver code).

With this in place liveness becomes *measurable*: time to first
leader, unavailability window after a leader crash, and liveness under
hot reconfiguration -- the quantities
``benchmarks/test_liveness_recovery.py`` reports.  Safety remains
checked throughout (the model makes no liveness claims, and neither do
we beyond measurement: a partially synchronous network with randomized
timeouts recovers with high probability, not certainty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.cache import Config, Method, NodeId
from ..core.config import ReconfigScheme
from ..raft.messages import CommitReq, ElectReq, Msg
from ..raft.server import LEADER, Server
from .driver import ElectionDriver, TimingConfig
from .simnet import LatencyModel, Simulator

__all__ = ["AutonomousCluster", "LeaderChange", "TimingConfig"]


@dataclass
class LeaderChange:
    """One observed leadership transition."""

    at_ms: float
    leader: NodeId
    term: int


class AutonomousCluster:
    """Specification servers driven entirely by timers and messages."""

    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        timing: Optional[TimingConfig] = None,
        processing_ms: float = 0.05,
        extra_nodes=(),
    ) -> None:
        self.scheme = scheme
        self.sim = Simulator(seed=seed)
        self.latency = latency or LatencyModel()
        self.timing = timing or TimingConfig()
        self.processing_ms = processing_ms
        nodes = set(scheme.members(conf0)) | set(extra_nodes)
        self.servers: Dict[NodeId, Server] = {
            nid: Server(nid=nid, conf0=conf0) for nid in sorted(nodes)
        }
        self._crashed: set = set()
        self._last_heartbeat: Dict[NodeId, float] = {
            nid: 0.0 for nid in self.servers
        }
        self.leader_changes: List[LeaderChange] = []
        # One policy driver per node, all drawing timeouts from the
        # simulator's seeded RNG (in arming order, which keeps seeded
        # runs reproducible -- and identical to the pre-driver code).
        self.drivers: Dict[NodeId, ElectionDriver] = {
            nid: ElectionDriver(
                server=self.servers[nid],
                scheme=scheme,
                timing=self.timing,
                rng=self.sim.rng,
                schedule=self.sim.schedule,
                send_all=self._send_all,
                is_active=lambda nid=nid: nid not in self._crashed,
                on_leader=lambda term, nid=nid: self._record_leader(nid, term),
            )
            for nid in self.servers
        }
        for nid in self.servers:
            self.drivers[nid].arm()

    def _record_leader(self, nid: NodeId, term: int) -> None:
        self.leader_changes.append(
            LeaderChange(at_ms=self.sim.now, leader=nid, term=term)
        )

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def _send_all(self, msgs) -> None:
        msgs = list(msgs)
        tx = self.latency.tx_per_entry_ms * sum(
            self._payload(m) for m in msgs
        )
        for msg in msgs:
            if msg.to not in self.servers:
                continue
            delay = tx + self.latency.sample(self.sim.rng, self._payload(msg))
            self.sim.schedule(delay, lambda m=msg: self._receive(m))

    def _payload(self, msg: Msg) -> int:
        if isinstance(msg, (ElectReq, CommitReq)):
            receiver = self.servers.get(msg.to)
            have = len(receiver.log) if receiver is not None else 0
            return max(0, len(msg.log) - have)
        return 0

    def _receive(self, msg: Msg) -> None:
        if msg.to in self._crashed:
            return
        responses, accepted = self.drivers[msg.to].on_message(msg)
        if accepted:
            self._last_heartbeat[msg.to] = self.sim.now
        self.sim.schedule(
            self.processing_ms, lambda: self._send_all(responses)
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def crash(self, nid: NodeId) -> None:
        """Fail-stop ``nid`` (durable log survives)."""
        self._crashed.add(nid)

    def restart(self, nid: NodeId) -> None:
        self._crashed.discard(nid)
        self.servers[nid].role = "follower"
        self.drivers[nid].arm()

    def leader(self) -> Optional[NodeId]:
        """The live leader with the highest term, if any."""
        best = None
        for nid, server in self.servers.items():
            if nid in self._crashed or server.role != LEADER:
                continue
            if best is None or server.time > self.servers[best].time:
                best = nid
        return best

    def wait_for_leader(self, max_wait_ms: float = 2_000.0) -> Optional[NodeId]:
        """Advance simulated time until some live node leads."""
        deadline = self.sim.now + max_wait_ms
        self.sim.run_until(
            lambda: self.leader() is not None or self.sim.now >= deadline
        )
        return self.leader()

    def submit(
        self, payload: Method, max_wait_ms: float = 2_000.0
    ) -> Optional[float]:
        """Submit one command to whoever currently leads; returns the
        commit latency or ``None`` on timeout (liveness, not safety)."""
        start = self.sim.now
        deadline = start + max_wait_ms
        while self.sim.now < deadline:
            leader = self.wait_for_leader(deadline - self.sim.now)
            if leader is None:
                return None
            server = self.servers[leader]
            if not server.invoke(payload):
                continue
            target = len(server.log)
            self._send_all(server.broadcast_commit(self.scheme))
            self.sim.run_until(
                lambda: server.commit_len >= target
                or server.role != LEADER
                or leader in self._crashed
                or self.sim.now >= deadline
            )
            if server.commit_len >= target:
                return self.sim.now - start
        return None

    def run_for(self, duration_ms: float) -> None:
        """Let the cluster run autonomously for a while."""
        deadline = self.sim.now + duration_ms
        self.sim.run_until(lambda: self.sim.now >= deadline)

    def check_safety(self) -> List[str]:
        problems: List[str] = []
        items = sorted(
            (nid, s.committed_log()) for nid, s in self.servers.items()
        )
        for i, (nid_a, log_a) in enumerate(items):
            for nid_b, log_b in items[i + 1 :]:
                upto = min(len(log_a), len(log_b))
                if log_a[:upto] != log_b[:upto]:
                    problems.append(
                        f"S{nid_a}/S{nid_b} committed prefixes disagree"
                    )
        return problems
