"""An autonomous cluster: timeouts, heartbeats, self-driven elections.

The paper's conclusion points at liveness as the natural next step:
"This requires introducing a notion of time and an assumption of a
partially synchronous network."  The discrete-event simulator provides
exactly that, so this module builds the missing operational layer the
externally-driven :class:`~repro.runtime.cluster.Cluster` leaves out:

* every node runs a randomized **election timeout**; if no heartbeat
  arrives in time it campaigns on its own (and campaigns again, with a
  fresh randomized timeout, if the election splits);
* the leader broadcasts **heartbeats** (empty ``CommitReq`` rounds) on a
  fixed interval, which also carries the commit index to followers;
* crashes silence a node; restarts resume it with durable state.

With this in place liveness becomes *measurable*: time to first
leader, unavailability window after a leader crash, and liveness under
hot reconfiguration -- the quantities
``benchmarks/test_liveness_recovery.py`` reports.  Safety remains
checked throughout (the model makes no liveness claims, and neither do
we beyond measurement: a partially synchronous network with randomized
timeouts recovers with high probability, not certainty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.cache import Config, Method, NodeId
from ..core.config import ReconfigScheme
from ..raft.messages import CommitReq, ElectReq, Msg
from ..raft.server import LEADER, Server
from .simnet import LatencyModel, Simulator


@dataclass
class TimingConfig:
    """The partial-synchrony knobs."""

    #: Leader heartbeat period.
    heartbeat_ms: float = 5.0
    #: Election timeout window [min, max); each arming draws uniformly.
    election_timeout_min_ms: float = 15.0
    election_timeout_max_ms: float = 30.0


@dataclass
class LeaderChange:
    """One observed leadership transition."""

    at_ms: float
    leader: NodeId
    term: int


class AutonomousCluster:
    """Specification servers driven entirely by timers and messages."""

    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        timing: Optional[TimingConfig] = None,
        processing_ms: float = 0.05,
        extra_nodes=(),
    ) -> None:
        self.scheme = scheme
        self.sim = Simulator(seed=seed)
        self.latency = latency or LatencyModel()
        self.timing = timing or TimingConfig()
        self.processing_ms = processing_ms
        nodes = set(scheme.members(conf0)) | set(extra_nodes)
        self.servers: Dict[NodeId, Server] = {
            nid: Server(nid=nid, conf0=conf0) for nid in sorted(nodes)
        }
        self._crashed: set = set()
        #: Monotone per-node timer epochs: rearming bumps the epoch so a
        #: stale timer event becomes a no-op.
        self._timer_epoch: Dict[NodeId, int] = {nid: 0 for nid in self.servers}
        self._last_heartbeat: Dict[NodeId, float] = {
            nid: 0.0 for nid in self.servers
        }
        self.leader_changes: List[LeaderChange] = []
        for nid in self.servers:
            self._arm_election_timer(nid)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _draw_timeout(self) -> float:
        lo = self.timing.election_timeout_min_ms
        hi = self.timing.election_timeout_max_ms
        return lo + self.sim.rng.random() * (hi - lo)

    def _arm_election_timer(self, nid: NodeId) -> None:
        self._timer_epoch[nid] += 1
        epoch = self._timer_epoch[nid]
        self.sim.schedule(
            self._draw_timeout(), lambda: self._election_timer_fired(nid, epoch)
        )

    def _election_timer_fired(self, nid: NodeId, epoch: int) -> None:
        if epoch != self._timer_epoch[nid] or nid in self._crashed:
            return
        server = self.servers[nid]
        members = self.scheme.members(server.config())
        if nid in members and server.role != LEADER:
            self._send_all(server.start_election(self.scheme))
            if server.role == LEADER:
                self._became_leader(nid)
        self._arm_election_timer(nid)

    def _became_leader(self, nid: NodeId) -> None:
        server = self.servers[nid]
        self.leader_changes.append(
            LeaderChange(at_ms=self.sim.now, leader=nid, term=server.time)
        )
        self._heartbeat(nid, server.time)

    def _heartbeat(self, nid: NodeId, term: int) -> None:
        server = self.servers[nid]
        if (
            nid in self._crashed
            or server.role != LEADER
            or server.time != term
        ):
            return  # dethroned or dead: stop this heartbeat chain
        self._send_all(server.broadcast_commit(self.scheme))
        self.sim.schedule(
            self.timing.heartbeat_ms, lambda: self._heartbeat(nid, term)
        )

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def _send_all(self, msgs) -> None:
        msgs = list(msgs)
        tx = self.latency.tx_per_entry_ms * sum(
            self._payload(m) for m in msgs
        )
        for msg in msgs:
            if msg.to not in self.servers:
                continue
            delay = tx + self.latency.sample(self.sim.rng, self._payload(msg))
            self.sim.schedule(delay, lambda m=msg: self._receive(m))

    def _payload(self, msg: Msg) -> int:
        if isinstance(msg, (ElectReq, CommitReq)):
            receiver = self.servers.get(msg.to)
            have = len(receiver.log) if receiver is not None else 0
            return max(0, len(msg.log) - have)
        return 0

    def _receive(self, msg: Msg) -> None:
        if msg.to in self._crashed:
            return
        server = self.servers[msg.to]
        was_leader = server.role == LEADER
        responses = server.handle(msg, self.scheme)
        if isinstance(msg, (CommitReq, ElectReq)) and responses:
            # Any accepted traffic from a live leader/candidate counts
            # as a heartbeat: push the election timer out.
            self._last_heartbeat[msg.to] = self.sim.now
            self._arm_election_timer(msg.to)
        if not was_leader and server.role == LEADER:
            self._became_leader(msg.to)
        self.sim.schedule(
            self.processing_ms, lambda: self._send_all(responses)
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def crash(self, nid: NodeId) -> None:
        """Fail-stop ``nid`` (durable log survives)."""
        self._crashed.add(nid)

    def restart(self, nid: NodeId) -> None:
        self._crashed.discard(nid)
        self.servers[nid].role = "follower"
        self._arm_election_timer(nid)

    def leader(self) -> Optional[NodeId]:
        """The live leader with the highest term, if any."""
        best = None
        for nid, server in self.servers.items():
            if nid in self._crashed or server.role != LEADER:
                continue
            if best is None or server.time > self.servers[best].time:
                best = nid
        return best

    def wait_for_leader(self, max_wait_ms: float = 2_000.0) -> Optional[NodeId]:
        """Advance simulated time until some live node leads."""
        deadline = self.sim.now + max_wait_ms
        self.sim.run_until(
            lambda: self.leader() is not None or self.sim.now >= deadline
        )
        return self.leader()

    def submit(
        self, payload: Method, max_wait_ms: float = 2_000.0
    ) -> Optional[float]:
        """Submit one command to whoever currently leads; returns the
        commit latency or ``None`` on timeout (liveness, not safety)."""
        start = self.sim.now
        deadline = start + max_wait_ms
        while self.sim.now < deadline:
            leader = self.wait_for_leader(deadline - self.sim.now)
            if leader is None:
                return None
            server = self.servers[leader]
            if not server.invoke(payload):
                continue
            target = len(server.log)
            self._send_all(server.broadcast_commit(self.scheme))
            self.sim.run_until(
                lambda: server.commit_len >= target
                or server.role != LEADER
                or leader in self._crashed
                or self.sim.now >= deadline
            )
            if server.commit_len >= target:
                return self.sim.now - start
        return None

    def run_for(self, duration_ms: float) -> None:
        """Let the cluster run autonomously for a while."""
        deadline = self.sim.now + duration_ms
        self.sim.run_until(lambda: self.sim.now >= deadline)

    def check_safety(self) -> List[str]:
        problems: List[str] = []
        items = sorted(
            (nid, s.committed_log()) for nid, s in self.servers.items()
        )
        for i, (nid_a, log_a) in enumerate(items):
            for nid_b, log_b in items[i + 1 :]:
                upto = min(len(log_a), len(log_b))
                if log_a[:upto] != log_b[:upto]:
                    problems.append(
                        f"S{nid_a}/S{nid_b} committed prefixes disagree"
                    )
        return problems
