"""A replicated key-value store on top of the cluster.

The paper's running example (Section 2.2) is a distributed key-value
store whose ``put`` goes through the consensus machinery; methods in
the model are opaque, and this module supplies the application-level
interpretation: commands are encoded as tuples, the committed log is
folded into a dictionary, and reads are served from committed state
only (linearizable reads at the leader).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core.cache import Config, NodeId
from ..core.config import ReconfigScheme
from .cluster import Cluster
from .simnet import FaultPlan, LatencyModel


#: ("put", key, value) | ("add", key, delta) | ("delete", key)
#: | ("get", key) | ("noop",)
Command = Tuple


def apply_command(store: Dict[str, Any], command: Command) -> None:
    """Apply one committed command to a materialized dictionary.

    ``add`` is a non-idempotent read-modify-write (a counter
    increment): re-applying a duplicated entry visibly corrupts the
    state, which is what makes at-most-once retry bugs detectable by
    the linearizability checker.  ``get`` and ``noop`` entries are
    protocol/read markers that do not change the state.
    """
    op = command[0]
    if op == "put":
        _, key, value = command
        store[key] = value
    elif op == "add":
        _, key, delta = command
        store[key] = store.get(key, 0) + delta
    elif op == "delete":
        _, key = command
        store.pop(key, None)
    elif op in ("get", "noop"):
        pass
    else:
        raise ValueError(f"unknown command {command!r}")


def materialize(entries) -> Dict[str, Any]:
    """Fold a committed log into the key-value state (skips config
    entries -- they are consumed by the protocol, not the app)."""
    store: Dict[str, Any] = {}
    for entry in entries:
        if not entry.is_config:
            apply_command(store, entry.payload)
    return store


class ReplicatedKV:
    """A strongly-consistent key-value store over a simulated cluster."""

    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        seed: int = 0,
        leader: Optional[NodeId] = None,
        extra_nodes=(),
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.cluster = Cluster(
            conf0,
            scheme,
            seed=seed,
            extra_nodes=extra_nodes,
            latency=latency,
            faults=faults,
        )
        self.leader = leader if leader is not None else min(scheme.members(conf0))
        if not self.cluster.elect(self.leader):
            raise RuntimeError("initial election failed")

    def put(self, key: str, value: Any) -> float:
        """Replicate a ``put``; returns the commit latency in ms."""
        record = self.cluster.submit(("put", key, value), self.leader)
        return record.latency_ms

    def add(self, key: str, delta: int = 1) -> float:
        """Replicate a counter increment; returns the commit latency."""
        record = self.cluster.submit(("add", key, delta), self.leader)
        return record.latency_ms

    def delete(self, key: str) -> float:
        """Replicate a ``delete``; returns the commit latency in ms."""
        record = self.cluster.submit(("delete", key), self.leader)
        return record.latency_ms

    def get(self, key: str, default: Any = None) -> Any:
        """Read from the leader's committed state."""
        return self.snapshot().get(key, default)

    def snapshot(self) -> Dict[str, Any]:
        """The full committed key-value state at the leader."""
        return materialize(self.cluster.committed_entries(self.leader))

    def snapshot_at(self, nid: NodeId) -> Dict[str, Any]:
        """A replica's committed view (a prefix of the leader's)."""
        return materialize(self.cluster.committed_entries(nid))

    def reconfigure(self, new_conf: Config) -> float:
        """Change the membership without stopping the store."""
        record = self.cluster.submit_reconfig(new_conf, self.leader)
        return record.latency_ms

    def sync(self) -> None:
        """Push the commit index out to all followers."""
        self.cluster.sync_followers(self.leader)
