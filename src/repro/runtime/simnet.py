"""A discrete-event network simulator.

This is the reproduction's substitute for the paper's EC2 deployment
(Section 7, Fig. 16): the extracted-OCaml-plus-real-network stack
becomes the *same specification handlers* scheduled over a simulated
network with realistic latency behaviour.  The simulator provides:

* a virtual clock and event heap (:class:`Simulator`);
* a latency model (:class:`LatencyModel`) with a base one-way delay,
  multiplicative jitter, occasional spikes (the paper observes sporadic
  latency spikes on EC2 and notes reconfiguration delays stay within
  their range), and a per-log-entry transfer cost that makes shipping a
  long log to a freshly added replica visibly slower -- the effect that
  makes "increasing the number of nodes" the more expensive direction
  in Fig. 16.

All randomness is seeded, so runs are reproducible; the eight-run
aggregation of the figure uses eight different seeds.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class LatencyModel:
    """One-way message latency in (simulated) milliseconds."""

    #: Base one-way latency between two nodes.
    base_ms: float = 0.4
    #: Multiplicative jitter: each message's latency is scaled by a
    #: lognormal-ish factor in [1, 1 + jitter] on average.
    jitter: float = 0.5
    #: Probability of a sporadic spike (network hiccup, GC pause, ...).
    spike_prob: float = 0.01
    #: Spike magnitude: multiplies the base latency.
    spike_scale: float = 25.0
    #: Additional cost per log entry carried by a message (models
    #: serialized log transfer; dominant when catching up a new node).
    per_entry_ms: float = 0.02
    #: Sender-side serialization cost per entry: a broadcast batch that
    #: includes a full-log catch-up message delays the *whole batch* by
    #: this much per shipped entry (the leader serializes before
    #: handing to the transport).  This is what makes the request
    #: during which a fresh node joins visibly slower -- the Fig. 16
    #: "increasing the number of nodes" spike.
    tx_per_entry_ms: float = 0.002

    def sample(self, rng: random.Random, payload_entries: int = 0) -> float:
        """One latency draw for a message carrying ``payload_entries``."""
        latency = self.base_ms * (1.0 + rng.random() * self.jitter)
        latency += payload_entries * self.per_entry_ms
        if rng.random() < self.spike_prob:
            latency += self.base_ms * self.spike_scale * rng.random()
        return latency


@dataclass
class NetworkConditions:
    """Stochastic link faults, applied independently to every message.

    All probabilities are evaluated against the :class:`FaultPlan`'s
    own RNG (not the simulator's latency RNG), so turning faults on or
    off never perturbs the latency draws of an otherwise identical run.
    """

    #: Probability that a message is silently lost.
    drop_prob: float = 0.0
    #: Probability that a message is delivered twice (the duplicate
    #: takes an independent latency draw, so the copies may reorder).
    duplicate_prob: float = 0.0
    #: Probability that a message is held back by an extra random delay
    #: in [0, reorder_window_ms), letting later messages overtake it.
    reorder_prob: float = 0.0
    #: Width of the reordering window.
    reorder_window_ms: float = 5.0
    #: Per-link drop-probability overrides, keyed by ``(frm, to)``;
    #: links not listed fall back to :attr:`drop_prob`.
    link_drop_prob: Dict[Tuple[int, int], float] = field(default_factory=dict)


@dataclass
class Partition:
    """A network partition between two node groups, active during
    ``[start_ms, heal_ms)``.

    ``symmetric`` partitions block both directions; an asymmetric one
    only blocks ``a → b`` (e.g. a leader whose outbound heartbeats
    still arrive but whose acks are lost).
    """

    start_ms: float
    heal_ms: float
    a: frozenset
    b: frozenset
    symmetric: bool = True

    def blocks(self, frm, to, now: float) -> bool:
        if not (self.start_ms <= now < self.heal_ms):
            return False
        if frm in self.a and to in self.b:
            return True
        return self.symmetric and frm in self.b and to in self.a


@dataclass
class CrashEvent:
    """A scheduled fail-stop crash, with an optional restart."""

    nid: int
    at_ms: float
    restart_ms: Optional[float] = None


@dataclass
class FaultPlan:
    """A deterministic, seeded schedule of network and node faults.

    The plan owns its own :class:`random.Random`; every stochastic
    decision (drop, duplicate, reorder) consumes from it in simulator
    event order, so a run is fully reproducible from
    ``(simulator seed, fault seed)``.  Counters record what was
    actually injected, for reporting.
    """

    seed: int = 0
    conditions: NetworkConditions = field(default_factory=NetworkConditions)
    partitions: List[Partition] = field(default_factory=list)
    crashes: List[CrashEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.partition_blocked = 0

    # -- schedule construction -----------------------------------------

    def add_partition(
        self,
        start_ms: float,
        heal_ms: float,
        a,
        b,
        symmetric: bool = True,
    ) -> Partition:
        partition = Partition(
            start_ms=start_ms,
            heal_ms=heal_ms,
            a=frozenset(a),
            b=frozenset(b),
            symmetric=symmetric,
        )
        self.partitions.append(partition)
        return partition

    def add_crash(
        self, nid, at_ms: float, restart_ms: Optional[float] = None
    ) -> CrashEvent:
        event = CrashEvent(nid=nid, at_ms=at_ms, restart_ms=restart_ms)
        self.crashes.append(event)
        return event

    # -- per-message decisions (called at delivery-scheduling time) ----

    def partitioned(self, frm, to, now: float) -> bool:
        return any(p.blocks(frm, to, now) for p in self.partitions)

    def should_drop(self, frm, to, now: float) -> bool:
        """Partition check plus the stochastic per-link drop."""
        if self.partitioned(frm, to, now):
            self.partition_blocked += 1
            return True
        prob = self.conditions.link_drop_prob.get(
            (frm, to), self.conditions.drop_prob
        )
        if prob > 0 and self.rng.random() < prob:
            self.dropped += 1
            return True
        return False

    def should_duplicate(self) -> bool:
        prob = self.conditions.duplicate_prob
        if prob > 0 and self.rng.random() < prob:
            self.duplicated += 1
            return True
        return False

    def reorder_delay(self) -> float:
        """Extra delay for this copy; 0.0 when not reordered."""
        prob = self.conditions.reorder_prob
        if prob > 0 and self.rng.random() < prob:
            self.reordered += 1
            return self.rng.random() * self.conditions.reorder_window_ms
        return 0.0

    def describe(self) -> str:
        return (
            f"faults(seed={self.seed}: dropped={self.dropped}, "
            f"duplicated={self.duplicated}, reordered={self.reordered}, "
            f"partition_blocked={self.partition_blocked}, "
            f"partitions={len(self.partitions)}, crashes={len(self.crashes)})"
        )


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class Simulator:
    """A minimal discrete-event loop with a virtual millisecond clock."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: List[_Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay_ms`` simulated milliseconds from now."""
        if delay_ms < 0:
            raise ValueError(f"negative delay {delay_ms}")
        self._seq += 1
        heapq.heappush(self._heap, _Event(self.now + delay_ms, self._seq, action))

    def step(self) -> bool:
        """Process one event; returns False when the heap is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        event.action()
        self.events_processed += 1
        return True

    def run_until(
        self, condition: Callable[[], bool], max_events: int = 1_000_000
    ) -> bool:
        """Advance until ``condition`` holds; False if events ran out or
        the safety valve tripped."""
        for _ in range(max_events):
            if condition():
                return True
            if not self.step():
                return condition()
        raise RuntimeError("simulation exceeded max_events")

    def drain(self, max_events: int = 1_000_000) -> None:
        """Process all remaining events."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded max_events")

    def pending(self) -> int:
        return len(self._heap)
