"""A discrete-event network simulator.

This is the reproduction's substitute for the paper's EC2 deployment
(Section 7, Fig. 16): the extracted-OCaml-plus-real-network stack
becomes the *same specification handlers* scheduled over a simulated
network with realistic latency behaviour.  The simulator provides:

* a virtual clock and event heap (:class:`Simulator`);
* a latency model (:class:`LatencyModel`) with a base one-way delay,
  multiplicative jitter, occasional spikes (the paper observes sporadic
  latency spikes on EC2 and notes reconfiguration delays stay within
  their range), and a per-log-entry transfer cost that makes shipping a
  long log to a freshly added replica visibly slower -- the effect that
  makes "increasing the number of nodes" the more expensive direction
  in Fig. 16.

All randomness is seeded, so runs are reproducible; the eight-run
aggregation of the figure uses eight different seeds.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class LatencyModel:
    """One-way message latency in (simulated) milliseconds."""

    #: Base one-way latency between two nodes.
    base_ms: float = 0.4
    #: Multiplicative jitter: each message's latency is scaled by a
    #: lognormal-ish factor in [1, 1 + jitter] on average.
    jitter: float = 0.5
    #: Probability of a sporadic spike (network hiccup, GC pause, ...).
    spike_prob: float = 0.01
    #: Spike magnitude: multiplies the base latency.
    spike_scale: float = 25.0
    #: Additional cost per log entry carried by a message (models
    #: serialized log transfer; dominant when catching up a new node).
    per_entry_ms: float = 0.02
    #: Sender-side serialization cost per entry: a broadcast batch that
    #: includes a full-log catch-up message delays the *whole batch* by
    #: this much per shipped entry (the leader serializes before
    #: handing to the transport).  This is what makes the request
    #: during which a fresh node joins visibly slower -- the Fig. 16
    #: "increasing the number of nodes" spike.
    tx_per_entry_ms: float = 0.002

    def sample(self, rng: random.Random, payload_entries: int = 0) -> float:
        """One latency draw for a message carrying ``payload_entries``."""
        latency = self.base_ms * (1.0 + rng.random() * self.jitter)
        latency += payload_entries * self.per_entry_ms
        if rng.random() < self.spike_prob:
            latency += self.base_ms * self.spike_scale * rng.random()
        return latency


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class Simulator:
    """A minimal discrete-event loop with a virtual millisecond clock."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: List[_Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay_ms`` simulated milliseconds from now."""
        if delay_ms < 0:
            raise ValueError(f"negative delay {delay_ms}")
        self._seq += 1
        heapq.heappush(self._heap, _Event(self.now + delay_ms, self._seq, action))

    def step(self) -> bool:
        """Process one event; returns False when the heap is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        event.action()
        self.events_processed += 1
        return True

    def run_until(
        self, condition: Callable[[], bool], max_events: int = 1_000_000
    ) -> bool:
        """Advance until ``condition`` holds; False if events ran out or
        the safety valve tripped."""
        for _ in range(max_events):
            if condition():
                return True
            if not self.step():
                return condition()
        raise RuntimeError("simulation exceeded max_events")

    def drain(self, max_events: int = 1_000_000) -> None:
        """Process all remaining events."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded max_events")

    def pending(self) -> int:
        return len(self._heap)
