"""The multi-Paxos-style network specification.

Everything above the per-replica handlers is inherited from
:class:`repro.raft.spec.RaftSystem` -- the two-bag network, the five
operations, event traces, replay, and the committed-prefix safety
check -- demonstrating the paper's point that Adore's four operations
map onto "the election, commit, and local log update phases found in
most consensus protocols".
"""

from __future__ import annotations

from ..raft.spec import RaftSystem
from .server import PaxosServer


class PaxosSystem(RaftSystem):
    """The Raft system shell over Paxos-style handlers."""

    SERVER_CLS = PaxosServer
