"""SPaxos: the Paxos variant under SRaft's scheduling assumptions.

:class:`repro.raft.sraft.SRaftSystem`'s atomic election/commit rounds
are written against the generic handler interface, so the synchronized
scheduler carries over unchanged; only the per-replica handlers differ.
In an atomic Paxos election round, ``granted`` collects the promisers
-- every validly delivered prepare yields a promise, so unlike Raft
there are no denial-style receivers.
"""

from __future__ import annotations

from ..raft.sraft import SRaftSystem
from .server import PaxosServer


class SPaxosSystem(SRaftSystem):
    """Atomic-round scheduling over Paxos-style handlers."""

    SERVER_CLS = PaxosServer
