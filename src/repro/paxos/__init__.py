"""A multi-Paxos-style protocol variant (Appendix A's other half).

Same state shape and commit phase as the Raft-like spec, but elections
follow Paxos: acceptors promise unconditionally and report their logs;
the candidate adopts the most up-to-date one.  This makes the variant
the protocol for which Adore's ``pull`` (adopt ``mostRecent`` among the
supporters) is the *identity* mapping -- see
:class:`repro.refinement.simulation.PaxosSimulationChecker`.
"""

from .messages import Accepted, AcceptReq, PaxosMsg, PrepareReq, Promise, ballot_for
from .server import BALLOT_MODULUS, PaxosServer
from .spec import PaxosSystem

__all__ = [
    "Accepted",
    "AcceptReq",
    "BALLOT_MODULUS",
    "PaxosMsg",
    "PaxosServer",
    "PaxosSystem",
    "PrepareReq",
    "Promise",
    "ballot_for",
]
