"""Message types of the multi-Paxos-style specification.

Appendix A contrasts the two election styles: "In Paxos, replicas
respond to the candidate with their own logs, and the candidate chooses
the one whose last entry has the latest timestamp.  A candidate in Raft
sends its log to the replicas, which compare against their own logs to
decide how to vote."  The Paxos variant therefore has four message
kinds whose *election* half differs from Raft's: the prepare request
carries no log, and the promise carries the voter's.

Log entries are shared with the Raft spec (:class:`LogEntry`), as is
the commit phase's shape (accept ≈ commit request, accepted ≈ ack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.cache import NodeId, Time
from ..raft.messages import Log


@dataclass(frozen=True)
class PrepareReq:
    """Phase-1a: a candidate asks for promises at ballot ``time``."""

    frm: NodeId
    to: NodeId
    time: Time


@dataclass(frozen=True)
class Promise:
    """Phase-1b: the acceptor promises and reports its own log."""

    frm: NodeId
    to: NodeId
    time: Time
    log: Log


@dataclass(frozen=True)
class AcceptReq:
    """Phase-2a: the leader replicates its (adopted+extended) log."""

    frm: NodeId
    to: NodeId
    time: Time
    log: Log
    commit_len: int


@dataclass(frozen=True)
class Accepted:
    """Phase-2b: the acceptor's acknowledgement up to ``acked_len``."""

    frm: NodeId
    to: NodeId
    time: Time
    acked_len: int


PaxosMsg = Union[PrepareReq, Promise, AcceptReq, Accepted]


def ballot_for(nid: NodeId, above: Time, modulus: int) -> Time:
    """The smallest ballot owned by ``nid`` strictly above ``above``.

    Classic disjoint ballot spaces: node ``nid`` owns the ballots
    congruent to ``nid`` modulo ``modulus``, so two candidates can never
    collide on a ballot -- the Paxos counterpart of Raft's randomized
    timeouts plus per-term single vote.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    base = (above // modulus) * modulus + (nid % modulus)
    while base <= above:
        base += modulus
    return base
