"""Per-replica handlers of the multi-Paxos-style specification.

Shares the Raft server's shape (so :class:`repro.raft.spec.RaftSystem`
can drive it unchanged) but implements Paxos-style elections:

* promises are unconditional for fresh ballots (no log comparison at
  the voter -- the candidate does the comparison);
* the winning candidate *adopts* the most up-to-date log among its
  promises (plus its own), which is exactly Adore's
  ``mostRecent``-based pull -- the Paxos variant is the protocol for
  which the model's pull semantics is the identity mapping;
* the quorum is judged against the configuration carried by the
  adopted log (hot reconfiguration), as in the Raft variant.

The commit phase, invoke/reconfig (with R1⁺/R2/R3 guards), and the
commit-advance rule are structurally identical to Raft's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cache import Config, Method, NodeId, Time
from ..core.config import ReconfigScheme
from ..raft.messages import Log, LogEntry, log_order_key
from ..raft.server import CANDIDATE, FOLLOWER, LEADER, config_of
from .messages import Accepted, AcceptReq, ballot_for, PaxosMsg, PrepareReq, Promise

#: Ballot space modulus: supports node ids below this bound.
BALLOT_MODULUS = 64


@dataclass
class PaxosServer:
    """One replica of the Paxos-style specification."""

    nid: NodeId
    conf0: Config
    time: Time = 0
    log: Log = ()
    commit_len: int = 0
    role: str = FOLLOWER
    #: Collected promises of the current candidacy: nid → promised log.
    promises: Dict[NodeId, Log] = field(default_factory=dict)
    acked: Dict[NodeId, int] = field(default_factory=dict)

    # -- shared derived state (same contract as the Raft server) ------

    def config(self) -> Config:
        return config_of(self.log, self.conf0)

    def committed_log(self) -> Log:
        return self.log[: self.commit_len]

    def next_vrsn(self) -> int:
        if self.log and self.log[-1].time == self.time:
            return self.log[-1].vrsn + 1
        return 1

    def has_committed_config_change_pending(self) -> bool:
        return any(entry.is_config for entry in self.log[self.commit_len :])

    def has_commit_at_current_time(self) -> bool:
        return any(
            entry.time == self.time for entry in self.log[: self.commit_len]
        )

    # -- operations -----------------------------------------------------

    def start_election(self, scheme: ReconfigScheme) -> List[PaxosMsg]:
        """Phase 1: pick a fresh owned ballot and solicit promises."""
        self.time = ballot_for(self.nid, self.time, BALLOT_MODULUS)
        self.role = CANDIDATE
        self.promises = {self.nid: self.log}
        self.acked = {}
        self._maybe_win(scheme)
        return [
            PrepareReq(frm=self.nid, to=peer, time=self.time)
            for peer in sorted(scheme.members(self.config()))
            if peer != self.nid
        ]

    def invoke(self, method: Method) -> bool:
        if self.role != LEADER:
            return False
        entry = LogEntry(time=self.time, vrsn=self.next_vrsn(), payload=method)
        self.log = self.log + (entry,)
        self.acked[self.nid] = len(self.log)
        return True

    def reconfig(
        self,
        new_conf: Config,
        scheme: ReconfigScheme,
        enforce_r2: bool = True,
        enforce_r3: bool = True,
    ) -> Tuple[bool, str]:
        if self.role != LEADER:
            return False, "not-leader"
        if not scheme.r1_plus(self.config(), new_conf):
            return False, "r1-denied"
        if enforce_r2 and self.has_committed_config_change_pending():
            return False, "r2-denied"
        if enforce_r3 and not self.has_commit_at_current_time():
            return False, "r3-denied"
        entry = LogEntry(
            time=self.time,
            vrsn=self.next_vrsn(),
            payload=new_conf,
            is_config=True,
        )
        self.log = self.log + (entry,)
        self.acked[self.nid] = len(self.log)
        return True, "ok"

    def broadcast_commit(self, scheme: ReconfigScheme) -> List[PaxosMsg]:
        if self.role != LEADER:
            return []
        # Self-quorum schemes (primary-backup) commit on the leader's own
        # ack; re-evaluate before broadcasting.
        self._advance_commit(scheme)
        return [
            AcceptReq(
                frm=self.nid,
                to=peer,
                time=self.time,
                log=self.log,
                commit_len=self.commit_len,
            )
            for peer in sorted(scheme.members(self.config()))
            if peer != self.nid
        ]

    # -- handlers ---------------------------------------------------------

    def would_accept(self, msg: PaxosMsg) -> bool:
        if isinstance(msg, PrepareReq):
            return msg.time > self.time
        if isinstance(msg, Promise):
            return self.role == CANDIDATE and msg.time == self.time
        if isinstance(msg, AcceptReq):
            return msg.time >= self.time and log_order_key(msg.log) >= (
                log_order_key(self.log)
            )
        if isinstance(msg, Accepted):
            return self.role == LEADER and msg.time == self.time
        raise TypeError(f"unknown message {msg!r}")

    def handle(self, msg: PaxosMsg, scheme: ReconfigScheme) -> List[PaxosMsg]:
        if not self.would_accept(msg):
            return []
        if isinstance(msg, PrepareReq):
            # Promise unconditionally: report our log, advance our
            # promised ballot, step down.
            self.time = msg.time
            self.role = FOLLOWER
            return [
                Promise(frm=self.nid, to=msg.frm, time=msg.time, log=self.log)
            ]
        if isinstance(msg, Promise):
            self.promises[msg.frm] = msg.log
            self._maybe_win(scheme)
            return []
        if isinstance(msg, AcceptReq):
            self.time = msg.time
            if self.nid != msg.frm:
                self.role = FOLLOWER
            self.log = msg.log
            self.commit_len = max(
                self.commit_len, min(msg.commit_len, len(self.log))
            )
            return [
                Accepted(
                    frm=self.nid,
                    to=msg.frm,
                    time=msg.time,
                    acked_len=len(self.log),
                )
            ]
        previous = self.acked.get(msg.frm, 0)
        self.acked[msg.frm] = max(previous, msg.acked_len)
        self._advance_commit(scheme)
        return []

    def _maybe_win(self, scheme: Optional[ReconfigScheme]) -> None:
        if scheme is None or self.role != CANDIDATE:
            return
        best = max(self.promises.values(), key=log_order_key)
        # The quorum is judged against the configuration of the log the
        # candidate would adopt -- Adore's Q_ok = isQuorum(Q, conf(C_max)).
        adopted_conf = config_of(best, self.conf0)
        if scheme.is_quorum(frozenset(self.promises), adopted_conf):
            self.role = LEADER
            self.log = best
            self.acked = {self.nid: len(self.log)}

    def _advance_commit(self, scheme: ReconfigScheme) -> None:
        for length in range(len(self.log), self.commit_len, -1):
            if self.log[length - 1].time != self.time:
                continue
            ackers = frozenset(
                nid for nid, acked in self.acked.items() if acked >= length
            )
            if scheme.is_quorum(ackers, self.config()):
                self.commit_len = length
                return

    # -- observation ------------------------------------------------------

    def snapshot(self) -> Tuple:
        return (self.log, self.time)

    def describe(self) -> str:
        entries = ", ".join(e.describe() for e in self.log)
        return (
            f"P{self.nid}[{self.role} b{self.time} commit={self.commit_len}] "
            f"log=[{entries}]"
        )
