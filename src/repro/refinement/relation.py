"""The refinement relation ℝ between Raft and Adore state (Fig. 17/18).

The load-bearing component is ``logMatch``: every replica's local log
must equal the MCaches/RCaches along that replica's *active branch* of
the cache tree.  The branch a replica is positioned on is refinement
bookkeeping (the paper's ℝ carries such auxiliary correspondences): we
track it as an explicit :class:`ObservationMap` from node id to the cid
of the deepest cache whose branch the node's log covers.  The map is
advanced by the same events that change logs -- a leader's local
appends, and the delivery of commit requests (even ones that never
reach a quorum: the follower still adopted the leader's log, which is
already present in the tree as the leader's branch).

``R_net`` (Fig. 18) is the coarser relation between two *network*
states used by the trace-transformation lemmas: per-server log and
timestamp equality.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.cache import Cid, NodeId, is_committable, is_rcache
from ..core.state import AdoreState
from ..core.tree import ROOT_CID, CacheTree
from ..raft.messages import LogEntry
from ..raft.spec import RaftSystem


def to_log(tree: CacheTree, cid: Cid) -> Tuple[LogEntry, ...]:
    """``toLog`` (Fig. 17): the M/RCaches along the branch of ``cid``,
    rendered as network-level log entries."""
    entries: List[LogEntry] = []
    for anc in tree.branch(cid):
        cache = tree.cache(anc)
        if not is_committable(cache):
            continue
        if is_rcache(cache):
            entries.append(
                LogEntry(
                    time=cache.time,
                    vrsn=cache.vrsn,
                    payload=cache.conf,
                    is_config=True,
                )
            )
        else:
            entries.append(
                LogEntry(time=cache.time, vrsn=cache.vrsn, payload=cache.method)
            )
    return tuple(entries)


class ObservationMap:
    """Where each replica's log sits in the cache tree.

    Maps every node id to the cid of the last cache on its branch whose
    ``toLog`` equals the node's local log.  Initially every node points
    at the root (empty log).
    """

    def __init__(self, nodes) -> None:
        self.position: Dict[NodeId, Cid] = {nid: ROOT_CID for nid in nodes}

    def advance(self, nid: NodeId, cid: Cid) -> None:
        self.position[nid] = cid

    def get(self, nid: NodeId) -> Cid:
        return self.position.get(nid, ROOT_CID)


def log_match(
    raft: RaftSystem, adore: AdoreState, obs: ObservationMap
) -> List[str]:
    """``logMatch`` (Fig. 17): per-replica log/branch agreement.

    Returns discrepancy descriptions (empty when ℝ holds).
    """
    problems: List[str] = []
    for nid, server in sorted(raft.servers.items()):
        branch_log = to_log(adore.tree, obs.get(nid))
        if branch_log != server.log:
            problems.append(
                f"S{nid}: log {[e.describe() for e in server.log]} != branch "
                f"{[e.describe() for e in branch_log]} (position {obs.get(nid)})"
            )
    return problems


def times_match(raft: RaftSystem, adore: AdoreState) -> List[str]:
    """The timestamp component of ℝ: observed times agree per replica."""
    problems: List[str] = []
    for nid, server in sorted(raft.servers.items()):
        if server.time != adore.time_of(nid):
            problems.append(
                f"S{nid}: network time {server.time} != Adore time "
                f"{adore.time_of(nid)}"
            )
    return problems


def commit_match(raft: RaftSystem, adore: AdoreState) -> List[str]:
    """The commit component of ℝ: every server's committed prefix is a
    prefix of the globally committed log extracted from the cache tree.

    This is what makes Adore's replicated state safety *transfer*: if
    all CCaches are on one branch, the tree's committed log is unique,
    and this check pins every network-level committed prefix to it.
    """
    from ..core.safety import committed_log

    global_log = [
        entry
        for cid in committed_log(adore.tree)
        for entry in to_log(adore.tree, cid)[-1:]
    ]
    problems: List[str] = []
    for nid, server in sorted(raft.servers.items()):
        prefix = list(server.committed_log())
        if prefix != global_log[: len(prefix)]:
            problems.append(
                f"S{nid}: committed prefix "
                f"{[e.describe() for e in prefix]} is not a prefix of the "
                f"tree's committed log {[e.describe() for e in global_log]}"
            )
    return problems


def r_net(left: RaftSystem, right: RaftSystem) -> List[str]:
    """ℝ_net (Fig. 18): per-server (log, time) equality between two
    network states.  Returns discrepancies (empty when equivalent)."""
    problems: List[str] = []
    nids = sorted(set(left.servers) | set(right.servers))
    for nid in nids:
        a = left.servers.get(nid)
        b = right.servers.get(nid)
        if a is None or b is None:
            problems.append(f"S{nid} exists on only one side")
            continue
        if a.log != b.log:
            problems.append(
                f"S{nid} logs differ: {[e.describe() for e in a.log]} vs "
                f"{[e.describe() for e in b.log]}"
            )
        if a.time != b.time:
            problems.append(f"S{nid} times differ: {a.time} vs {b.time}")
    return problems
