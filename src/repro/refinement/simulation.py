"""The SRaft → Adore simulation checker (Lemma C.1 / Theorem C.11).

The paper proves: given states related by ℝ, every SRaft step has a
corresponding Adore step preserving ℝ.  This module checks that
dynamically: :class:`SimulationChecker` runs an :class:`SRaftSystem`
and an Adore state *in lockstep* -- each atomic SRaft round is mirrored
by the corresponding Adore operation with the oracle outcome read off
the round -- and asserts ``logMatch`` plus the timestamp correspondence
after every step.

The mirroring is exactly the intuitive mapping of Section 5:

====================  =========================================
SRaft round           Adore step
====================  =========================================
``elect_atomic``      ``pull`` with ``Q`` = candidate + receivers
``invoke``            ``invoke``
``reconfig``          ``reconfig``
``commit_atomic``     ``push`` with ``Q`` = leader + receivers
====================  =========================================

A failed SRaft election (no quorum of grants) maps to a pull whose
supporter set happens not to be a quorum (timestamps still advance), or
to a pull that adopts a *different* branch when some receiver's log was
more up-to-date than the candidate's -- either way the tree gains no
entry that any log corresponds to, so ℝ is preserved (the ECache is
log-invisible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..core.aux import active_cache
from ..core.cache import Config, Method, NodeId
from ..core.config import ReconfigScheme
from ..core.errors import SafetyViolation
from ..core.oracle import PullOk, PushOk, validate_pull, validate_push
from ..core.semantics import apply_invoke, apply_pull, apply_push, apply_reconfig
from ..core.state import AdoreState, initial_state
from ..paxos.spaxos import SPaxosSystem
from ..raft.sraft import SRaftSystem
from .relation import ObservationMap, commit_match, log_match, times_match


@dataclass
class StepRecord:
    """One mirrored step and whether ℝ survived it."""

    description: str
    discrepancies: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies


class SimulationChecker:
    """Run SRaft and Adore in lockstep, checking ℝ after each step."""

    #: The synchronized network system to run (swapped by the Paxos
    #: variant below).
    SYSTEM_CLS = SRaftSystem

    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        enforce_r2: bool = True,
        enforce_r3: bool = True,
        raise_on_mismatch: bool = True,
        extra_nodes: Iterable[NodeId] = (),
    ) -> None:
        self.scheme = scheme
        self.sraft = self.SYSTEM_CLS(
            conf0,
            scheme,
            enforce_r2=enforce_r2,
            enforce_r3=enforce_r3,
            extra_nodes=extra_nodes,
        )
        self.adore: AdoreState = initial_state(conf0, scheme)
        self.obs = ObservationMap(self.sraft.servers)
        self.raise_on_mismatch = raise_on_mismatch
        self.steps: List[StepRecord] = []

    # ------------------------------------------------------------------
    # Mirrored operations
    # ------------------------------------------------------------------

    def elect(self, nid: NodeId, receivers: Iterable[NodeId]) -> StepRecord:
        """Mirror an atomic election round as Adore ``pull`` steps.

        The main pull's supporter set is the candidate plus the voters
        that *granted* (their logs are at most the candidate's, so the
        adopted ``mostRecent`` cache is the candidate's own branch tip
        and the quorum is counted against the same configuration Raft
        uses).  A receiver that processed the request but denied the
        vote (its log was better) advanced only its timestamp; that is
        mirrored by a singleton non-quorum pull *by the denier* -- the
        paper's "failed pull that still blocks older leaders".
        """
        candidate_conf = self.sraft.servers[nid].config()
        if nid not in self.scheme.members(candidate_conf):
            # Section 5 lists messages "coming from outside the current
            # configuration" as invalid: SRaft schedules such a
            # candidacy away entirely, and Adore's validSupp has no
            # outcome for it (a non-member can never be a supporter).
            return self._record(
                f"elect({nid}) refused: candidate outside its "
                f"configuration {self.scheme.describe_config(candidate_conf)}"
            )
        round_ = self.sraft.elect_atomic(nid, receivers)
        deniers = round_.receivers - round_.granted
        for denier in sorted(deniers):
            denier_outcome = PullOk(group=frozenset({denier}), time=round_.time)
            validate_pull(self.adore, denier, denier_outcome, self.scheme)
            self.adore, _, _ = apply_pull(
                self.adore, denier, denier_outcome, self.scheme
            )
        outcome = PullOk(group=round_.granted | {nid}, time=round_.time)
        validate_pull(self.adore, nid, outcome, self.scheme)
        self.adore, cid, reason = apply_pull(self.adore, nid, outcome, self.scheme)
        if cid is not None and round_.won:
            # The winner's log equals the adopted branch: unchanged for
            # Raft (its own log was the most up-to-date among granters),
            # newly *adopted* for Paxos (promises carried better logs).
            # Either way the ECache's branch is the winner's log.
            self.obs.advance(nid, cid)
        if round_.won != (cid is not None):
            return self._record(
                f"elect({nid}) t={round_.time} -> DIVERGED: raft won="
                f"{round_.won}, adore pull [{reason}]",
                force=[
                    f"election outcomes diverge: raft={round_.won}, "
                    f"adore={cid is not None} ({reason})"
                ],
            )
        return self._record(
            f"elect({nid}) t={round_.time} granted={sorted(round_.granted)} "
            f"denied={sorted(deniers)} won={round_.won} -> pull [{reason}]"
        )

    def invoke(self, nid: NodeId, method: Method) -> StepRecord:
        """Mirror a local command append as an Adore ``invoke``."""
        ok = self.sraft.invoke(nid, method)
        if ok:
            self.adore, cid, reason = apply_invoke(self.adore, nid, method)
            if cid is None:
                return self._record(
                    f"invoke({nid}) -> DIVERGED: raft ok, adore {reason}",
                    force=[f"adore invoke failed: {reason}"],
                )
            self.obs.advance(nid, cid)
            return self._record(f"invoke({nid}, {method!r}) -> MCache {cid}")
        return self._record(f"invoke({nid}) refused on both sides")

    def reconfig(self, nid: NodeId, new_conf: Config) -> StepRecord:
        """Mirror a local configuration append as an Adore ``reconfig``."""
        ok, raft_reason = self.sraft.reconfig(nid, new_conf)
        if ok:
            self.adore, cid, reason = apply_reconfig(
                self.adore,
                nid,
                new_conf,
                self.scheme,
                enforce_r2=self.sraft.enforce_r2,
                enforce_r3=self.sraft.enforce_r3,
            )
            if cid is None:
                return self._record(
                    f"reconfig({nid}) -> DIVERGED: raft ok, adore {reason}",
                    force=[f"adore reconfig failed: {reason}"],
                )
            self.obs.advance(nid, cid)
            return self._record(f"reconfig({nid}, {new_conf!r}) -> RCache {cid}")
        return self._record(
            f"reconfig({nid}) refused on both sides [{raft_reason}]"
        )

    def commit(self, nid: NodeId, receivers: Iterable[NodeId]) -> StepRecord:
        """Mirror an atomic commit round as an Adore ``push``."""
        round_ = self.sraft.commit_atomic(nid, receivers)
        target = self._push_target(nid)
        if target is None:
            # Nothing uncommitted of this leader's: the Raft broadcast
            # only refreshed follower logs (a heartbeat); Adore
            # stutters, but followers that adopted the leader's log
            # move to the leader's branch position and lagging
            # followers' timestamp bumps are mirrored by singleton
            # failed pulls.
            for follower in sorted(round_.receivers):
                if self.adore.time_of(follower) < round_.time:
                    bump = PullOk(group=frozenset({follower}), time=round_.time)
                    validate_pull(self.adore, follower, bump, self.scheme)
                    self.adore, _, _ = apply_pull(
                        self.adore, follower, bump, self.scheme
                    )
                self.obs.advance(follower, self.obs.get(nid))
            return self._record(
                f"commit({nid}) nothing to push (stutter), "
                f"recv={sorted(round_.receivers)}"
            )
        outcome = PushOk(group=round_.acked | {nid}, target=target)
        validate_push(self.adore, nid, outcome, self.scheme)
        self.adore, cid, reason = apply_push(self.adore, nid, outcome, self.scheme)
        # Every receiver adopted the leader's log, so its tree position
        # becomes the leader's last log cache (the push target); the
        # leader's own position is unchanged (its log did not change).
        for follower in round_.receivers:
            self.obs.advance(follower, target)
        return self._record(
            f"commit({nid}) recv={sorted(round_.receivers)} "
            f"acked={sorted(round_.acked)} -> push [{reason}]"
        )

    # ------------------------------------------------------------------

    def _push_target(self, nid: NodeId):
        """The leader's newest uncommitted M/RCache, if any."""
        from ..core.aux import can_commit

        active = active_cache(self.adore.tree, nid)
        if active is None:
            return None
        if can_commit(self.adore.tree, active, nid, self.adore):
            return active
        return None

    def _record(
        self, description: str, force: Optional[List[str]] = None
    ) -> StepRecord:
        discrepancies = list(force or [])
        discrepancies.extend(log_match(self.sraft, self.adore, self.obs))
        discrepancies.extend(times_match(self.sraft, self.adore))
        discrepancies.extend(commit_match(self.sraft, self.adore))
        record = StepRecord(description, discrepancies)
        self.steps.append(record)
        if discrepancies and self.raise_on_mismatch:
            raise SafetyViolation(
                "refinement relation broken at step: "
                + description
                + "\n"
                + "\n".join(discrepancies),
                witness=record,
            )
        return record

    @property
    def ok(self) -> bool:
        """Whether ℝ held after every mirrored step so far."""
        return all(step.ok for step in self.steps)

    def report(self) -> str:
        lines = []
        for i, step in enumerate(self.steps):
            status = "ok" if step.ok else "MISMATCH"
            lines.append(f"{i + 1:3d}. [{status}] {step.description}")
            lines.extend(f"       {d}" for d in step.discrepancies)
        return "\n".join(lines)


class PaxosSimulationChecker(SimulationChecker):
    """The same lockstep ℝ-checker over the multi-Paxos variant.

    Paxos elections are where the model's pull semantics is the
    identity: the candidate adopts the most up-to-date log among its
    promisers, exactly ``mostRecent`` over the supporter set.  All
    receivers of a fresh ballot promise, so the denial branch of the
    Raft mirror never fires here.

    **Scope (an honest boundary of the model).**  The paper proves the
    refinement for its Raft-like protocol only, and this checker shows
    why: Adore's cache tree records supporters for *successful* commits
    (CCache voters), but a push without a quorum leaves no trace.  A
    Raft candidate never reads other logs, so this loses nothing; a
    Paxos candidate, however, may *salvage* entries a dead leader
    partially replicated to one of its promisers -- state Adore's
    ``mostRecent`` cannot see.  Real multi-Paxos re-proposes such
    salvaged values at the new ballot (fresh identities), which is an
    ``invoke`` sequence in Adore, not a branch adoption.  The checker
    therefore holds exactly when commit rounds deliver atomically to
    the configuration (SRaft's own simplifying assumption); with
    partial commit deliveries it *detects and reports* the salvage case
    rather than mirroring it (see
    ``tests/paxos/test_paxos.py::TestModelBoundary``).
    """

    SYSTEM_CLS = SPaxosSystem

    def commit(self, nid, receivers):
        members = self.scheme.members(self.sraft.servers[nid].config())
        full = frozenset(members) - {nid}
        if not frozenset(receivers) >= full:
            # Partial commit deliveries feed the salvage blind spot
            # (docstring above); the Paxos mirror requires atomic
            # full-configuration rounds.
            receivers = sorted(full)
        return super().commit(nid, receivers)
