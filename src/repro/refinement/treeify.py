"""Reconstruct an Adore cache tree from network-level state.

Section 4.1 remarks that expressing ``rdist`` in a network-based
specification requires one "to essentially construct a tree from two
logs by merging their common prefix into a branch that forks where
their tails diverge" -- and that this is exactly the structure Adore's
cache tree maintains natively.  This module implements that
construction: given the replicas' local logs (and commit indices), it
merges them into a cache tree, which makes every tree-based notion --
``rdist``, replicated state safety, the Appendix-B invariants --
directly applicable to a network state.

Used as a cross-validation tool: a violation reported by the network
spec's prefix check must also be caught by the model's tree-based
checkers on the treeified state, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.cache import CCache, Cid, MCache, NodeId, RCache
from ..core.safety import check_replicated_state_safety, rdist
from ..core.tree import ROOT_CID, CacheTree
from ..raft.messages import LogEntry
from ..raft.spec import RaftSystem


@dataclass
class TreeifiedState:
    """The merged tree plus each replica's position in it."""

    tree: CacheTree
    #: nid → cid of the cache corresponding to the replica's last log
    #: entry (ROOT_CID for an empty log).
    positions: Dict[NodeId, Cid]

    def rdist_between(self, a: NodeId, b: NodeId) -> int:
        """``rdist`` between two replicas' log tips."""
        return rdist(self.tree, self.positions[a], self.positions[b])

    def safety_violations(self):
        """The tree-based replicated-state-safety check."""
        return check_replicated_state_safety(self.tree)


def _cache_for(entry: LogEntry, caller: NodeId):
    if entry.is_config:
        return RCache(
            caller=caller, time=entry.time, vrsn=entry.vrsn, conf=entry.payload
        )
    return MCache(
        caller=caller,
        time=entry.time,
        vrsn=entry.vrsn,
        conf=None,
        method=entry.payload,
    )


def treeify(system: RaftSystem) -> TreeifiedState:
    """Merge every replica's local log into one cache tree.

    Logs sharing a prefix share the corresponding caches; they fork
    where their entries first differ.  A CCache is inserted below the
    deepest entry of each maximal committed prefix, with the replicas
    whose commit index covers it as voters (so ``mostRecent`` and the
    safety checkers see the same commit structure the network state
    implies).  Entry caches carry caller 0 -- the construction abstracts
    *who* appended them, exactly like the paper's merge argument.
    """

    root = CCache(
        caller=0,
        time=0,
        vrsn=0,
        conf=system.conf0,
        voters=frozenset(system.servers),
    )
    tree = CacheTree.initial(root)
    # Map from a path of entries (as a tuple) to the cid representing it.
    path_to_cid: Dict[Tuple[LogEntry, ...], Cid] = {(): ROOT_CID}
    positions: Dict[NodeId, Cid] = {}

    for nid, server in sorted(system.servers.items()):
        parent = ROOT_CID
        for depth in range(1, len(server.log) + 1):
            path = tuple(server.log[:depth])
            if path not in path_to_cid:
                tree, cid = tree.add_leaf(parent, _cache_for(path[-1], 0))
                path_to_cid[path] = cid
            parent = path_to_cid[path]
        positions[nid] = parent

    # Commit markers: for each maximal committed prefix, a CCache under
    # its last entry, supported by every replica committed that far.
    committed_paths: Dict[Tuple[LogEntry, ...], set] = {}
    for nid, server in system.servers.items():
        path = tuple(server.committed_log())
        if not path:
            continue
        committed_paths.setdefault(path, set()).add(nid)
    # A replica committed past a prefix has committed the prefix too:
    # every path inherits the voters of its extensions.
    for path, voters in committed_paths.items():
        for other, other_voters in committed_paths.items():
            if len(other) > len(path) and other[: len(path)] == path:
                voters |= other_voters
    for path, voters in committed_paths.items():
        if path not in path_to_cid:
            continue  # a committed prefix no live log retains fully
        target = path_to_cid[path]
        last = path[-1]
        tree, _ = tree.insert_btw(
            target,
            CCache(
                caller=0,
                time=last.time,
                vrsn=last.vrsn,
                conf=None,
                voters=frozenset(voters),
            ),
        )
    return TreeifiedState(tree=tree, positions=positions)
