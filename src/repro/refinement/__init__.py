"""Refinement between the network-based Raft spec and Adore (Section 5).

* :mod:`repro.refinement.relation` -- the refinement relation ℝ
  (``toLog``/``logMatch``, Fig. 17), the timestamp and commit-prefix
  correspondences, and ℝ_net (Fig. 18).
* :mod:`repro.refinement.reorder` -- executable versions of the trace
  transformation lemmas C.3 (validity filtering), C.7 (global
  ordering by commuting independent deliveries), and C.9 (atomic
  grouping).
* :mod:`repro.refinement.simulation` -- the SRaft → Adore lockstep
  simulation checker (Lemma C.1 / Theorem C.11 as a dynamic check).
"""

from .treeify import TreeifiedState, treeify
from .relation import (
    ObservationMap,
    commit_match,
    log_match,
    r_net,
    times_match,
    to_log,
)
from .reorder import (
    atomic_groups,
    check_equivalent,
    delivery_key,
    filter_invalid,
    globally_order,
    normalize,
    replay,
)
from .simulation import PaxosSimulationChecker, SimulationChecker, StepRecord

__all__ = [
    "ObservationMap",
    "PaxosSimulationChecker",
    "SimulationChecker",
    "StepRecord",
    "atomic_groups",
    "check_equivalent",
    "commit_match",
    "delivery_key",
    "filter_invalid",
    "globally_order",
    "log_match",
    "normalize",
    "r_net",
    "replay",
    "times_match",
    "to_log",
    "treeify",
    "TreeifiedState",
]
