"""Executable trace-transformation lemmas (Appendix C).

The Raft → SRaft refinement rests on three transformations of an
asynchronous event trace, each preserving ℝ_net (per-server logs and
timestamps):

* :func:`filter_invalid` (Lemma C.3) -- drop ``Deliver`` events whose
  messages the recipient would ignore anyway.
* :func:`globally_order` (Lemma C.7) -- sort deliveries into logical
  time order by commuting *adjacent, independent* deliveries.  Two
  deliveries commute when they have different recipients; causality is
  respected by never moving a delivery before the event that put its
  message in flight (checked by replay validity).
* :func:`atomic_groups` (Lemma C.9) -- after ordering, deliveries of
  the same broadcast (same sender, timestamp, and kind) are adjacent
  and can be read as one atomic round; this function extracts those
  rounds, which is exactly the input an :class:`SRaftSystem` consumes.

Each function returns the transformed trace; :func:`check_equivalent`
replays original and transformed traces and asserts ℝ_net.  The paper
proves these transformations always succeed; here they are checked per
trace, with randomized traces exercising them in the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.cache import Config
from ..core.config import ReconfigScheme
from ..raft.messages import CommitReq, ElectAck, ElectReq, Msg
from ..raft.spec import Deliver, RaftEvent, RaftSystem
from .relation import r_net


def _kind_rank(msg: Msg) -> int:
    """Within one logical time: requests before their acknowledgements,
    election rounds before commit rounds."""
    if isinstance(msg, ElectReq):
        return 0
    if isinstance(msg, ElectAck):
        return 1
    if isinstance(msg, CommitReq):
        return 2
    return 3


def delivery_key(msg: Msg) -> Tuple[int, int, int]:
    """The global-ordering key of Definition C.4/C.6, refined with the
    request/ack rank so causally later messages sort later."""
    from ..raft.messages import msg_vrsn

    return (msg.time, _kind_rank(msg), msg_vrsn(msg))


def replay(
    conf0: Config,
    scheme: ReconfigScheme,
    events: Sequence[RaftEvent],
    **kwargs,
) -> RaftSystem:
    """Replay a trace from the initial state (lenient about dropped
    messages, like the lemma statements)."""
    return RaftSystem.replay(conf0, scheme, events, **kwargs)


def filter_invalid(
    conf0: Config, scheme: ReconfigScheme, events: Sequence[RaftEvent], **kwargs
) -> List[RaftEvent]:
    """Lemma C.3: drop deliveries of messages their recipients ignore.

    The trace is replayed; at each ``Deliver`` the recipient's
    ``would_accept`` (Definition C.2) decides whether the event is kept.
    Ignored messages have no effect on any local state, so the filtered
    trace is ℝ_net-equivalent by construction.
    """
    system = RaftSystem(conf0, scheme, **kwargs)
    kept: List[RaftEvent] = []
    for event in events:
        if isinstance(event, Deliver):
            if not system.network.can_deliver(event.msg):
                continue  # its trigger was filtered out
            if not system.servers[event.msg.to].would_accept(event.msg):
                # Deliver it in the replay (to consume it) but drop it
                # from the kept trace -- it has no effect either way.
                system.deliver(event.msg)
                continue
        _apply(system, event)
        kept.append(event)
    return kept


def globally_order(
    conf0: Config, scheme: ReconfigScheme, events: Sequence[RaftEvent], **kwargs
) -> List[RaftEvent]:
    """Lemma C.7: sort deliveries into logical-time order.

    Implemented as a bubble pass that swaps *adjacent* events when the
    later one is a delivery with a strictly smaller key, the earlier one
    is a delivery to a *different recipient* (independent local
    operations commute), and the swap keeps the trace replayable (the
    moved message is already in flight at the earlier position).  This
    is literally the paper's commuting argument, applied until a fixed
    point.
    """
    ordered = list(events)
    changed = True
    while changed:
        changed = False
        for i in range(len(ordered) - 1):
            first, second = ordered[i], ordered[i + 1]
            if not (isinstance(first, Deliver) and isinstance(second, Deliver)):
                continue
            if first.msg.to == second.msg.to:
                continue  # local order must be preserved
            if delivery_key(second.msg) >= delivery_key(first.msg):
                continue
            candidate = ordered[:i] + [second, first] + ordered[i + 2 :]
            if _replayable(conf0, scheme, candidate, **kwargs):
                ordered = candidate
                changed = True
    return ordered


def atomic_groups(events: Sequence[RaftEvent]) -> List[List[RaftEvent]]:
    """Lemma C.9: group adjacent deliveries into atomic rounds.

    A round is a maximal run of deliveries belonging to one broadcast:
    the requests of one (sender, time, kind) plus the acknowledgements
    they generate.  Non-delivery events form singleton groups.
    """
    groups: List[List[RaftEvent]] = []
    current: List[RaftEvent] = []
    current_round: Optional[Tuple] = None

    def round_of(msg: Msg) -> Tuple:
        if isinstance(msg, (ElectReq, ElectAck)):
            leader = msg.frm if isinstance(msg, ElectReq) else msg.to
            return ("elect", leader, msg.time)
        leader = msg.frm if isinstance(msg, CommitReq) else msg.to
        return ("commit", leader, msg.time)

    for event in events:
        if isinstance(event, Deliver):
            rnd = round_of(event.msg)
            if current and current_round == rnd:
                current.append(event)
            else:
                if current:
                    groups.append(current)
                current = [event]
                current_round = rnd
        else:
            if current:
                groups.append(current)
                current = []
                current_round = None
            groups.append([event])
    if current:
        groups.append(current)
    return groups


def check_equivalent(
    conf0: Config,
    scheme: ReconfigScheme,
    original: Sequence[RaftEvent],
    transformed: Sequence[RaftEvent],
    **kwargs,
) -> List[str]:
    """Replay both traces and compare final states under ℝ_net."""
    left = replay(conf0, scheme, original, **kwargs)
    right = replay(conf0, scheme, transformed, **kwargs)
    return r_net(left, right)


def normalize(
    conf0: Config, scheme: ReconfigScheme, events: Sequence[RaftEvent], **kwargs
) -> List[RaftEvent]:
    """The full Lemma C.10 pipeline: filter, order (C.3 then C.7)."""
    filtered = filter_invalid(conf0, scheme, events, **kwargs)
    return globally_order(conf0, scheme, filtered, **kwargs)


# ----------------------------------------------------------------------

def _apply(system: RaftSystem, event: RaftEvent) -> None:
    from ..raft.spec import Commit, Elect, Invoke, Reconfig

    if isinstance(event, Elect):
        system.elect(event.nid)
    elif isinstance(event, Invoke):
        system.invoke(event.nid, event.method)
    elif isinstance(event, Reconfig):
        system.reconfig(event.nid, event.new_conf)
    elif isinstance(event, Commit):
        system.commit(event.nid)
    elif isinstance(event, Deliver):
        system.deliver(event.msg)
    else:
        raise TypeError(f"unknown event {event!r}")


def _replayable(
    conf0: Config, scheme: ReconfigScheme, events: Sequence[RaftEvent], **kwargs
) -> bool:
    """Whether every Deliver in ``events`` finds its message in flight."""
    system = RaftSystem(conf0, scheme, **kwargs)
    for event in events:
        if isinstance(event, Deliver) and not system.network.can_deliver(
            event.msg
        ):
            return False
        _apply(system, event)
    return True
