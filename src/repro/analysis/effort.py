"""Development-effort accounting (the Section 7 "Proof Effort" analogue).

The paper reports Coq line counts: ~10.8k total for Adore (2.3k generic
tree well-formedness, 4k utility library, 4.5k safety proof), ~1.3k for
the CADO safety proof, ~13.8k for the refinement, ~200 lines for six
scheme instantiations.  The reproduction's analogue is per-subsystem
Python line counts plus checker/test counts, reported side by side with
the paper's numbers so the *ratios* (e.g. reconfiguration's marginal
cost over CADO; schemes being tiny relative to the core) can be
compared.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class ModuleLoc:
    """Line counts for one module or package."""

    name: str
    files: int
    code: int
    docs_and_comments: int
    blank: int

    @property
    def total(self) -> int:
        return self.code + self.docs_and_comments + self.blank


def count_file(path: str) -> Tuple[int, int, int]:
    """(code, docs+comments, blank) line counts of one Python file.

    Docstrings are detected with a simple triple-quote state machine --
    adequate for this codebase's conventional style.
    """
    code = docs = blank = 0
    in_doc = False
    doc_delim = None
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if in_doc:
                docs += 1
                if doc_delim in line:
                    in_doc = False
                continue
            if not line:
                blank += 1
                continue
            if line.startswith("#"):
                docs += 1
                continue
            if line.startswith(('"""', "'''")):
                delim = line[:3]
                docs += 1
                rest = line[3:]
                if delim not in rest:
                    in_doc = True
                    doc_delim = delim
                continue
            code += 1
    return code, docs, blank


def count_tree(root: str, name: Optional[str] = None) -> ModuleLoc:
    """Aggregate counts over all ``.py`` files under ``root``."""
    files = code = docs = blank = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            c, d, b = count_file(os.path.join(dirpath, filename))
            files += 1
            code += c
            docs += d
            blank += b
    return ModuleLoc(
        name=name or os.path.basename(root),
        files=files,
        code=code,
        docs_and_comments=docs,
        blank=blank,
    )


def package_root() -> str:
    """The installed ``repro`` package directory."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def effort_breakdown() -> List[ModuleLoc]:
    """Per-subsystem line counts of this reproduction."""
    root = package_root()
    out: List[ModuleLoc] = []
    for entry in sorted(os.listdir(root)):
        path = os.path.join(root, entry)
        if os.path.isdir(path) and not entry.startswith("__"):
            out.append(count_tree(path, name=f"repro.{entry}"))
    return out


#: The paper's Coq line counts (Section 7), for side-by-side reporting.
PAPER_COQ_LOC: Dict[str, int] = {
    "adore total": 10_800,
    "tree well-formedness": 2_300,
    "utility library": 4_000,
    "adore safety proof": 4_500,
    "cado safety proof": 1_300,
    "refinement": 13_800,
    "sraft-to-adore refinement": 2_500,
    "six scheme instantiations": 200,
    "majority-overlap lemma": 100,
}
