"""ASCII rendering of tables and latency series for the benchmarks.

The benchmark harness prints the same artifacts the paper's evaluation
shows: a latency-vs-request-index chart with reconfiguration markers
(Fig. 16) and tabular summaries.  Everything renders to plain text so
results live in the pytest output and the experiment logs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .stats import downsample


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A simple aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    width: int = 100,
    height: int = 12,
    markers: Optional[Sequence[int]] = None,
    title: str = "",
) -> str:
    """A text chart of a series (downsampled to ``width`` buckets).

    ``markers`` are x-indices (in the original series) annotated with
    ``^`` below the axis -- used for reconfiguration points.
    """
    if not values:
        return "(empty series)"
    data = downsample(list(values), width)
    lo, hi = min(data), max(data)
    span = (hi - lo) or 1.0
    rows: List[List[str]] = [[" "] * len(data) for _ in range(height)]
    for x, value in enumerate(data):
        level = int((value - lo) / span * (height - 1))
        for y in range(level + 1):
            rows[height - 1 - y][x] = "#" if y == level else "."
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max {hi:.3f}")
    lines.extend("".join(row) for row in rows)
    lines.append(f"min {lo:.3f}")
    if markers:
        marks = [" "] * len(data)
        scale = len(data) / len(values)
        for marker in markers:
            pos = min(len(data) - 1, int(marker * scale))
            marks[pos] = "^"
        lines.append("".join(marks) + "   (^ = reconfiguration)")
    return "\n".join(lines)
