"""Statistics helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class SeriesSummary:
    """Summary statistics of one latency series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p99: float

    def row(self) -> Tuple:
        return (
            self.count,
            round(self.mean, 3),
            round(self.minimum, 3),
            round(self.p50, 3),
            round(self.p99, 3),
            round(self.maximum, 3),
        )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation."""
    if not values:
        raise ValueError("empty series")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    low = int(math.floor(pos))
    high = int(math.ceil(pos))
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Count/mean/min/p50/p99/max of a series."""
    if not values:
        raise ValueError("empty series")
    return SeriesSummary(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
        p50=percentile(values, 0.50),
        p99=percentile(values, 0.99),
    )


def aggregate_runs(
    runs: Sequence[Sequence[float]],
) -> Tuple[List[float], List[float], List[float]]:
    """Per-index (max, mean, min) across runs -- the three series of
    Fig. 16.  Runs must have equal length."""
    lengths = {len(run) for run in runs}
    if len(lengths) != 1:
        raise ValueError(f"runs have differing lengths: {sorted(lengths)}")
    maxima: List[float] = []
    means: List[float] = []
    minima: List[float] = []
    for idx in range(lengths.pop()):
        column = [run[idx] for run in runs]
        maxima.append(max(column))
        means.append(sum(column) / len(column))
        minima.append(min(column))
    return maxima, means, minima


def downsample(values: Sequence[float], buckets: int) -> List[float]:
    """Bucket means, for rendering long series compactly."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    if len(values) <= buckets:
        return list(values)
    out: List[float] = []
    step = len(values) / buckets
    for i in range(buckets):
        lo = int(i * step)
        hi = max(lo + 1, int((i + 1) * step))
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def spike_indices(
    values: Sequence[float], threshold_factor: float = 3.0
) -> List[int]:
    """Indices whose value exceeds ``threshold_factor`` x the median."""
    med = percentile(values, 0.5)
    return [i for i, v in enumerate(values) if v > threshold_factor * med]
