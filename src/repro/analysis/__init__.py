"""Statistics, rendering, and effort accounting for the benchmarks."""

from .effort import (
    PAPER_COQ_LOC,
    ModuleLoc,
    count_file,
    count_tree,
    effort_breakdown,
    package_root,
)
from .render import render_series, render_table
from .stats import (
    SeriesSummary,
    aggregate_runs,
    downsample,
    percentile,
    spike_indices,
    summarize,
)

__all__ = [
    "PAPER_COQ_LOC",
    "ModuleLoc",
    "SeriesSummary",
    "aggregate_runs",
    "count_file",
    "count_tree",
    "downsample",
    "effort_breakdown",
    "package_root",
    "percentile",
    "render_series",
    "render_table",
    "spike_indices",
    "summarize",
]
