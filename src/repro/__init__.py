"""Python reproduction of *Adore: Atomic Distributed Objects with
Certified Reconfiguration* (Honoré, Kim, Shin, Shao -- PLDI 2022).

Subpackages:

* :mod:`repro.core` -- the Adore model: cache tree, operational
  semantics, oracles, and the safety invariants of Section 4/Appendix B.
* :mod:`repro.cado` -- CADO, Adore without reconfiguration.
* :mod:`repro.ado` -- the original ADO model of Appendix D.1.
* :mod:`repro.schemes` -- reconfiguration schemes (Section 6) and the
  REFLEXIVE/OVERLAP assumption checkers.
* :mod:`repro.raft` -- the network-based Raft-like specification
  (Section 5), its SRaft restriction, and the historically buggy
  single-node variant of Fig. 4.
* :mod:`repro.refinement` -- the refinement relation, the trace
  reordering lemmas of Appendix C, and the Raft → Adore simulation
  checker.
* :mod:`repro.mc` -- an explicit-state bounded model checker over the
  Adore semantics, with fault-injection ablations.
* :mod:`repro.runtime` -- a discrete-event simulated deployment (the
  analogue of the paper's OCaml extraction) used for the Fig. 16
  latency experiment, including a replicated key-value store.
* :mod:`repro.analysis` -- statistics and reporting helpers for the
  experiment harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
