"""Shared helpers for the benchmark/experiment harness.

Each benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index) and prints the
reproduced artifact directly to the terminal (bypassing capture), so
``pytest benchmarks/ --benchmark-only`` output contains both the
timing table and the reproduced rows/series.
"""

import os

import pytest


@pytest.fixture
def report(capfd):
    """Print experiment output to the real terminal, uncaptured."""

    def emit(*lines):
        with capfd.disabled():
            for line in lines:
                print(line)

    return emit


def full_scale() -> bool:
    """Heavy hunts (minutes) run only when REPRO_FULL=1."""
    return os.environ.get("REPRO_FULL", "") == "1"
