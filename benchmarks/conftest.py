"""Shared helpers for the benchmark/experiment harness.

Each benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index) and prints the
reproduced artifact directly to the terminal (bypassing capture), so
``pytest benchmarks/ --benchmark-only`` output contains both the
timing table and the reproduced rows/series.

Alongside the human-readable table, every benchmark writes its numbers
to ``BENCH_<name>.json`` (one file per module, one key per test) via
the :func:`bench_json` fixture, so downstream tooling can diff runs
without scraping terminal output.  Files land in
``benchmarks/results/`` unless ``REPRO_BENCH_DIR`` says otherwise.
"""

import json
import os
import time

import pytest


def _bench_dir() -> str:
    return os.environ.get(
        "REPRO_BENCH_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
    )


@pytest.fixture
def report(capfd):
    """Print experiment output to the real terminal, uncaptured."""

    def emit(*lines):
        with capfd.disabled():
            for line in lines:
                print(line)

    return emit


def _resource_snapshot():
    """Peak-RSS and intern-cache occupancy at emit time.

    Attached to every dict payload so ``compare.py`` can track memory
    trajectory (warn-only: absolute KB is hardware/allocator
    dependent) alongside the timing numbers.
    """
    snapshot = {}
    try:
        import resource

        snapshot["peak_rss_kb"] = resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss
    except ImportError:
        pass
    try:
        from repro.core import cachemgr

        stats = cachemgr.stats()
        snapshot["cache_occupancy"] = {
            "trees": stats["tree_interns"]["occupancy"],
            "caches": stats["cache_interns"]["occupancy"],
            "tree_flushes": stats["tree_interns"]["flushes"],
        }
    except ImportError:
        pass
    return snapshot


@pytest.fixture
def bench_json(request):
    """Record this test's machine-readable result.

    ``bench_json(payload)`` merges ``{test_name: payload}`` into the
    module's ``BENCH_<name>.json`` (name = module minus the ``test_``
    prefix).  Dict payloads are additionally annotated with the
    process's peak RSS and the intern-cache occupancy (see
    :func:`_resource_snapshot`); explicit keys of the same name win.
    Values that JSON cannot express (frozensets, tuples as keys, ...)
    are stringified rather than rejected.  Returns the path.
    """
    module = request.node.module.__name__
    name = module[len("test_"):] if module.startswith("test_") else module
    path = os.path.join(_bench_dir(), f"BENCH_{name}.json")

    def emit(payload, test=None):
        os.makedirs(_bench_dir(), exist_ok=True)
        if isinstance(payload, dict):
            merged = _resource_snapshot()
            merged.update(payload)
            payload = merged
        data = {}
        if os.path.exists(path):
            with open(path) as handle:
                try:
                    data = json.load(handle)
                except ValueError:
                    data = {}
        data[test or request.node.name] = payload
        data["_meta"] = {"module": module, "updated_unix": time.time()}
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    return emit


def full_scale() -> bool:
    """Heavy hunts (minutes) run only when REPRO_FULL=1."""
    return os.environ.get("REPRO_FULL", "") == "1"
