"""Experiment E9 (extension): the observability layer's overhead contract.

The instrumentation in :class:`~repro.runtime.cluster.Cluster` promises
two things (DESIGN.md §9):

* **disabled is (nearly) free** -- with the default null tracer and
  null registry, the per-message cost is one boolean test, so an
  instrumented-but-disabled cluster stays within 5% of a genuinely
  uninstrumented baseline;
* **enabled is bounded** -- full tracing + metrics cost real but
  modest time (reported here, not asserted: the enabled path is a
  debugging tool, not a production path).

The baseline is a ``Cluster`` subclass whose transport methods are the
pre-observability implementations (no ``_obs`` test at all), so the
comparison isolates exactly the cost the obs layer added.  Timing uses
interleaved min-of-N wall-clock samples of an identical seeded
workload; identical seeds also let the benchmark assert the
instrumented runs are *bit-identical* in simulated time -- the parity
contract -- before comparing wall clocks.
"""

import copy
import time

from repro.obs import MetricsRegistry, Tracer
from repro.runtime import Cluster, LatencyModel
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()
OPS = 120
ROUNDS = 7
#: The DESIGN.md §9 contract: disabled-path slowdown stays under 5%.
DISABLED_OVERHEAD_BOUND = 1.05


class BareCluster(Cluster):
    """The uninstrumented baseline: transport without the ``_obs`` test.

    These overrides are the pre-observability ``_send``/``_receive``
    bodies; everything else (latency sampling, fault injection, crash
    suppression) is inherited unchanged, so any wall-clock difference
    to ``Cluster`` is the cost of the instrumentation hooks alone.
    """

    def _send(self, msg, extra_delay=0.0):
        if msg.to not in self.servers:
            return
        if msg.frm in self._crashed:
            return
        self.messages_sent += 1
        copies = 1
        if self.faults is not None:
            if self.faults.should_drop(msg.frm, msg.to, self.sim.now):
                return
            if self.faults.should_duplicate():
                copies = 2
        for i in range(copies):
            delivery = msg if i == 0 else copy.deepcopy(msg)
            delay = extra_delay + self.latency.sample(
                self.sim.rng, self._payload_size(msg)
            )
            if self.faults is not None:
                delay += self.faults.reorder_delay()
            self.sim.schedule(delay, lambda m=delivery: self._receive(m))

    def _receive(self, msg, sent_lamport=0):
        if msg.to in self._crashed:
            return
        server = self.servers[msg.to]
        responses = server.handle(msg, self.scheme)
        self.sim.schedule(
            self.processing_ms, lambda: self._send_all(responses)
        )


def run_workload(cluster) -> float:
    assert cluster.elect(1)
    for i in range(OPS):
        cluster.submit(f"req-{i}", leader=1)
    return cluster.sim.now


def time_factory(factory) -> float:
    started = time.perf_counter()
    run_workload(factory())
    return time.perf_counter() - started


def measure(factories) -> dict:
    """Interleaved min-of-N timing: one sample of every variant per
    round, so drift (CPU frequency, cache warmth) hits all variants
    alike; min-of-rounds discards scheduler noise."""
    best = {name: float("inf") for name in factories}
    for _ in range(ROUNDS):
        for name, factory in factories.items():
            best[name] = min(best[name], time_factory(factory))
    return best


def test_disabled_observability_overhead(benchmark, report, bench_json):
    latency = LatencyModel(jitter=0.0, spike_prob=0.0)
    factories = {
        "bare": lambda: BareCluster(NODES, SCHEME, seed=11, latency=latency),
        "disabled": lambda: Cluster(NODES, SCHEME, seed=11, latency=latency),
        "enabled": lambda: Cluster(
            NODES, SCHEME, seed=11, latency=latency,
            tracer=Tracer(), metrics=MetricsRegistry(),
        ),
    }
    # Parity first: all three variants replay the identical seeded run.
    sim_times = {
        name: run_workload(factory()) for name, factory in factories.items()
    }
    assert len(set(sim_times.values())) == 1

    best = benchmark.pedantic(
        measure, args=(factories,), rounds=1, iterations=1
    )
    disabled_ratio = best["disabled"] / best["bare"]
    enabled_ratio = best["enabled"] / best["bare"]
    bench_json({
        "bare_ms": best["bare"] * 1e3,
        "disabled_ms": best["disabled"] * 1e3,
        "enabled_ms": best["enabled"] * 1e3,
        "disabled_ratio": disabled_ratio,
        "enabled_ratio": enabled_ratio,
        "bound": DISABLED_OVERHEAD_BOUND,
    })
    report(
        "",
        "=" * 72,
        "E9 (extension) -- observability overhead "
        f"({OPS} requests, min of {ROUNDS})",
        "=" * 72,
        f"  bare (no hooks):          {best['bare'] * 1e3:8.2f} ms",
        f"  instrumented, disabled:   {best['disabled'] * 1e3:8.2f} ms "
        f"({disabled_ratio:.3f}x)",
        f"  instrumented, enabled:    {best['enabled'] * 1e3:8.2f} ms "
        f"({enabled_ratio:.3f}x)",
        f"  contract: disabled <= {DISABLED_OVERHEAD_BOUND:.2f}x",
    )
    assert disabled_ratio <= DISABLED_OVERHEAD_BOUND, (
        f"disabled-path overhead {disabled_ratio:.3f}x exceeds the "
        f"{DISABLED_OVERHEAD_BOUND:.2f}x contract"
    )
