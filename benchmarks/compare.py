"""Compare fresh BENCH_*.json results against committed baselines.

CI's bench-gate job runs the perf-sensitive benchmarks on every PR,
then invokes this script to diff the freshly-written
``benchmarks/results/BENCH_*.json`` files against the committed
reference numbers in ``benchmarks/baselines/``.  Each tracked metric
has a direction and a severity:

* **fail** metrics exit non-zero when they regress past the tolerance
  (default 20%).  These are chosen to be hardware-independent ratios
  (e.g. the optimized/baseline speedup measured within one run on one
  machine), so a slower CI runner does not flag a phantom regression.
* **warn** metrics only print a warning.  Absolute numbers (ops/sec,
  wall-clock p99) land here: they track the trajectory across runs but
  depend on the runner's hardware.

Refreshing a baseline after an intentional perf change::

    PYTHONPATH=src python -m pytest benchmarks/test_net_throughput.py -q
    cp benchmarks/results/BENCH_net_throughput.json benchmarks/baselines/

Usage::

    python benchmarks/compare.py [--results DIR] [--baselines DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))

#: (metric label, path into the JSON, direction, severity, tolerance).
#: direction "higher" means bigger is better (regression = drop);
#: "lower" means smaller is better (regression = rise).
Spec = Tuple[str, Sequence[str], str, str, float]

SPECS: dict = {
    "BENCH_net_throughput.json": [
        ("net speedup (opt/base ops/sec)",
         ("test_net_throughput", "speedup"), "higher", "fail", 0.20),
        ("net optimized ops/sec",
         ("test_net_throughput", "optimized", "ops_per_s"),
         "higher", "warn", 0.20),
        ("net optimized p99 latency (ms)",
         ("test_net_throughput", "optimized", "p99_ms"),
         "lower", "warn", 0.20),
        ("net bytes shipped (opt/base)",
         ("test_net_throughput", "bytes_ratio"), "lower", "warn", 0.20),
    ],
    "BENCH_obs_overhead.json": [
        ("obs disabled-path overhead ratio",
         ("test_disabled_observability_overhead", "disabled_ratio"),
         "lower", "fail", 0.20),
        ("obs enabled-path overhead ratio",
         ("test_disabled_observability_overhead", "enabled_ratio"),
         "lower", "warn", 0.20),
    ],
    "BENCH_shard_throughput.json": [
        ("shard routing overhead ratio (sharded/raw, same run)",
         ("test_shard_routing_overhead", "overhead_ratio"),
         "lower", "fail", 0.20),
        ("sharded ops/sec (1 group)",
         ("test_shard_routing_overhead", "sharded", "ops_per_s"),
         "higher", "warn", 0.20),
    ],
    "BENCH_differential_throughput.json": [
        ("logless overhead ratio (raft st/s / logless st/s, same run)",
         ("test_differential_throughput", "logless_overhead_ratio"),
         "lower", "fail", 0.20),
        ("raft-single-node states/sec (intact, bfs)",
         ("test_differential_throughput", "per_scheme", "raft-single-node",
          "states_per_second"), "higher", "warn", 0.20),
        ("mongo-logless states/sec (intact, bfs)",
         ("test_differential_throughput", "per_scheme", "mongo-logless",
          "states_per_second"), "higher", "warn", 0.20),
    ],
    "BENCH_bounded_mc.json": [
        ("bounded-mc throughput ratio (bounded/unbounded states/s, same run)",
         ("test_bounded_vs_unbounded", "throughput_ratio"),
         "higher", "fail", 0.20),
        ("bounded-mc bounded-run peak RSS (KB)",
         ("test_bounded_vs_unbounded", "bounded", "peak_rss_kb"),
         "lower", "warn", 0.25),
    ],
    "BENCH_monitor_overhead.json": [
        ("monitor disabled-path overhead ratio",
         ("test_disabled_monitor_overhead", "disabled_ratio"),
         "lower", "fail", 0.20),
        ("monitor enabled-path overhead ratio",
         ("test_disabled_monitor_overhead", "enabled_ratio"),
         "lower", "warn", 0.20),
    ],
}


def _dig(data, path: Sequence[str]) -> Optional[float]:
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def _load(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


#: Warn (never fail) when a test's peak RSS grows past this fraction of
#: its committed baseline.  RSS is allocator- and hardware-dependent,
#: so this tracks the memory trajectory without gating merges on it.
RSS_WARN_TOLERANCE = 0.25


def scan_rss(results_dir: str, baselines_dir: str, warnings: List[str]) -> None:
    """Warn-only sweep of ``peak_rss_kb`` across every benchmark pair.

    The ``bench_json`` fixture stamps each payload with the process's
    peak RSS; any test whose fresh value regressed past
    :data:`RSS_WARN_TOLERANCE` gets a warning line, whether or not it
    has tracked timing metrics in :data:`SPECS`.
    """
    import glob

    for base_path in sorted(
        glob.glob(os.path.join(baselines_dir, "BENCH_*.json"))
    ):
        filename = os.path.basename(base_path)
        baseline = _load(base_path)
        fresh = _load(os.path.join(results_dir, filename))
        if not baseline or not fresh:
            continue
        for test, payload in sorted(baseline.items()):
            if test.startswith("_") or not isinstance(payload, dict):
                continue
            ref = payload.get("peak_rss_kb")
            now_payload = fresh.get(test)
            now = (
                now_payload.get("peak_rss_kb")
                if isinstance(now_payload, dict) else None
            )
            if (
                isinstance(ref, (int, float)) and ref > 0
                and isinstance(now, (int, float))
            ):
                change = now / ref - 1.0
                if change > RSS_WARN_TOLERANCE:
                    warnings.append(
                        f"{filename}:{test}: peak RSS {now:,.0f} KB vs "
                        f"baseline {ref:,.0f} KB ({change:+.1%}; warn-only)"
                    )


def compare(results_dir: str, baselines_dir: str) -> int:
    failures: List[str] = []
    warnings: List[str] = []
    scan_rss(results_dir, baselines_dir, warnings)
    rows: List[Tuple[str, str, str, str, str]] = []
    compared = 0
    for filename, specs in sorted(SPECS.items()):
        baseline = _load(os.path.join(baselines_dir, filename))
        fresh = _load(os.path.join(results_dir, filename))
        if baseline is None:
            warnings.append(f"{filename}: no committed baseline, skipping")
            continue
        if fresh is None:
            failures.append(
                f"{filename}: baseline exists but no fresh result was "
                f"written -- did the benchmark run?"
            )
            continue
        for label, path, direction, severity, tolerance in specs:
            ref = _dig(baseline, path)
            now = _dig(fresh, path)
            if ref is None or now is None or ref == 0:
                warnings.append(f"{label}: metric missing, skipping")
                continue
            compared += 1
            change = now / ref - 1.0
            regressed = (
                change < -tolerance if direction == "higher"
                else change > tolerance
            )
            status = "ok"
            if regressed:
                status = severity.upper()
                text = (
                    f"{label}: {now:.3f} vs baseline {ref:.3f} "
                    f"({change:+.1%}, tolerance {tolerance:.0%}, "
                    f"{direction} is better)"
                )
                (failures if severity == "fail" else warnings).append(text)
            rows.append((
                label, f"{ref:.3f}", f"{now:.3f}", f"{change:+.1%}", status
            ))
    widths = [
        max(len(str(row[col])) for row in rows + [("metric", "base",
            "now", "change", "status")])
        for col in range(5)
    ] if rows else []
    if rows:
        header = ("metric", "base", "now", "change", "status")
        print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    for text in warnings:
        print(f"WARN: {text}")
    for text in failures:
        print(f"FAIL: {text}", file=sys.stderr)
    if failures:
        return 1
    print(f"bench-gate: {compared} metrics compared, no hard regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", default=os.path.join(HERE, "results"),
        help="directory holding freshly-written BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines", default=os.path.join(HERE, "baselines"),
        help="directory holding the committed reference BENCH_*.json files",
    )
    args = parser.parse_args(argv)
    return compare(args.results, args.baselines)


if __name__ == "__main__":
    sys.exit(main())
